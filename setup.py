"""Setup shim: enables legacy editable installs where PEP 517 tooling
(wheel/bdist_wheel) is unavailable.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
