"""Survivability / replication reporting for the stable-storage service.

Renders the per-server replica census plus the quorum-behaviour
counters (retries, backoff, quorum failures, repairs) the E19
experiment reports -- the storage-tier analogue of the job-level
recovery tables.
"""

from __future__ import annotations

from typing import List, Optional

from .tables import fmt_bytes, fmt_ns, render_table

__all__ = ["render_replication_table"]


def render_replication_table(
    store,
    repairer=None,
    title: Optional[str] = None,
    content_store=None,
) -> str:
    """Render the replication state of a :class:`ReplicatedStore`.

    Parameters
    ----------
    store:
        A :class:`repro.stablestore.ReplicatedStore`.
    repairer:
        Optional :class:`repro.stablestore.ReplicationRepairer` whose
        repair counters are appended.
    content_store:
        Optional :class:`repro.stablestore.ContentStore` fronting the
        service; appends the dedup_ratio summary line.
    """
    rows = []
    for server in store.storage.servers:
        rows.append(
            (
                f"store{server.server_id}",
                server.state.value,
                len(server.replicas),
                fmt_bytes(server.stored_bytes()),
                server.failures,
            )
        )
    text = render_table(
        ["server", "state", "replicas", "bytes", "failures"],
        rows,
        title=title
        or (
            f"Stable-storage service: rf={store.replication} "
            f"W={store.write_quorum} R={store.read_quorum}"
        ),
    )
    summary: List[str] = [
        f"keys={len(list(store.keys()))}"
        f" logical={fmt_bytes(store.stored_bytes())}"
        f" physical={fmt_bytes(store.physical_bytes())}",
        f"under-replicated={len(store.under_replicated())}"
        f" lost={len(store.lost_keys())}",
        f"write retries={store.write_retries}"
        f" read retries={store.read_retries}"
        f" backoff total={fmt_ns(store.backoff_ns_total)}",
        f"quorum failures: write={store.quorum_write_failures}"
        f" read={store.quorum_read_failures}",
    ]
    if repairer is not None:
        summary.append(
            f"repairs={repairer.repairs_completed}"
            f" re-replicated={fmt_bytes(repairer.bytes_rereplicated)}"
        )
    if content_store is not None:
        summary.append(
            f"dedup_ratio={content_store.dedup_ratio:.2f}x"
            f" logical={fmt_bytes(content_store.logical_payload_bytes)}"
            f" unique={fmt_bytes(content_store.unique_payload_bytes)}"
        )
    return text + "\n" + "\n".join(summary)
