"""ASCII table / series / bar renderers for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_bars", "render_series", "fmt_bytes", "fmt_ns"]


def _cell(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    srows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("")
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_bars(
    values: Dict[str, float],
    title: Optional[str] = None,
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (label -> value)."""
    out: List[str] = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(no data)"])
    vmax = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(k) for k in values)
    for label, v in values.items():
        bar = "#" * max(1 if v > 0 else 0, int(round(width * abs(v) / vmax)))
        out.append(f"{label.ljust(label_w)} | {bar} {_cell(v)}{unit}")
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence[Any],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render multiple y-series against a shared x column."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"


def fmt_ns(ns: float) -> str:
    """Human-readable duration from nanoseconds."""
    if abs(ns) < 1e3:
        return f"{ns:.0f}ns"
    if abs(ns) < 1e6:
        return f"{ns / 1e3:.1f}us"
    if abs(ns) < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.3f}s"
