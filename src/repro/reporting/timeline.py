"""Per-job event timelines and metrics-export plumbing over ``repro.obs``.

The observability subsystem records *what happened when* on the virtual
clock -- checkpoint spans, restarts, node failures, storage repairs.
This module turns that raw record into the two artifacts benchmarks
consume:

* :func:`render_timeline` -- a human-readable, time-ordered ASCII table
  of the failure/checkpoint/restart story of a run, the narrative behind
  every survivability experiment.
* :func:`export_metrics_json` -- the canonical (byte-stable) JSON export
  of an engine's metrics registry and tracer, schema-validated before it
  leaves the process.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..obs import Span, export_obs, to_json
from .tables import fmt_ns, render_table

__all__ = ["TIMELINE_SPANS", "timeline_events", "render_timeline", "export_metrics_json"]

#: Span names that tell the failure/checkpoint/restart story of a run.
#: Everything else the tracer records (freeze windows, rollbacks, ...)
#: stays available via ``Tracer.export`` but would drown the narrative.
TIMELINE_SPANS = (
    "checkpoint",
    "restart",
    "node.fail",
    "node.repair",
    "storage.repair",
    "preempt.park_failed",
)


def _span_detail(span: Span) -> str:
    """Compact ``k=v`` attribute summary, deterministic order."""
    return " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs))


def timeline_events(
    engine,
    names: Sequence[str] = TIMELINE_SPANS,
    pid: Optional[int] = None,
) -> List[Span]:
    """Timeline-worthy spans, in deterministic (begin, id) order.

    Parameters
    ----------
    engine:
        Any :class:`~repro.simkernel.engine.Engine` (a cluster exposes
        its shared one as ``cluster.engine``).
    names:
        Span names to include.
    pid:
        Restrict to spans carrying this ``pid`` attribute (spans with no
        ``pid`` attr, e.g. node failures, are always kept -- they affect
        every process).
    """
    wanted = set(names)
    out = []
    for span in engine.tracer.ordered():
        if span.name not in wanted:
            continue
        if pid is not None and "pid" in span.attrs and span.attrs["pid"] != pid:
            continue
        out.append(span)
    return out


def render_timeline(
    engine,
    names: Sequence[str] = TIMELINE_SPANS,
    pid: Optional[int] = None,
    title: Optional[str] = None,
) -> str:
    """Render the run's failure/checkpoint/restart timeline as a table.

    Open spans (a checkpoint abandoned when its node died mid-capture)
    render with an ``(open)`` duration -- that a span never closed is
    itself evidence.
    """
    rows: List[List[Any]] = []
    for span in timeline_events(engine, names=names, pid=pid):
        duration = fmt_ns(span.duration_ns) if span.finished else "(open)"
        rows.append([fmt_ns(span.begin_ns), span.name, duration, _span_detail(span)])
    if not rows:
        rows.append(["-", "(no events)", "-", ""])
    return render_table(["t", "event", "duration", "detail"], rows, title=title)


def export_metrics_json(
    engine,
    meta: Optional[Dict[str, Any]] = None,
    path: Optional[str] = None,
) -> str:
    """Export an engine's metrics + spans as canonical, validated JSON.

    The output is byte-stable across same-seed runs (sorted keys,
    compact separators, deterministic span ordering), so benchmarks can
    diff it directly.  When ``path`` is given the document is also
    written there.
    """
    doc = export_obs(engine.metrics, tracer=engine.tracer, meta=meta)
    text = to_json(doc)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text
