"""Rendering helpers for tables, bars, series and event timelines."""

from .survivability import render_replication_table
from .tables import fmt_bytes, fmt_ns, render_bars, render_series, render_table
from .timeline import export_metrics_json, render_timeline, timeline_events

__all__ = [
    "render_table",
    "render_bars",
    "render_series",
    "render_replication_table",
    "render_timeline",
    "timeline_events",
    "export_metrics_json",
    "fmt_bytes",
    "fmt_ns",
]
