"""Rendering helpers for tables, bars and series."""

from .survivability import render_replication_table
from .tables import fmt_bytes, fmt_ns, render_bars, render_series, render_table

__all__ = [
    "render_table",
    "render_bars",
    "render_series",
    "render_replication_table",
    "fmt_bytes",
    "fmt_ns",
]
