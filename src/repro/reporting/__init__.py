"""Rendering helpers for tables, bars and series."""

from .tables import fmt_bytes, fmt_ns, render_bars, render_series, render_table

__all__ = ["render_table", "render_bars", "render_series", "fmt_bytes", "fmt_ns"]
