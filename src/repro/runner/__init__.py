"""Parallel sharded experiment runner.

Experiment grids -- (experiment, params, seed) cells -- are sharded
across worker processes, merged deterministically (sorted by cell key,
independent of completion order) and cached on disk keyed by a
params+source digest, so re-running a sweep only recomputes changed
cells.  See :mod:`repro.runner.grid` for the contract.
"""

from .cache import DiskCache
from .grid import Cell, GridRunner, cache_key
from .merge import grid_to_json, merge_results
from .parallel import (
    ParallelResult,
    ProcessShardGroup,
    WorkerDiedError,
    run_parallel,
)
from .shmtransport import ShmRing

__all__ = [
    "Cell",
    "GridRunner",
    "DiskCache",
    "cache_key",
    "merge_results",
    "grid_to_json",
    "ParallelResult",
    "ProcessShardGroup",
    "ShmRing",
    "WorkerDiedError",
    "run_parallel",
]
