"""Parallel scenario runner: worker processes driving engine shards.

This is the process backend for :mod:`repro.simkernel.parallel` plus
the one entry point experiments call:

:func:`run_parallel`
    Build ``n_shards`` shard contexts from a scenario factory, drive
    them through conservative windows to the horizon, export each
    shard's ``repro.obs`` document and fold them into one canonical
    document (:mod:`repro.obs.fold`).  ``workers=1`` steps every shard
    in-process (:class:`~repro.simkernel.parallel.LocalShardGroup` --
    the determinism reference); ``workers > 1`` spreads shards over
    **persistent worker processes**.

Two process transports (``transport=`` on :func:`run_parallel`):

``"pipe"``
    The original protocol: length-delimited pickles over pipes for
    every verb, one pickled ``WindowReply`` (envelope objects included)
    per worker per barrier, one pickled obs document per shard at the
    end.
``"shm"``
    The zero-copy hot path (:mod:`repro.runner.shmtransport`): each
    worker owns two shared-memory frame rings.  A window's outbox
    crosses as **one**
    :class:`~repro.simkernel.parallel.EnvelopeBatch` frame -- packed
    NumPy columns plus a canonical-JSON payload arena -- and obs
    exports are folded worker-side
    (:func:`~repro.obs.fold.fold_exports_arrays`) and shipped as one
    canonical-JSON frame per worker.  The pipes carry only control
    verbs and tiny ``(seq, offset, nbytes)`` doorbells.  Frames larger
    than a ring fall back to raw bytes over the pipe; a non-``fork``
    start method (or missing ``shared_memory``) falls back to the pipe
    transport wholesale.  ``"auto"`` picks shm when those conditions
    hold.

The worker protocol is four lockstep verbs -- ``status`` / ``window``
/ ``deliver`` / ``export`` -- broadcast to all workers and then
collected from all, so shards advance concurrently between barriers.
Workers are persistent (spawned once per run, not per window): at a
few hundred windows per run, per-window process spawning would
dominate the simulation itself.  A worker that dies mid-run surfaces
as :class:`WorkerDiedError` naming the dead worker and its shards
instead of a barrier that hangs forever.

Determinism: the driver loop, the barrier exchange and the canonical
envelope ordering are identical for all backends and transports --
the shm path moves *representation* (columns instead of pickles), and
every receiving shard still sorts its batch by the canonical envelope
key -- so the folded export is byte-identical across ``workers``,
``transport`` *and* ``n_shards`` (the hard gate; see
``benchmarks/perf/check_parallel.py``).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs import MetricsRegistry, export_obs, to_json
from ..obs.fold import fold_exports, fold_exports_arrays, strip_metrics
from ..simkernel.engine import Engine
from ..simkernel.parallel import (
    Envelope,
    EnvelopeBatch,
    LocalShardGroup,
    ParallelError,
    ShardContext,
    ShardGroup,
    WindowReply,
    WindowStats,
    run_windows,
)
from .shmtransport import ShmRing, shm_available

__all__ = [
    "ParallelResult",
    "ProcessShardGroup",
    "WorkerDiedError",
    "run_parallel",
]

FactorySpec = Any  # callable or "module:function" dotted name

#: Per-direction ring capacity.  A window frame is ~30 bytes per
#: envelope plus its payload JSON; 1 MiB holds tens of thousands of
#: envelopes, and anything bigger falls back to the pipe per-frame.
DEFAULT_RING_BYTES = 1 << 20


class WorkerDiedError(ParallelError):
    """A worker process died mid-run (named, instead of a hung barrier).

    ``worker`` is the worker index, ``shards`` the shard ids it owned,
    ``exitcode`` the process exit status when already reaped.
    """

    def __init__(self, message: str, *, worker: int,
                 shards: Sequence[int], exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.shards = list(shards)
        self.exitcode = exitcode


def _resolve_factory(spec: FactorySpec) -> Callable:
    """Accept a top-level callable or a ``"module:function"`` name."""
    if callable(spec):
        name = getattr(spec, "__qualname__", "")
        if "<" in name or "." in name:
            raise ParallelError(
                f"scenario factory {name!r} must be an importable top-level "
                "function (workers re-import it by name)"
            )
        return spec
    if isinstance(spec, str) and ":" in spec:
        module, _, attr = spec.partition(":")
        import importlib

        return getattr(importlib.import_module(module), attr)
    raise ParallelError(f"bad scenario factory spec {spec!r}")


def _factory_name(spec: FactorySpec) -> str:
    fn = _resolve_factory(spec)
    return f"{fn.__module__}:{fn.__qualname__}"


def _build_shard(
    factory: Callable,
    params: Mapping[str, Any],
    seed: int,
    shard_id: int,
    n_shards: int,
    lookahead_ns: Optional[int],
) -> tuple:
    engine = Engine(seed=seed)
    ctx = ShardContext(engine, shard_id, n_shards, lookahead_ns=lookahead_ns)
    scenario = factory(ctx, dict(params), seed)
    return ctx, scenario


# ----------------------------------------------------------------------
# Worker side (module-level: picklable by reference under spawn)
# ----------------------------------------------------------------------
def _ship_frame(conn, ring: ShmRing, tag: str, nbytes: int, fill,
                extra) -> None:
    """Send one bulk frame: through the ring when it fits (doorbell on
    the pipe), as raw bytes over the pipe when it does not."""
    bell = ring.write_frame(nbytes, fill)
    if bell is not None:
        conn.send((tag, bell[0], bell[1], nbytes, extra))
    else:
        buf = bytearray(nbytes)
        fill(memoryview(buf))
        conn.send((tag + "_bytes", bytes(buf), extra))


def _worker_main(
    conn,
    paths: List[str],
    factory_name: str,
    params: Dict[str, Any],
    seed: int,
    shard_ids: List[int],
    n_shards: int,
    lookahead_ns: Optional[int],
    rings: Optional[Tuple[ShmRing, ShmRing]] = None,
) -> None:
    for p in reversed(paths):
        if p not in sys.path:
            sys.path.insert(0, p)
    factory = _resolve_factory(factory_name)
    shards = {
        sid: _build_shard(factory, params, seed, sid, n_shards, lookahead_ns)
        for sid in shard_ids
    }
    ring_in = ring_out = None
    if rings is not None:
        ring_in, ring_out = rings  # fork-inherited mappings

    def deliver_batch(batch: EnvelopeBatch) -> List[Tuple[int, Optional[int]]]:
        inboxes: Dict[int, List[Envelope]] = {}
        for env in batch.to_envelopes():
            inboxes.setdefault(env.dst_shard, []).append(env)
        out = []
        for sid, envs in inboxes.items():
            ctx, _ = shards[sid]
            ctx.deliver(envs)
            out.append((sid, ctx.next_time_ns()))
        return out

    try:
        while True:
            msg = conn.recv()
            verb = msg[0]
            if verb == "status":
                conn.send([(sid, ctx.next_time_ns())
                           for sid, (ctx, _) in shards.items()])
            elif verb == "window":
                end_ns = msg[1]
                outbox: List[Envelope] = []
                metas = []
                for sid, (ctx, scenario) in shards.items():
                    box, processed = ctx.run_window(end_ns)
                    stop = bool(getattr(scenario, "stop", lambda: False)())
                    if ring_out is None:
                        metas.append((sid, WindowReply(
                            box, ctx.next_time_ns(), processed, stop)))
                    else:
                        outbox.extend(box)
                        metas.append((sid, ctx.next_time_ns(), processed,
                                      stop))
                if ring_out is None:
                    conn.send(metas)
                elif not outbox:
                    conn.send(("empty", metas))
                else:
                    batch = EnvelopeBatch.from_envelopes(outbox)
                    _ship_frame(conn, ring_out, "frame", batch.nbytes,
                                batch.write_into, metas)
            elif verb == "deliver":
                inbox_map = msg[1]
                out = []
                for sid, envs in inbox_map.items():
                    ctx, _ = shards[sid]
                    ctx.deliver(envs)
                    out.append((sid, ctx.next_time_ns()))
                conn.send(out)
            elif verb == "deliver_shm":
                _, seq, off, nbytes = msg
                data = ring_in.read_frame(seq, off, nbytes)
                conn.send(deliver_batch(EnvelopeBatch.read_from(data)))
            elif verb == "deliver_bytes":
                conn.send(deliver_batch(EnvelopeBatch.read_from(msg[1])))
            elif verb == "export":
                meta = msg[1]
                docs, results = [], []
                for sid, (ctx, scenario) in shards.items():
                    doc = export_obs(ctx.engine.metrics,
                                     tracer=ctx.engine.tracer,
                                     meta=meta, now_ns=ctx.engine.now_ns)
                    result = getattr(scenario, "result", lambda: None)()
                    if ring_out is None:
                        results.append((sid, doc, result))
                    else:
                        docs.append(strip_metrics(doc))
                        results.append((sid, result))
                if ring_out is None:
                    conn.send(results)
                else:
                    # Fold this worker's shards here, ship one canonical
                    # JSON frame; the driver folds workers.  The fold is
                    # associative, so worker-then-driver equals flat.
                    blob = to_json(fold_exports_arrays(docs)).encode("utf-8")

                    def fill(mv, blob=blob):
                        mv[:len(blob)] = blob
                        return len(blob)

                    _ship_frame(conn, ring_out, "frame", len(blob), fill,
                                results)
            elif verb == "exit":
                break
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown worker verb {verb!r}")
    finally:
        conn.close()
        if rings is not None:
            ring_in.close()
            ring_out.close()


class ProcessShardGroup(ShardGroup):
    """Shards spread over persistent worker processes.

    Shard ``i`` lives on worker ``i % workers`` (so a 4-shard run with
    4 workers is one shard per process).  Every lockstep operation is
    broadcast to all workers first and collected second -- the collect
    order is by worker index, and replies are re-sorted by shard id, so
    the driver sees the exact same reply layout as the local group.

    ``transport`` selects the data path: ``"shm"`` gives each worker a
    driver->worker and a worker->driver :class:`ShmRing` and overrides
    :meth:`exchange` with columnar frame routing; ``"pipe"`` is the
    pickle protocol; ``"auto"`` picks shm when the platform can fork
    and shared memory exists.  :attr:`fallback_frames` counts frames
    that overflowed a ring and shipped over the pipe instead.
    """

    def __init__(
        self,
        factory: FactorySpec,
        params: Mapping[str, Any],
        seed: int,
        *,
        n_shards: int,
        lookahead_ns: Optional[int],
        workers: int,
        transport: str = "auto",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if workers < 1:
            raise ParallelError("need at least one worker")
        if transport not in ("auto", "pipe", "shm"):
            raise ParallelError(f"unknown transport {transport!r}")
        self.size = int(n_shards)
        workers = min(workers, self.size)
        name = _factory_name(factory)
        try:
            ctx = mp.get_context("fork")
            can_fork = True
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
            can_fork = False
        if transport == "shm" and not (can_fork and shm_available()):
            raise ParallelError(
                "shm transport needs the fork start method and "
                "multiprocessing.shared_memory"
            )
        if transport == "auto":
            transport = "shm" if (can_fork and shm_available()) else "pipe"
        self.transport = transport
        self.fallback_frames = 0
        self._conns = []
        self._procs = []
        self._rings_in: List[Optional[ShmRing]] = []
        self._rings_out: List[Optional[ShmRing]] = []
        self._pending: List[EnvelopeBatch] = []
        self._owned = [[sid for sid in range(self.size) if sid % workers == w]
                       for w in range(workers)]
        for w, shard_ids in enumerate(self._owned):
            rings = None
            if transport == "shm":
                rings = (ShmRing(ring_bytes, name=f"w{w}-in"),
                         ShmRing(ring_bytes, name=f"w{w}-out"))
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, list(sys.path), name, dict(params), seed,
                      shard_ids, self.size, lookahead_ns, rings),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
            self._rings_in.append(rings[0] if rings else None)
            self._rings_out.append(rings[1] if rings else None)

    # ------------------------------------------------------------------
    # Pipe wrappers: a dead worker raises a named error, not a hang.
    # ------------------------------------------------------------------
    def _died(self, w: int, exc: Exception) -> WorkerDiedError:
        proc = self._procs[w]
        proc.join(timeout=1)
        code = proc.exitcode
        return WorkerDiedError(
            f"worker {w} (shards {self._owned[w]}) died mid-run"
            f"{f' (exit code {code})' if code is not None else ''}: {exc!r}",
            worker=w, shards=self._owned[w], exitcode=code,
        )

    def _send(self, w: int, msg: tuple) -> None:
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise self._died(w, exc) from exc

    def _recv(self, w: int) -> Any:
        try:
            return self._conns[w].recv()
        except (EOFError, OSError) as exc:
            raise self._died(w, exc) from exc

    def _broadcast(self, msg: tuple) -> List[Any]:
        for w in range(len(self._conns)):
            self._send(w, msg)
        merged: List[Any] = []
        for w in range(len(self._conns)):
            merged.extend(self._recv(w))
        return merged

    # ------------------------------------------------------------------
    def status_all(self) -> List[Optional[int]]:
        """Each shard's next pending event time (None when drained)."""
        replies = dict(self._broadcast(("status",)))
        return [replies[sid] for sid in range(self.size)]

    def window_all(self, end_ns: int) -> List[WindowReply]:
        """Run every shard to ``end_ns``; one reply per shard.

        On the shm transport each worker answers with per-shard meta
        tuples plus at most one envelope frame; frames are decoded (a
        one-shot snapshot -- the ring slot is reused next window) and
        parked for :meth:`exchange`.
        """
        if self.transport != "shm":
            replies = dict(self._broadcast(("window", end_ns)))
            return [replies[sid] for sid in range(self.size)]
        for w in range(len(self._conns)):
            self._send(w, ("window", end_ns))
        by_sid: Dict[int, WindowReply] = {}
        self._pending = []
        for w in range(len(self._conns)):
            reply = self._recv(w)
            tag, metas = reply[0], reply[-1]
            if tag == "frame":
                _, seq, off, nbytes, _ = reply
                data = self._rings_out[w].read_frame(seq, off, nbytes)
                self._pending.append(EnvelopeBatch.read_from(data))
            elif tag == "frame_bytes":
                self.fallback_frames += 1
                self._pending.append(EnvelopeBatch.read_from(reply[1]))
            for sid, next_ns, processed, stop in metas:
                by_sid[sid] = WindowReply([], next_ns, processed, stop)
        return [by_sid[sid] for sid in range(self.size)]

    def exchange(
        self, replies: List[WindowReply]
    ) -> Tuple[List[Optional[int]], int]:
        """Route the window's envelopes to their destination shards.

        Pipe transport: the per-envelope default from
        :class:`~repro.simkernel.parallel.ShardGroup`.  Shm transport:
        concatenate the parked frames, slice per destination worker on
        the ``dst_shard`` column, and write each worker one frame into
        its driver->worker ring -- no envelope objects exist driver-side.
        """
        if self.transport != "shm":
            return super().exchange(replies)
        batches, self._pending = self._pending, []
        nexts = [reply.next_ns for reply in replies]
        if not batches:
            return nexts, 0
        allb = batches[0] if len(batches) == 1 else EnvelopeBatch.concat(
            batches)
        exchanged = allb.n
        nworkers = len(self._conns)
        dst_worker = allb.dst_shard % nworkers
        contacted = []
        for w in range(nworkers):
            mask = dst_worker == w
            if not mask.any():
                continue
            sub = allb.select(mask)
            nbytes = sub.nbytes
            bell = self._rings_in[w].write_frame(nbytes, sub.write_into)
            if bell is not None:
                self._send(w, ("deliver_shm", bell[0], bell[1], nbytes))
            else:
                self.fallback_frames += 1
                buf = bytearray(nbytes)
                sub.write_into(memoryview(buf))
                self._send(w, ("deliver_bytes", bytes(buf)))
            contacted.append(w)
        for w in contacted:
            for sid, t in self._recv(w):
                nexts[sid] = t
        return nexts, exchanged

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        """Hand each shard its inbox; only workers holding a non-empty
        inbox are contacted.  Returns the post-delivery next-event time
        for shards that received anything (None entries elsewhere)."""
        nexts: List[Optional[int]] = [None] * self.size
        contacted = []
        for w in range(len(self._conns)):
            inbox_map = {
                sid: inboxes[sid]
                for sid in range(w, self.size, len(self._conns))
                if inboxes[sid]
            }
            if inbox_map:
                self._send(w, ("deliver", inbox_map))
                contacted.append(w)
        for w in contacted:
            for sid, t in self._recv(w):
                nexts[sid] = t
        return nexts

    def export_all(self, meta: Mapping[str, Any]):
        """Collect obs documents and scenario results.

        Pipe transport: one pickled document per shard, shard-id order.
        Shm transport: one worker-folded canonical-JSON frame per
        worker (the docs list then holds one pre-folded document per
        worker); scenario results still arrive per shard and are
        re-sorted into shard-id order either way.
        """
        if self.transport != "shm":
            replies = self._broadcast(("export", dict(meta)))
            replies.sort(key=lambda r: r[0])
            return ([doc for _, doc, _ in replies],
                    [result for _, _, result in replies])
        for w in range(len(self._conns)):
            self._send(w, ("export", dict(meta)))
        docs, results = [], []
        for w in range(len(self._conns)):
            reply = self._recv(w)
            tag = reply[0]
            if tag == "frame":
                _, seq, off, nbytes, res = reply
                blob = self._rings_out[w].read_frame(seq, off, nbytes)
            else:  # "frame_bytes"
                self.fallback_frames += 1
                _, blob, res = reply
            docs.append(json.loads(blob.decode("utf-8")))
            results.extend(res)
        results.sort(key=lambda r: r[0])
        return docs, [result for _, result in results]

    def close(self) -> None:
        """Shut the workers down (terminate any that hang on join) and
        release the shared-memory rings (the driver created them, so
        the driver unlinks them)."""
        for conn in self._conns:
            try:
                conn.send(("exit",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
        for ring in self._rings_in + self._rings_out:
            if ring is not None:
                ring.close(unlink=True)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
@dataclass
class ParallelResult:
    """Everything one parallel run produces.

    ``obs`` is the folded, engine-metric-stripped document the
    byte-identity gate covers (``obs_json`` is its canonical
    serialization).  ``shard_obs`` holds the fold's inputs: one
    document per shard (local and pipe backends) or one pre-folded
    document per worker (shm transport).  ``barrier_obs`` carries the
    topology-dependent ``parallel.*`` window metrics and deliberately
    stays out of ``obs``.  ``transport`` records the data path used:
    ``"local"``, ``"pipe"`` or ``"shm"``.
    """

    obs: Dict[str, Any]
    obs_json: str
    shard_obs: List[Dict[str, Any]]
    shard_results: List[Any]
    stats: WindowStats
    barrier_obs: Dict[str, Any] = field(default_factory=dict)
    transport: str = "local"


def run_parallel(
    factory: FactorySpec,
    params: Mapping[str, Any],
    seed: int,
    *,
    n_shards: int,
    horizon_ns: int,
    lookahead_ns: Optional[int] = None,
    window_ns: Optional[int] = None,
    workers: int = 1,
    transport: str = "auto",
    meta: Optional[Mapping[str, Any]] = None,
) -> ParallelResult:
    """Run one sharded scenario to ``horizon_ns`` and fold its exports.

    Parameters
    ----------
    factory:
        Scenario factory (see :mod:`repro.cluster.scenarios`) -- a
        top-level callable or ``"module:function"`` dotted name.
    n_shards:
        How many engine shards to partition the scenario into.  The
        folded export must not depend on this value; that is the gate.
    lookahead_ns:
        Cross-shard latency floor.  None means the scenario has no
        cross-shard channels (sends would raise).
    window_ns:
        Barrier spacing.  Defaults to the lookahead; may be smaller
        (tighter stop-flag sampling) but never larger.  With neither
        set, the run is one window to the horizon.
    workers:
        1 = in-process reference backend; >1 = persistent worker
        processes (capped at ``n_shards``).
    transport:
        Process data path: ``"shm"``, ``"pipe"`` or ``"auto"``
        (shm when fork + shared memory are available).  Ignored for
        ``workers=1``.  The folded export must not depend on this
        value either -- the CI smoke asserts pipe-vs-shm byte equality.
    meta:
        Experiment metadata stamped into every shard's export.  Must be
        shard-invariant (the fold enforces it).
    """
    if window_ns is None:
        window_ns = lookahead_ns
    if (window_ns is not None and lookahead_ns is not None
            and window_ns > lookahead_ns):
        raise ParallelError(
            f"window {window_ns} exceeds lookahead {lookahead_ns}: the "
            "conservative condition would not hold"
        )
    meta = dict(meta or {})
    registry = MetricsRegistry()

    if workers == 1:
        fn = _resolve_factory(factory)
        shards = [
            _build_shard(fn, params, seed, sid, n_shards, lookahead_ns)
            for sid in range(n_shards)
        ]
        group: Any = LocalShardGroup(shards)
        stats = run_windows(group, horizon_ns=horizon_ns,
                            window_ns=window_ns, registry=registry)
        shard_obs = [
            export_obs(ctx.engine.metrics, tracer=ctx.engine.tracer,
                       meta=meta, now_ns=ctx.engine.now_ns)
            for ctx, _ in shards
        ]
        shard_results = [
            getattr(scenario, "result", lambda: None)()
            for _, scenario in shards
        ]
        used_transport = "local"
        folded = fold_exports([strip_metrics(doc) for doc in shard_obs])
    else:
        group = ProcessShardGroup(
            factory, params, seed,
            n_shards=n_shards, lookahead_ns=lookahead_ns, workers=workers,
            transport=transport,
        )
        try:
            stats = run_windows(group, horizon_ns=horizon_ns,
                                window_ns=window_ns, registry=registry)
            shard_obs, shard_results = group.export_all(meta)
        finally:
            group.close()
        used_transport = group.transport
        if used_transport == "shm":
            # Workers already stripped and folded their shards; fold
            # the per-worker documents (associative => same bytes).
            registry.counter("parallel.shm_fallback_frames").inc(
                group.fallback_frames)
            folded = fold_exports_arrays(shard_obs)
        else:
            folded = fold_exports([strip_metrics(doc) for doc in shard_obs])

    barrier_obs = registry.to_dict()
    return ParallelResult(
        obs=folded,
        obs_json=to_json(folded),
        shard_obs=shard_obs,
        shard_results=shard_results,
        stats=stats,
        barrier_obs=barrier_obs,
        transport=used_transport,
    )
