"""Parallel scenario runner: worker processes driving engine shards.

This is the process backend for :mod:`repro.simkernel.parallel` plus
the one entry point experiments call:

:func:`run_parallel`
    Build ``n_shards`` shard contexts from a scenario factory, drive
    them through conservative windows to the horizon, export each
    shard's ``repro.obs`` document and fold them into one canonical
    document (:mod:`repro.obs.fold`).  ``workers=1`` steps every shard
    in-process (:class:`~repro.simkernel.parallel.LocalShardGroup` --
    the determinism reference); ``workers > 1`` spreads shards over
    **persistent worker processes** talking length-delimited pickles
    over pipes.

The worker protocol is four verbs -- ``status`` / ``window`` /
``deliver`` / ``export`` -- broadcast to all workers and then collected
from all, so shards advance concurrently between barriers.  Workers are
persistent (spawned once per run, not per window): at a few hundred
windows per run, per-window process spawning would dominate the
simulation itself.

Determinism: the driver loop, the barrier exchange and the canonical
envelope ordering are identical for both backends, and scenario
factories are shipped as ``"module:function"`` dotted names re-imported
in the worker -- the same discipline :mod:`repro.runner.grid` uses --
so the folded export is byte-identical across ``workers`` *and* across
``n_shards`` (the hard gate; see ``benchmarks/perf/check_parallel.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from ..obs import MetricsRegistry, export_obs, to_json
from ..obs.fold import fold_exports, strip_metrics
from ..simkernel.engine import Engine
from ..simkernel.parallel import (
    Envelope,
    LocalShardGroup,
    ParallelError,
    ShardContext,
    ShardGroup,
    WindowReply,
    WindowStats,
    run_windows,
)

__all__ = ["ParallelResult", "ProcessShardGroup", "run_parallel"]

FactorySpec = Any  # callable or "module:function" dotted name


def _resolve_factory(spec: FactorySpec) -> Callable:
    """Accept a top-level callable or a ``"module:function"`` name."""
    if callable(spec):
        name = getattr(spec, "__qualname__", "")
        if "<" in name or "." in name:
            raise ParallelError(
                f"scenario factory {name!r} must be an importable top-level "
                "function (workers re-import it by name)"
            )
        return spec
    if isinstance(spec, str) and ":" in spec:
        module, _, attr = spec.partition(":")
        import importlib

        return getattr(importlib.import_module(module), attr)
    raise ParallelError(f"bad scenario factory spec {spec!r}")


def _factory_name(spec: FactorySpec) -> str:
    fn = _resolve_factory(spec)
    return f"{fn.__module__}:{fn.__qualname__}"


def _build_shard(
    factory: Callable,
    params: Mapping[str, Any],
    seed: int,
    shard_id: int,
    n_shards: int,
    lookahead_ns: Optional[int],
) -> tuple:
    engine = Engine(seed=seed)
    ctx = ShardContext(engine, shard_id, n_shards, lookahead_ns=lookahead_ns)
    scenario = factory(ctx, dict(params), seed)
    return ctx, scenario


# ----------------------------------------------------------------------
# Worker side (module-level: picklable by reference under spawn)
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    paths: List[str],
    factory_name: str,
    params: Dict[str, Any],
    seed: int,
    shard_ids: List[int],
    n_shards: int,
    lookahead_ns: Optional[int],
) -> None:
    for p in reversed(paths):
        if p not in sys.path:
            sys.path.insert(0, p)
    factory = _resolve_factory(factory_name)
    shards = {
        sid: _build_shard(factory, params, seed, sid, n_shards, lookahead_ns)
        for sid in shard_ids
    }
    try:
        while True:
            msg = conn.recv()
            verb = msg[0]
            if verb == "status":
                conn.send([(sid, ctx.next_time_ns())
                           for sid, (ctx, _) in shards.items()])
            elif verb == "window":
                end_ns = msg[1]
                out = []
                for sid, (ctx, scenario) in shards.items():
                    outbox, processed = ctx.run_window(end_ns)
                    stop = bool(getattr(scenario, "stop", lambda: False)())
                    out.append((sid, WindowReply(outbox, ctx.next_time_ns(),
                                                 processed, stop)))
                conn.send(out)
            elif verb == "deliver":
                inbox_map = msg[1]
                out = []
                for sid, envs in inbox_map.items():
                    ctx, _ = shards[sid]
                    ctx.deliver(envs)
                    out.append((sid, ctx.next_time_ns()))
                conn.send(out)
            elif verb == "export":
                meta = msg[1]
                out = []
                for sid, (ctx, scenario) in shards.items():
                    doc = export_obs(ctx.engine.metrics,
                                     tracer=ctx.engine.tracer,
                                     meta=meta, now_ns=ctx.engine.now_ns)
                    result = getattr(scenario, "result", lambda: None)()
                    out.append((sid, doc, result))
                conn.send(out)
            elif verb == "exit":
                break
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown worker verb {verb!r}")
    finally:
        conn.close()


class ProcessShardGroup(ShardGroup):
    """Shards spread over persistent worker processes.

    Shard ``i`` lives on worker ``i % workers`` (so a 4-shard run with
    4 workers is one shard per process).  Every lockstep operation is
    broadcast to all workers first and collected second -- the collect
    order is by worker index, and replies are re-sorted by shard id, so
    the driver sees the exact same reply layout as the local group.
    """

    def __init__(
        self,
        factory: FactorySpec,
        params: Mapping[str, Any],
        seed: int,
        *,
        n_shards: int,
        lookahead_ns: Optional[int],
        workers: int,
    ) -> None:
        if workers < 1:
            raise ParallelError("need at least one worker")
        self.size = int(n_shards)
        workers = min(workers, self.size)
        name = _factory_name(factory)
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        self._conns = []
        self._procs = []
        owned = [[sid for sid in range(self.size) if sid % workers == w]
                 for w in range(workers)]
        for shard_ids in owned:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, list(sys.path), name, dict(params), seed,
                      shard_ids, self.size, lookahead_ns),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def _broadcast(self, msg: tuple, conns=None) -> List[Any]:
        conns = self._conns if conns is None else conns
        for conn in conns:
            conn.send(msg)
        merged: List[Any] = []
        for conn in conns:
            merged.extend(conn.recv())
        return merged

    def status_all(self) -> List[Optional[int]]:
        """Each shard's next pending event time (None when drained)."""
        replies = dict(self._broadcast(("status",)))
        return [replies[sid] for sid in range(self.size)]

    def window_all(self, end_ns: int) -> List[WindowReply]:
        """Run every shard to ``end_ns``; one reply per shard."""
        replies = dict(self._broadcast(("window", end_ns)))
        return [replies[sid] for sid in range(self.size)]

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        """Hand each shard its inbox; only workers holding a non-empty
        inbox are contacted.  Returns the post-delivery next-event time
        for shards that received anything (None entries elsewhere)."""
        nexts: List[Optional[int]] = [None] * self.size
        conns = []
        for w, conn in enumerate(self._conns):
            inbox_map = {
                sid: inboxes[sid]
                for sid in range(w, self.size, len(self._conns))
                if inboxes[sid]
            }
            if inbox_map:
                conn.send(("deliver", inbox_map))
                conns.append(conn)
        for conn in conns:
            for sid, t in conn.recv():
                nexts[sid] = t
        return nexts

    def export_all(self, meta: Mapping[str, Any]):
        """Collect per-shard obs documents and scenario results, in
        shard-id order regardless of worker layout."""
        replies = self._broadcast(("export", dict(meta)))
        replies.sort(key=lambda r: r[0])
        return ([doc for _, doc, _ in replies],
                [result for _, _, result in replies])

    def close(self) -> None:
        """Shut the workers down (terminate any that hang on join)."""
        for conn in self._conns:
            try:
                conn.send(("exit",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
@dataclass
class ParallelResult:
    """Everything one parallel run produces.

    ``obs`` is the folded, engine-metric-stripped document the
    byte-identity gate covers (``obs_json`` is its canonical
    serialization).  ``barrier_obs`` carries the topology-dependent
    ``parallel.*`` window metrics and deliberately stays out of
    ``obs``.
    """

    obs: Dict[str, Any]
    obs_json: str
    shard_obs: List[Dict[str, Any]]
    shard_results: List[Any]
    stats: WindowStats
    barrier_obs: Dict[str, Any] = field(default_factory=dict)


def run_parallel(
    factory: FactorySpec,
    params: Mapping[str, Any],
    seed: int,
    *,
    n_shards: int,
    horizon_ns: int,
    lookahead_ns: Optional[int] = None,
    window_ns: Optional[int] = None,
    workers: int = 1,
    meta: Optional[Mapping[str, Any]] = None,
) -> ParallelResult:
    """Run one sharded scenario to ``horizon_ns`` and fold its exports.

    Parameters
    ----------
    factory:
        Scenario factory (see :mod:`repro.cluster.scenarios`) -- a
        top-level callable or ``"module:function"`` dotted name.
    n_shards:
        How many engine shards to partition the scenario into.  The
        folded export must not depend on this value; that is the gate.
    lookahead_ns:
        Cross-shard latency floor.  None means the scenario has no
        cross-shard channels (sends would raise).
    window_ns:
        Barrier spacing.  Defaults to the lookahead; may be smaller
        (tighter stop-flag sampling) but never larger.  With neither
        set, the run is one window to the horizon.
    workers:
        1 = in-process reference backend; >1 = persistent worker
        processes (capped at ``n_shards``).
    meta:
        Experiment metadata stamped into every shard's export.  Must be
        shard-invariant (the fold enforces it).
    """
    if window_ns is None:
        window_ns = lookahead_ns
    if (window_ns is not None and lookahead_ns is not None
            and window_ns > lookahead_ns):
        raise ParallelError(
            f"window {window_ns} exceeds lookahead {lookahead_ns}: the "
            "conservative condition would not hold"
        )
    meta = dict(meta or {})
    registry = MetricsRegistry()

    if workers == 1:
        fn = _resolve_factory(factory)
        shards = [
            _build_shard(fn, params, seed, sid, n_shards, lookahead_ns)
            for sid in range(n_shards)
        ]
        group: Any = LocalShardGroup(shards)
        stats = run_windows(group, horizon_ns=horizon_ns,
                            window_ns=window_ns, registry=registry)
        shard_obs = [
            export_obs(ctx.engine.metrics, tracer=ctx.engine.tracer,
                       meta=meta, now_ns=ctx.engine.now_ns)
            for ctx, _ in shards
        ]
        shard_results = [
            getattr(scenario, "result", lambda: None)()
            for _, scenario in shards
        ]
    else:
        group = ProcessShardGroup(
            factory, params, seed,
            n_shards=n_shards, lookahead_ns=lookahead_ns, workers=workers,
        )
        try:
            stats = run_windows(group, horizon_ns=horizon_ns,
                                window_ns=window_ns, registry=registry)
            shard_obs, shard_results = group.export_all(meta)
        finally:
            group.close()

    folded = fold_exports([strip_metrics(doc) for doc in shard_obs])
    barrier_obs = registry.to_dict()
    return ParallelResult(
        obs=folded,
        obs_json=to_json(folded),
        shard_obs=shard_obs,
        shard_results=shard_results,
        stats=stats,
        barrier_obs=barrier_obs,
    )
