"""Importable grid-cell functions for the E-series experiment sweeps.

Worker processes re-import these by name, so every cell here is a
top-level function ``fn(params, seed) -> dict`` returning only
JSON-serializable data (rendered tables and timelines as strings,
``repro.obs`` exports as documents).  Each cell builds its own engine
from its seed: running a cell twice, in any process, yields identical
bytes -- the property the runner's deterministic merge and the CI
worker-count smoke rest on.

The E12 cell is the BlueGene/L-scale one: it measures system MTBF with
a :class:`~repro.cluster.NodeFleet` cohort, so 65,536 nodes cost one
vectorized draw per trial instead of 65,536 scheduled callbacks.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from ..cluster import (
    CheckpointCoordinator,
    Cluster,
    ExponentialFailures,
    NodeFleet,
    ParallelJob,
    trial_first_failure_s,
)
from ..core.direction import AutonomicCheckpointer
from ..mechanisms import UCLiK
from ..obs import export_obs
from ..reporting import render_replication_table, render_timeline
from ..simkernel.costs import NS_PER_MS, NS_PER_S
from ..simkernel.engine import Engine
from ..workloads import SparseWriter
from .parallel import run_parallel

__all__ = [
    "e12_mtbf_cell",
    "e12_parallel_cell",
    "e13_survivability_cell",
    "e18_parallel_cell",
    "e19_replication_cell",
    "e22_parallel_cell",
    "e23_hierarchy_cell",
]


def _writer(rank: int) -> SparseWriter:
    """The standard 2-rank experiment workload."""
    return SparseWriter(
        iterations=4000, dirty_fraction=0.03, heap_bytes=512 * 1024,
        seed=rank, compute_ns=100_000,
    )


# ----------------------------------------------------------------------
# E12: system MTBF vs machine size, fleet-vectorized
# ----------------------------------------------------------------------
def e12_mtbf_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Measure time-to-first-failure for an ``n_nodes`` machine.

    ``n_trials`` distributional trials read the pre-sampled cohort
    arrays directly; one additional engine-driven run (dispatcher event
    through the timer wheel) produces the cell's ``repro.obs`` export.
    """
    n_nodes = int(params["n_nodes"])
    node_mtbf_s = float(params["node_mtbf_s"])
    n_trials = int(params.get("n_trials", 200))

    rng = np.random.default_rng(seed)
    model = ExponentialFailures(node_mtbf_s, rng=rng)
    ttfs = []
    for _ in range(n_trials):
        eng = Engine(seed=seed)
        fleet = NodeFleet(eng, n_nodes, model, repair_s=1e12)
        ttfs.append(fleet.time_to_first_failure_s())

    # One run through the event loop for the observability export.
    eng = Engine(seed=seed)
    fleet = NodeFleet(
        eng, n_nodes,
        ExponentialFailures(node_mtbf_s, rng=np.random.default_rng(seed)),
        repair_s=1e12,
    )
    fleet.start()
    eng.run(until=lambda: fleet.failures > 0,
            until_ns=int(100 * node_mtbf_s * NS_PER_S))
    return {
        "n_nodes": n_nodes,
        "node_mtbf_s": node_mtbf_s,
        "n_trials": n_trials,
        "sim_system_mtbf_s": float(np.mean(ttfs)),
        "analytic_system_mtbf_s": node_mtbf_s / n_nodes,
        "first_failure_ns": fleet.first_failure_ns,
        "obs": export_obs(
            eng.metrics, tracer=eng.tracer,
            meta={"experiment": "e12", "n_nodes": n_nodes, "seed": seed},
            now_ns=eng.now_ns,
        ),
    }


# ----------------------------------------------------------------------
# E12 at fleet scale: sharded conservative-window runs
# ----------------------------------------------------------------------
def e12_parallel_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E12 rescaled past one core: MTBF of 262,144- and 1,048,576-node
    machines on the sharded engine.

    Distributional trials read the counter-based per-node streams
    directly (:func:`~repro.cluster.trial_first_failure_s` -- one
    vectorized draw per trial, shard-partition-invariant by
    construction); one engine-driven :func:`run_parallel` probe run
    with ``stop_on_first_failure`` produces the folded obs export the
    1-vs-N byte-identity gate covers.
    """
    n_nodes = int(params["n_nodes"])
    node_mtbf_s = float(params["node_mtbf_s"])
    n_trials = int(params.get("n_trials", 50))
    shards = int(params.get("shards", 4))
    system_mtbf_s = node_mtbf_s / n_nodes

    model = ExponentialFailures(node_mtbf_s, stream_seed=seed)
    ttfs = [trial_first_failure_s(model, 0, n_nodes, t)
            for t in range(n_trials)]

    probe = run_parallel(
        "repro.cluster.scenarios:fleet_storm",
        {"n_nodes": n_nodes, "mtbf_s": node_mtbf_s, "repair_s": 1e12,
         "stop_on_first_failure": True},
        seed,
        n_shards=shards,
        horizon_ns=int(100 * system_mtbf_s * NS_PER_S),
        window_ns=max(1, int(system_mtbf_s * NS_PER_S) // 4),
        meta={"experiment": "e12p", "n_nodes": n_nodes, "seed": seed},
    )
    firsts = [r["first_failure_ns"] for r in probe.shard_results
              if r["first_failure_ns"] is not None]
    return {
        "n_nodes": n_nodes,
        "node_mtbf_s": node_mtbf_s,
        "n_trials": n_trials,
        "shards": shards,
        "sim_system_mtbf_s": float(np.mean(ttfs)),
        "analytic_system_mtbf_s": system_mtbf_s,
        "first_failure_ns": min(firsts) if firsts else None,
        "windows": probe.stats.windows,
        "obs": probe.obs,
    }


# ----------------------------------------------------------------------
# E18 at fleet scale: failure churn plus storage restart traffic
# ----------------------------------------------------------------------
def e18_parallel_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """E18's direction-forward fleet rescaled onto the sharded engine:
    every failure pulls a restart image from the sharded stable-storage
    tier, so availability and storage load come from one run."""
    n_nodes = int(params["n_nodes"])
    shards = int(params.get("shards", 4))
    horizon_s = float(params.get("horizon_s", 3600.0))
    propagation_ns = int(params.get("propagation_ns", NS_PER_MS))
    run_params = {
        "n_nodes": n_nodes,
        "mtbf_s": float(params.get("mtbf_s", 3.0e5)),
        "repair_s": float(params.get("repair_s", 300.0)),
        "model": params.get("model", "exp"),
        "n_servers": int(params.get("n_servers", 16)),
        "image_bytes": int(params.get("image_bytes", 1 << 26)),
        "propagation_ns": propagation_ns,
        "service_floor_ns": int(params.get("service_floor_ns", NS_PER_MS)),
        "ns_per_byte": float(params.get("ns_per_byte", 0.01)),
    }
    res = run_parallel(
        "repro.cluster.scenarios:fleet_restart_traffic",
        run_params, seed,
        n_shards=shards,
        horizon_ns=int(horizon_s * NS_PER_S),
        lookahead_ns=propagation_ns,
        meta={"experiment": "e18p", "n_nodes": n_nodes, "seed": seed},
    )
    downtime_ns = sum(r["downtime_ns"] for r in res.shard_results)
    counters = res.obs["metrics"]["counters"]
    return {
        "n_nodes": n_nodes,
        "shards": shards,
        "horizon_s": horizon_s,
        "failures": counters.get("fleet.failures", 0),
        "restart_reads": counters.get("sstore.requests", 0),
        "restart_acks": counters.get("sstore.acks", 0),
        "restart_bytes": counters.get("sstore.req_bytes", 0),
        "availability": 1.0 - downtime_ns / (n_nodes * horizon_s * NS_PER_S),
        "windows": res.stats.windows,
        "envelopes": res.stats.exchanged,
        "obs": res.obs,
    }


# ----------------------------------------------------------------------
# E22 stressor: all-cross-shard ring traffic
# ----------------------------------------------------------------------
def e22_parallel_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Ring-traffic stressor: every message hop crosses the barrier
    exchange, and the order-invariant xor digest proves exactly-once
    delivery independent of shard count."""
    n_ranks = int(params.get("n_ranks", 64))
    shards = int(params.get("shards", 4))
    hop_ns = int(params.get("hop_ns", 50_000))
    run_params = {
        "n_ranks": n_ranks,
        "hop_ns": hop_ns,
        "hops": int(params.get("hops", 8)),
        "msgs_per_rank": int(params.get("msgs_per_rank", 4)),
    }
    res = run_parallel(
        "repro.cluster.scenarios:ring_traffic",
        run_params, seed,
        n_shards=shards,
        horizon_ns=int(params.get("horizon_ns", NS_PER_S)),
        lookahead_ns=hop_ns,
        meta={"experiment": "e22p", "n_ranks": n_ranks, "seed": seed},
    )
    digest = 0
    for r in res.shard_results:
        digest ^= r["digest"]
    counters = res.obs["metrics"]["counters"]
    return {
        "n_ranks": n_ranks,
        "shards": shards,
        "sent": counters.get("ring.sent", 0),
        "recv": counters.get("ring.recv", 0),
        "exactly_once": counters.get("ring.sent", 0) ==
        counters.get("ring.recv", -1),
        "digest": f"{digest:016x}",
        "windows": res.stats.windows,
        "envelopes": res.stats.exchanged,
        "obs": res.obs,
    }


# ----------------------------------------------------------------------
# E13: local vs remote checkpoint survivability
# ----------------------------------------------------------------------
def e13_survivability_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One E13 scenario: ``local`` / ``remote`` node-failure runs or the
    ``reboot`` power-cycle case local storage does handle."""
    scenario = params["scenario"]
    if scenario == "reboot":
        cl = Cluster(n_nodes=1, seed=seed)
        node = cl.node(0)
        mech = UCLiK(node.kernel, node.local_storage)
        wl = _writer(0)
        task = wl.spawn(node.kernel)
        cl.run_for(50 * NS_PER_MS)
        req = mech.request_checkpoint(task)
        cl.run_for(2 * NS_PER_S)
        cl.fail_node(0)
        node.repair(disk_survived=True)
        mech2 = UCLiK(node.kernel, node.local_storage)
        res = mech2.restart(req.key)
        node.kernel.run_until_exit(res.task, limit_ns=10**13)
        return {
            "scenario": scenario,
            "completed": res.task.exit_code == 0,
            "checkpoint_completed": req.completed_ns is not None,
            "obs": export_obs(
                cl.engine.metrics, tracer=cl.engine.tracer,
                meta={"experiment": "e13", "scenario": scenario, "seed": seed},
                now_ns=cl.engine.now_ns,
            ),
        }

    cl = Cluster(n_nodes=2, n_spares=1, seed=seed)
    job = ParallelJob(cl, _writer, n_ranks=2, name=scenario)
    if scenario == "local":
        mechs = {n.node_id: UCLiK(n.kernel, n.local_storage) for n in cl.nodes}
    else:
        mechs = {
            n.node_id: AutonomicCheckpointer(n.kernel, cl.remote_storage)
            for n in cl.nodes
        }
    coord = CheckpointCoordinator(job, mechs, 30 * NS_PER_MS)
    coord.start()
    cl.engine.after(100 * NS_PER_MS, lambda: cl.fail_node(0))
    done = job.run_to_completion(limit_ns=120 * NS_PER_S)
    return {
        "scenario": scenario,
        "completed": done,
        "waves": len(coord.waves),
        "recoveries": coord.recoveries,
        "unrecoverable": coord.unrecoverable,
        "obs": export_obs(
            cl.engine.metrics, tracer=cl.engine.tracer,
            meta={"experiment": "e13", "scenario": scenario, "seed": seed},
            now_ns=cl.engine.now_ns,
        ),
    }


# ----------------------------------------------------------------------
# E19: replicated stable storage under storage-server failures
# ----------------------------------------------------------------------
def e19_replication_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One E19 grid cell: a 2-rank coordinated job over the replicated
    service, ``storage_failures`` injected storage-server failures
    (each targeting a holder of the latest wave, so the hit is never
    vacuous), then a compute-node failure."""
    rf = int(params["rf"])
    storage_failures = int(params["storage_failures"])
    repair = bool(params.get("repair", True))
    interval_ns = int(params.get("interval_ns", 25 * NS_PER_MS))

    cl = Cluster(
        n_nodes=2, n_spares=2, seed=seed,
        storage_servers=3, replication=rf, storage_repair=repair,
    )
    job = ParallelJob(cl, _writer, n_ranks=2, name=f"rf{rf}")
    mechs = {
        n.node_id: AutonomicCheckpointer(n.kernel, n.remote_storage)
        for n in cl.nodes
    }
    coord = CheckpointCoordinator(job, mechs, interval_ns)
    coord.start()
    store = cl.remote_storage

    def fail_holder():
        if not coord.waves:
            cl.engine.after(10 * NS_PER_MS, fail_holder)
            return
        key = next(iter(coord.waves[-1].values()))[0]
        holders = store.holders(key)
        if holders:
            cl.fail_storage_server(holders[0])

    if storage_failures >= 1:
        cl.engine.after(60 * NS_PER_MS, fail_holder)
    if storage_failures >= 2:
        cl.engine.after(140 * NS_PER_MS, fail_holder)
    cl.engine.after(220 * NS_PER_MS, lambda: cl.fail_node(0))
    done = job.run_to_completion(limit_ns=120 * NS_PER_S)
    label = params.get("label", f"rf={rf}, {storage_failures} failures")
    return {
        "completed": done,
        "waves": len(coord.waves),
        "recoveries": coord.recoveries,
        "unrecoverable": coord.unrecoverable,
        "fallbacks": coord.generation_fallbacks,
        "lost": len(store.lost_keys()),
        "write_retries": store.write_retries,
        "backoff_ns": store.backoff_ns_total,
        "quorum_write_failures": store.quorum_write_failures,
        "repairs": cl.storage_repairer.repairs_completed
        if cl.storage_repairer is not None else 0,
        "timeline": render_timeline(cl.engine),
        "replication_table": render_replication_table(
            store, cl.storage_repairer,
            title=f"Service state after the {label} run",
        ),
        "obs": export_obs(
            cl.engine.metrics, tracer=cl.engine.tracer,
            meta={"experiment": "e19", "rf": rf,
                  "storage_failures": storage_failures, "seed": seed},
            now_ns=cl.engine.now_ns,
        ),
    }


# ----------------------------------------------------------------------
# E23: multi-level stable storage with an erasure-coded backing tier
# ----------------------------------------------------------------------
def e23_hierarchy_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One E23 grid cell: a 2-rank coordinated job whose stable storage
    is a partner-replica level backed (write-through or write-back) by a
    Reed-Solomon ``k+m`` erasure group on its own failure domain.

    ``fail_erasure`` erasure-group servers and ``fail_partner`` partner
    servers die mid-run, then a compute node dies; the restart must be
    served by whatever levels survive -- including degraded ``k``-of-
    ``k+m`` reads when the partner tier is gone entirely.
    """
    k, m = (int(x) for x in params.get("erasure", (4, 2)))
    policy = str(params.get("policy", "back"))
    fail_erasure = int(params.get("fail_erasure", 0))
    fail_partner = int(params.get("fail_partner", 0))
    repair = bool(params.get("repair", True))
    erasure_servers = params.get("erasure_servers")
    interval_ns = int(params.get("interval_ns", 25 * NS_PER_MS))

    hier_spec = {
        "partner_rf": 2, "erasure": (k, m), "erasure_policy": policy,
    }
    if erasure_servers is not None:
        hier_spec["erasure_servers"] = int(erasure_servers)
    cl = Cluster(
        n_nodes=2, n_spares=2, seed=seed,
        storage_servers=3, storage_repair=repair,
        storage_hierarchy=hier_spec,
    )
    job = ParallelJob(cl, _writer, n_ranks=2, name=f"ec{k}+{m}")
    mechs = {
        n.node_id: AutonomicCheckpointer(n.kernel, n.remote_storage)
        for n in cl.nodes
    }
    coord = CheckpointCoordinator(job, mechs, interval_ns)
    coord.start()
    hier = cl.hierarchy_store
    ers = cl.erasure_store

    def fail_tiers():
        if not coord.waves:  # wait until a wave is actually protected
            cl.engine.after(10 * NS_PER_MS, fail_tiers)
            return
        for sid in range(fail_erasure):
            cl.fail_erasure_server(sid)
        for sid in range(fail_partner):
            cl.fail_storage_server(sid)

    if fail_erasure or fail_partner:
        cl.engine.after(140 * NS_PER_MS, fail_tiers)
    cl.engine.after(220 * NS_PER_MS, lambda: cl.fail_node(0))
    done = job.run_to_completion(limit_ns=120 * NS_PER_S)
    by_level = hier.level_physical_bytes()
    return {
        "completed": done,
        "waves": len(coord.waves),
        "recoveries": coord.recoveries,
        "unrecoverable": coord.unrecoverable,
        "fallbacks": coord.generation_fallbacks,
        "lost_erasure": len(ers.lost_keys()),
        "under_replicated": len(ers.under_replicated()),
        "degraded_reads": ers.degraded_reads,
        "ec_write_quorum_failures": ers.quorum_write_failures,
        "ec_read_quorum_failures": ers.quorum_read_failures,
        "shard_repairs": cl.erasure_repairer.repairs_completed
        if cl.erasure_repairer is not None else 0,
        "replica_repairs": cl.storage_repairer.repairs_completed
        if cl.storage_repairer is not None else 0,
        "promotions": hier.promotions,
        "reprotects": hier.reprotects,
        "bytes_by_level": dict(by_level),
        "timeline": render_timeline(cl.engine),
        "obs": export_obs(
            cl.engine.metrics, tracer=cl.engine.tracer,
            meta={"experiment": "e23", "k": k, "m": m, "policy": policy,
                  "fail_erasure": fail_erasure, "fail_partner": fail_partner,
                  "seed": seed},
            now_ns=cl.engine.now_ns,
        ),
    }
