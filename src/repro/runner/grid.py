"""Sharded grid execution over worker processes.

A grid is a list of :class:`Cell` specs.  Each cell names an
*importable top-level function* ``fn(params, seed) -> dict`` (workers
re-import it by module and name, so lambdas and closures are rejected
up front), a JSON-serializable params mapping and an integer seed.
Every cell builds its own engine(s) from its seed -- no process-global
state may leak between cells, which is what makes the merged output
independent of worker count (see ``benchmarks/perf/check_runner.py``).

Execution shards cache-missing cells across a ``ProcessPoolExecutor``
(fork where available; a sys.path re-export keeps spawn working) and
folds results into a deterministic merged document: cells sorted by
their canonical key, regardless of completion order, serialized with
the same canonical JSON as ``repro.obs`` exports.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from .cache import DiskCache
from .merge import merge_results

__all__ = ["Cell", "GridRunner", "cache_key"]


class RunnerError(SimulationError):
    """A grid cell was malformed or failed to execute."""


@dataclass(frozen=True)
class Cell:
    """One (experiment, params, seed) grid point."""

    experiment: str
    fn: Callable[[Mapping[str, Any], int], Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    @property
    def key(self) -> str:
        """Canonical sort/merge key (params serialized canonically)."""
        return json.dumps(
            {"experiment": self.experiment, "params": dict(self.params),
             "seed": self.seed},
            sort_keys=True, separators=(",", ":"),
        )

    def spec(self) -> Tuple[str, str, Dict[str, Any], int]:
        """Picklable execution spec (module, name, params, seed)."""
        return (self.fn.__module__, self.fn.__qualname__,
                dict(self.params), self.seed)


def _source_digest(fn: Callable) -> str:
    """sha256 of the defining module's source (cache invalidation)."""
    module = sys.modules.get(fn.__module__)
    try:
        src = inspect.getsource(module) if module else ""
    except (OSError, TypeError):
        src = ""
    return hashlib.sha256(src.encode()).hexdigest()


def cache_key(cell: Cell) -> str:
    """Disk-cache key: params + seed + experiment + source digest."""
    doc = {
        "experiment": cell.experiment,
        "fn": f"{cell.fn.__module__}.{cell.fn.__qualname__}",
        "params": dict(cell.params),
        "seed": cell.seed,
        "source": _source_digest(cell.fn),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
def _init_worker(paths: List[str]) -> None:
    """Reproduce the parent's sys.path (needed under spawn)."""
    for p in reversed(paths):
        if p not in sys.path:
            sys.path.insert(0, p)


def _exec_spec(spec: Tuple[str, str, Dict[str, Any], int]) -> Any:
    """Import and run one cell function in the worker process."""
    module, name, params, seed = spec
    fn = getattr(importlib.import_module(module), name)
    return fn(params, seed)


class GridRunner:
    """Shard grid cells over processes; merge deterministically.

    Parameters
    ----------
    workers:
        Worker processes.  1 runs cells inline (no subprocesses) --
        useful both for debugging and as the determinism reference the
        CI smoke compares multi-worker output against.
    cache_dir:
        Directory for the :class:`DiskCache`; None disables caching.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[Path | str] = None) -> None:
        if workers < 1:
            raise RunnerError("need at least one worker")
        self.workers = workers
        self.cache: Optional[DiskCache] = (
            DiskCache(cache_dir) if cache_dir is not None else None
        )
        #: Cells recomputed (vs served from cache) on the last run.
        self.computed = 0

    # ------------------------------------------------------------------
    def _validate(self, cells: List[Cell]) -> None:
        seen = set()
        for cell in cells:
            if "<" in cell.fn.__qualname__ or "." in cell.fn.__qualname__:
                raise RunnerError(
                    f"cell fn {cell.fn.__qualname__!r} must be an importable "
                    "top-level function (workers re-import it by name)"
                )
            if cell.key in seen:
                raise RunnerError(f"duplicate cell: {cell.key}")
            seen.add(cell.key)

    def run(self, cells: List[Cell]) -> Dict[str, Any]:
        """Execute the grid and return the merged document."""
        cells = list(cells)
        self._validate(cells)
        results: Dict[str, Any] = {}
        pending: List[Cell] = []
        keys = {cell.key: cache_key(cell) for cell in cells}
        if self.cache is not None:
            for cell in cells:
                hit = self.cache.get(keys[cell.key])
                if hit is not None:
                    results[cell.key] = hit
                else:
                    pending.append(cell)
        else:
            pending = cells
        self.computed = len(pending)

        if pending:
            if self.workers == 1:
                for cell in pending:
                    results[cell.key] = _exec_spec(cell.spec())
                    if self.cache is not None:
                        self.cache.put(keys[cell.key], results[cell.key])
            else:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(list(sys.path),),
                ) as pool:
                    futures = {
                        pool.submit(_exec_spec, cell.spec()): cell
                        for cell in pending
                    }
                    for fut in as_completed(futures):
                        cell = futures[fut]
                        results[cell.key] = fut.result()
                        if self.cache is not None:
                            self.cache.put(keys[cell.key], results[cell.key])

        return merge_results([(cell, results[cell.key]) for cell in cells])
