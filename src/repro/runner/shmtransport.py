"""Zero-copy shared-memory transport for the parallel process backend.

The pipe protocol of :mod:`repro.runner.parallel` spends its wall-clock
pickling: every barrier, each worker pickles its ``WindowReply`` --
envelope objects with dict payloads, one by one -- and at the end of a
run each worker pickles every shard's full ``repro.obs`` document.  At
fleet scale that serialization layer, not the simulation, is the
bottleneck (the same observation the petascale C/R systems in PAPERS.md
make about their transport layers).

This module replaces the data path with shared memory while keeping the
pipes for **control only**:

* each worker gets two :class:`ShmRing` frame rings (driver->worker and
  worker->driver) backed by ``multiprocessing.shared_memory``;
* bulk data -- a window's batched envelope frame
  (:class:`~repro.simkernel.parallel.EnvelopeBatch` columns + payload
  arena) or the worker's folded obs export -- is written once into the
  ring and never serialized;
* the pipe carries a **doorbell**: a tiny ``(seq, offset, nbytes)``
  tuple naming the frame.  Pipe sends/receives are syscalls, so they
  order memory on both sides; the ring's seqlock (sequence word bumped
  odd before the copy, even after) is a belt-and-braces check that the
  named frame is stable when read.

Fallback-to-pipe conditions (all counted by the group, none fatal):

* a frame larger than the ring capacity ships as plain bytes over the
  pipe (``*_bytes`` doorbell) -- still struct-framed, still unpickled;
* a multiprocessing start method other than ``fork`` (the worker could
  not inherit the segment mapping without re-attaching by name, which
  double-registers with the resource tracker on this Python) selects
  the pipe transport wholesale, as does an unavailable
  ``multiprocessing.shared_memory``.

The transport moves *representation*, never *content*: the receiving
shard still sorts its batch by the canonical envelope key, so the CI
byte-identity gates (1-vs-N shards, local-vs-process, pipe-vs-shm)
hold unchanged.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Tuple

from ..simkernel.parallel import ParallelError

__all__ = ["ShmRing", "shm_available"]

try:  # pragma: no cover - import guard exercised implicitly
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - non-CPython / stripped stdlib
    _shared_memory = None


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can back a ring."""
    return _shared_memory is not None


class ShmRing:
    """Single-producer frame ring in one shared-memory segment.

    Layout: an 8-byte little-endian sequence word, then ``capacity``
    bytes of frame space managed as a bump allocator that wraps to 0
    when a frame would overflow.  The lockstep verb protocol guarantees
    at most one frame is in flight per direction, so wrapping can never
    overwrite a frame the consumer still needs; the seqlock exists to
    turn a protocol violation into a loud :class:`ParallelError`
    instead of silently torn columns.

    The driver creates rings (``create=True``) before forking workers;
    under the fork start method the worker inherits the mapping -- no
    re-attach by name, no duplicate resource-tracker registration, and
    exactly one owner to ``unlink`` the segment.
    """

    _SEQ = struct.Struct("<Q")
    HEADER_BYTES = _SEQ.size

    def __init__(self, capacity: int, name: str = "") -> None:
        if not shm_available():  # pragma: no cover - guarded by callers
            raise ParallelError("multiprocessing.shared_memory unavailable")
        if capacity <= 0:
            raise ParallelError("ring capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self._shm = _shared_memory.SharedMemory(
            create=True, size=self.HEADER_BYTES + self.capacity
        )
        self._SEQ.pack_into(self._shm.buf, 0, 0)
        self._seq = 0
        self._cursor = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def write_frame(
        self, nbytes: int, fill: Callable[[memoryview], int]
    ) -> Optional[Tuple[int, int]]:
        """Reserve ``nbytes``, let ``fill`` write them, publish.

        Returns the ``(seq, offset)`` doorbell to send over the pipe,
        or ``None`` when the frame cannot fit -- the caller then falls
        back to shipping the same bytes through the pipe.
        """
        nbytes = int(nbytes)
        if nbytes > self.capacity:
            return None
        if self._cursor + nbytes > self.capacity:
            self._cursor = 0
        off = self._cursor
        buf = self._shm.buf
        self._SEQ.pack_into(buf, 0, self._seq + 1)  # odd: write in progress
        start = self.HEADER_BYTES + off
        fill(memoryview(buf)[start:start + nbytes])
        self._seq += 2
        self._SEQ.pack_into(buf, 0, self._seq)  # even: stable
        self._cursor = off + nbytes
        return self._seq, off

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def read_frame(self, seq: int, offset: int, nbytes: int) -> bytes:
        """Snapshot the frame a doorbell named.

        The copy (one ``memcpy`` of the packed frame) is deliberate:
        the slot is reused next window, so views must not outlive the
        call.  The seqlock is checked *after* the copy -- a mismatch
        means the producer wrote concurrently and the snapshot may be
        torn, which is a protocol violation worth dying loudly over.
        """
        start = self.HEADER_BYTES + int(offset)
        if offset < 0 or start + nbytes > self.HEADER_BYTES + self.capacity:
            raise ParallelError(
                f"frame [{offset}, {offset + nbytes}) outside ring "
                f"capacity {self.capacity}"
            )
        data = bytes(self._shm.buf[start:start + nbytes])
        (current,) = self._SEQ.unpack_from(self._shm.buf, 0)
        if current != seq:
            raise ParallelError(
                f"torn shared-memory frame: doorbell seq {seq}, ring seq "
                f"{current} (producer wrote during the read)"
            )
        return data

    # ------------------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Drop this process's mapping; ``unlink`` destroys the segment
        (creator only).  Safe to call twice."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view still alive
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShmRing {self.name or self._shm.name} "
                f"cap={self.capacity} seq={self._seq}>")
