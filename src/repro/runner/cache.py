"""Disk cache for grid-cell results.

One JSON file per cell, named by the cell's cache key (a sha256 over
the experiment name, canonical params, seed and the *source digest* of
the module defining the cell function -- edit the experiment code and
every affected cell recomputes, touch nothing and a re-run is pure
cache hits).  Writes are atomic (tempfile + rename) so concurrent
workers and concurrent sweeps can share one cache directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["DiskCache"]


class DiskCache:
    """Content-keyed JSON result cache under one directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """Cached result for ``key``, or None (corrupt entries miss)."""
        path = self._path(key)
        try:
            with open(path, "r") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` (must be JSON-serializable) atomically."""
        payload = json.dumps(result, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                # Durable before visible: without the fsync a crash right
                # after the rename can leave an empty (but named) entry.
                os.fsync(fh.fileno())
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Drop every cached entry, including ``*.tmp`` files orphaned
        by writers killed mid-``put``; returns how many were removed."""
        n = 0
        for pattern in ("*.json", "*.tmp"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
                n += 1
        return n
