"""Deterministic merge of grid-cell results.

The merged document (``repro.grid/v1``) lists cells sorted by their
canonical key, so the bytes are a function of the grid's *contents*
only -- never of completion order, worker count or cache state.  Any
embedded ``repro.obs`` export is schema-validated on the way through.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..obs import to_json, validate_export

__all__ = ["GRID_SCHEMA", "merge_results", "grid_to_json"]

GRID_SCHEMA = "repro.grid/v1"


def merge_results(entries: List[Tuple[Any, Any]]) -> Dict[str, Any]:
    """Fold ``(cell, result)`` pairs into the merged grid document."""
    cells = []
    for cell, result in sorted(entries, key=lambda e: e[0].key):
        if isinstance(result, dict) and isinstance(result.get("obs"), dict):
            validate_export(result["obs"])
        cells.append({
            "experiment": cell.experiment,
            "params": dict(cell.params),
            "seed": cell.seed,
            "key": cell.key,
            "result": result,
        })
    return {"schema": GRID_SCHEMA, "cells": cells}


def grid_to_json(doc: Dict[str, Any]) -> str:
    """Canonical serialization (same convention as ``repro.obs``)."""
    return to_json(doc)
