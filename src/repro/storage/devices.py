"""I/O device models: disk, network interface, memory.

The paper's companion feasibility study [31] identifies "the current
bottlenecks, namely I/O bus, disk, and interconnection network" as the
hardware that determines whether checkpointing is affordable.  Devices
here are simple queued-bandwidth models: a transfer pays a fixed access
latency plus size/bandwidth, serialized FIFO per device (concurrent
writers queue), with defaults calibrated to 2004-era parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError
from ..simkernel.costs import NS_PER_MS, NS_PER_US

__all__ = ["Device", "disk_device", "network_device", "memory_device"]


@dataclass
class Device:
    """A queued, bandwidth-limited transfer engine.

    Parameters
    ----------
    name:
        Diagnostic label.
    latency_ns:
        Per-operation access latency (seek/interrupt/packet setup).
    bytes_per_ns:
        Sustained bandwidth.
    """

    name: str
    latency_ns: int
    bytes_per_ns: float
    #: Virtual time at which the device becomes free (FIFO queueing).
    busy_until_ns: int = 0
    #: Lifetime statistics.
    total_bytes: int = 0
    total_ops: int = 0

    def transfer_time_ns(self, nbytes: int) -> int:
        """Unqueued service time for ``nbytes``."""
        if nbytes < 0:
            raise StorageError(f"negative transfer size {nbytes}")
        return self.latency_ns + int(nbytes / self.bytes_per_ns)

    def submit(self, now_ns: int, nbytes: int) -> int:
        """Enqueue a transfer at ``now_ns``; returns completion delay.

        The caller charges the returned delay to whoever performs the I/O
        (synchronous write-through, as all the surveyed packages do).
        """
        start = max(now_ns, self.busy_until_ns)
        finish = start + self.transfer_time_ns(nbytes)
        self.busy_until_ns = finish
        self.total_bytes += nbytes
        self.total_ops += 1
        return finish - now_ns

    def estimate(self, now_ns: int, nbytes: int) -> int:
        """Completion delay :meth:`submit` would return, without enqueuing.

        Fan-out readers use this to pick the fastest replicas *before*
        committing traffic to their devices, so losing candidates are
        never charged for transfers whose responses would be discarded.
        """
        start = max(now_ns, self.busy_until_ns)
        return start + self.transfer_time_ns(nbytes) - now_ns

    def utilization_reset(self) -> None:
        """Zero the statistics counters."""
        self.total_bytes = 0
        self.total_ops = 0


def disk_device(name: str = "disk") -> Device:
    """A 2004-class local disk: ~8 ms access, ~50 MB/s sustained."""
    return Device(name=name, latency_ns=8 * NS_PER_MS, bytes_per_ns=0.05)


def network_device(name: str = "nic") -> Device:
    """A GigE-class interconnect path to a remote file server:
    ~60 us round-trip setup, ~100 MB/s sustained."""
    return Device(name=name, latency_ns=60 * NS_PER_US, bytes_per_ns=0.1)


def memory_device(name: str = "ram") -> Device:
    """Memory-to-memory staging (Software Suspend's standby mode)."""
    return Device(name=name, latency_ns=2 * NS_PER_US, bytes_per_ns=1.5)
