"""Stable-storage backends and device models for checkpoint data."""

from .backends import (
    LocalDiskStorage,
    MemoryStorage,
    NullStorage,
    RemoteStorage,
    StorageBackend,
    StorageKind,
)
from .devices import Device, disk_device, memory_device, network_device

__all__ = [
    "StorageBackend",
    "StorageKind",
    "LocalDiskStorage",
    "RemoteStorage",
    "MemoryStorage",
    "NullStorage",
    "Device",
    "disk_device",
    "memory_device",
    "network_device",
]
