"""Stable-storage backends: the Table 1 "stable storage" axis.

The paper's fault-tolerance critique (Section 4.1): "Most store the
checkpoint locally instead of remotely, thus checkpoint data cannot be
retrieved in case of a failure of the machine.  Fault tolerance is
limited to the case of restarts in the event of power outages or
reboots."  The backends encode exactly those semantics:

* :class:`LocalDiskStorage` -- survives a *reboot* of its node but is
  unreachable while the node is failed (experiment E13).
* :class:`RemoteStorage` -- survives the death of any compute node; costs
  network bandwidth.
* :class:`MemoryStorage` -- Software Suspend's standby mode: an image in
  RAM; lost on power loss.
* :class:`NullStorage` -- "none" in Table 1 (BPROC, ZAP): state is
  streamed to a peer for migration, never persisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import StorageError, StorageLostError
from .devices import Device, disk_device, memory_device, network_device

__all__ = [
    "StorageKind",
    "StorageBackend",
    "WriteStream",
    "LocalDiskStorage",
    "RemoteStorage",
    "MemoryStorage",
    "NullStorage",
]


class StorageKind(str, Enum):
    """Where checkpoint data lands (Table 1 vocabulary)."""

    LOCAL = "local"
    REMOTE = "remote"
    MEMORY = "memory"
    NONE = "none"


class StorageBackend:
    """Abstract key -> blob store with virtual-time accounting.

    ``store``/``load`` return the I/O delay the caller must charge (by
    yielding a ``Compute`` op of that duration, since all surveyed
    packages write synchronously).
    """

    kind: StorageKind = StorageKind.NONE
    #: Whether data outlives a fail-stop of the node that wrote it.
    survives_node_failure: bool = False

    def __init__(self, device: Device) -> None:
        self.device = device
        self._blobs: Dict[str, Tuple[Any, int]] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Persist ``obj`` (accounted as ``nbytes``); returns delay_ns."""
        self._check_available()
        delay = self.device.submit(now_ns, nbytes)
        self._blobs[key] = (obj, nbytes)
        self.bytes_written += nbytes
        return delay

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Fetch ``obj``; returns (obj, delay_ns)."""
        self._check_available()
        try:
            obj, nbytes = self._blobs[key]
        except KeyError:
            raise StorageError(f"no blob stored under {key!r}") from None
        delay = self.device.submit(now_ns, nbytes)
        self.bytes_read += nbytes
        return obj, delay

    def exists(self, key: str) -> bool:
        """Whether ``key`` is retrievable right now."""
        try:
            self._check_available()
        except StorageLostError:
            return False
        return key in self._blobs

    def peek(self, key: str) -> Any:
        """Inspect a stored blob without charging I/O.

        A simulation-level helper (availability pre-checks, garbage
        collection walking delta chains); real I/O goes through
        :meth:`load`.
        """
        self._check_available()
        try:
            return self._blobs[key][0]
        except KeyError:
            raise StorageError(f"no blob stored under {key!r}") from None

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        entry = self._blobs.get(key)
        return entry[1] if entry else 0

    def delete(self, key: str) -> None:
        """Drop a blob (old checkpoint garbage collection)."""
        self._blobs.pop(key, None)

    def keys(self) -> Iterator[str]:
        """Iterate stored keys."""
        return iter(sorted(self._blobs))

    def stored_bytes(self) -> int:
        """Total bytes currently held."""
        return sum(n for _, n in self._blobs.values())

    def _check_available(self) -> None:
        """Subclasses raise :class:`StorageLostError` when unreachable."""

    # ------------------------------------------------------------------
    # Asynchronous / pipelined access
    # ------------------------------------------------------------------
    def load_parallel(
        self, keys: "Sequence[str]", now_ns: int
    ) -> Tuple[Dict[str, Any], int]:
        """Fetch several blobs issued at the same virtual instant.

        This is the restore-prefetch fan-out: every read is submitted at
        ``now_ns`` so the device model overlaps what real hardware
        overlaps (independent disks seek concurrently; a shared link
        serializes only its wire time).  Returns ``({key: obj},
        delay_ns)`` where the delay is the *slowest* fetch -- versus the
        serial chain walk, which pays the *sum*.
        """
        objs: Dict[str, Any] = {}
        worst = 0
        for key in keys:
            obj, delay = self.load(key, now_ns)
            objs[key] = obj
            if delay > worst:
                worst = delay
        return objs, worst

    def open_stream(self, key: str, now_ns: int) -> "WriteStream":
        """Open a pipelined, multi-extent write of one blob.

        Capture code sends extents as they are copied (each slice queues
        on the backend's device immediately) and commits the finished
        object once, charging only the metadata remainder -- total
        device traffic is identical to a monolithic :meth:`store`, but
        the slices overlap with whatever the caller does between sends.
        Replicated backends override this with a quorum-aware stream.
        """
        return WriteStream(self, key, now_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.kind.value} blobs={len(self._blobs)}>"


class WriteStream:
    """An open multi-extent write of one blob to a single-device backend.

    The stream is the synchronous half of the asynchronous writeback
    pipeline: :meth:`send` reserves device time for one extent *now* and
    returns the deterministic completion delay (the caller schedules the
    acknowledgement as an engine event); :meth:`commit` installs the
    finished object, charging only the bytes not already streamed.
    """

    def __init__(self, backend: StorageBackend, key: str, now_ns: int) -> None:
        backend._check_available()
        self.backend = backend
        self.key = key
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.committed = False

    def send(self, nbytes: int, now_ns: int) -> int:
        """Queue one extent on the device; returns its completion delay."""
        self.backend._check_available()
        delay = self.backend.device.submit(now_ns, nbytes)
        self.sent_bytes += nbytes
        return delay

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Queue one captured chunk (dedup-aware backends override)."""
        return self.send(int(chunk.nbytes), now_ns)

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Install ``obj`` under the stream's key; returns the delay of
        the final metadata slice (payload bytes were already sent)."""
        self.backend._check_available()
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        self.committed = True
        remainder = max(0, int(nbytes) - self.sent_bytes)
        delay = self.backend.device.submit(now_ns, remainder)
        self.backend._blobs[self.key] = (obj, nbytes)
        self.backend.bytes_written += nbytes
        return delay


class LocalDiskStorage(StorageBackend):
    """Node-local disk: fast-ish, but dies (temporarily) with the node."""

    kind = StorageKind.LOCAL
    survives_node_failure = False

    def __init__(self, node_id: int = 0, device: Optional[Device] = None) -> None:
        super().__init__(device or disk_device(f"disk[node{node_id}]"))
        self.node_id = node_id
        self._node_failed = False

    def mark_node_failed(self) -> None:
        """Fail-stop of the owning node: blobs become unreachable."""
        self._node_failed = True

    def mark_node_recovered(self, data_survived: bool = True) -> None:
        """Reboot/repair: data survives a power-cycle, not a disk loss."""
        self._node_failed = False
        if not data_survived:
            self._blobs.clear()

    def _check_available(self) -> None:
        if self._node_failed:
            raise StorageLostError(
                f"local disk of failed node {self.node_id} is unreachable"
            )


class RemoteStorage(StorageBackend):
    """Network-attached stable storage (the paper's recommended target)."""

    kind = StorageKind.REMOTE
    survives_node_failure = True

    def __init__(self, device: Optional[Device] = None) -> None:
        super().__init__(device or network_device("nic[remote-store]"))


class MemoryStorage(StorageBackend):
    """RAM staging (Software Suspend standby): gone on power loss."""

    kind = StorageKind.MEMORY
    survives_node_failure = False

    def __init__(self, device: Optional[Device] = None) -> None:
        super().__init__(device or memory_device())
        self._powered = True

    def power_loss(self) -> None:
        """Drop everything (standby images do not survive power-down)."""
        self._blobs.clear()
        self._powered = True  # RAM itself is fine afterwards


class NullStorage(StorageBackend):
    """Table 1 "none": nothing is persisted (pure migration pipes)."""

    kind = StorageKind.NONE
    survives_node_failure = False

    def __init__(self, device: Optional[Device] = None) -> None:
        super().__init__(device or network_device("nic[migrate]"))

    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        # Charges transfer time (the state is streamed to the peer) but
        # retains only the most recent image transiently, mirroring a
        # migration pipe: once consumed, it is gone.
        self._blobs.clear()
        return super().store(key, obj, nbytes, now_ns)

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        obj, delay = super().load(key, now_ns)
        self._blobs.pop(key, None)  # consumed by the peer
        return obj, delay
