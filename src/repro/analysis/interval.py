"""Optimal checkpoint interval mathematics (Young / Daly).

The autonomic policies the paper calls for ("adjustment of the
checkpoint interval to the failure rate of the system") need a model of
how interval choice trades checkpoint overhead against expected rework.
Young's first-order optimum and Daly's higher-order refinement are the
standard results; :func:`expected_completion_time_s` gives the full
expected-makespan model used to score policies in E15/E18.

All arguments in seconds.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import ReproError

__all__ = [
    "young_interval_s",
    "daly_interval_s",
    "expected_completion_time_s",
    "effective_utilization",
    "optimal_interval_search_s",
]


def _check(checkpoint_cost_s: float, mtbf_s: float) -> None:
    if checkpoint_cost_s <= 0:
        raise ReproError("checkpoint cost must be positive")
    if mtbf_s <= 0:
        raise ReproError("MTBF must be positive")


def young_interval_s(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * C * M)``."""
    _check(checkpoint_cost_s, mtbf_s)
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval_s(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's higher-order optimum.

    ``sqrt(2CM) * [1 + (1/3)sqrt(C/2M) + (1/9)(C/2M)] - C`` for C < 2M,
    else ``M`` (checkpointing more often than you fail is hopeless).
    """
    _check(checkpoint_cost_s, mtbf_s)
    c, m = checkpoint_cost_s, mtbf_s
    if c >= 2.0 * m:
        return m
    ratio = c / (2.0 * m)
    return math.sqrt(2.0 * c * m) * (
        1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    ) - c


def expected_completion_time_s(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
) -> float:
    """Expected makespan of ``work_s`` of computation under failures.

    Daly's model: the job advances in segments of ``interval_s`` useful
    work, each followed by a checkpoint of ``checkpoint_cost_s``; a
    failure (exponential, rate ``1/mtbf_s``) costs the partial segment
    plus ``restart_cost_s``.  The expected wall time for one segment is

        E = (M + R) * (exp((tau + C)/M) - 1) / (exp-adjusted rate)

    using the standard renewal argument; summed over ``work/tau``
    segments.
    """
    _check(checkpoint_cost_s, mtbf_s)
    if interval_s <= 0:
        raise ReproError("interval must be positive")
    if work_s <= 0:
        return 0.0
    m = mtbf_s
    seg = interval_s + checkpoint_cost_s
    n_segments = work_s / interval_s
    # Expected time to get through one segment of length `seg` with
    # exponential failures and restart penalty R (classic result):
    # E = (M + R) * (e^{seg/M} - 1)
    e_segment = (m + restart_cost_s) * (math.exp(seg / m) - 1.0)
    return n_segments * e_segment


def effective_utilization(
    work_s: float,
    interval_s: float,
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
) -> float:
    """Useful-work fraction: work / expected completion time."""
    total = expected_completion_time_s(
        work_s, interval_s, checkpoint_cost_s, restart_cost_s, mtbf_s
    )
    return work_s / total if total > 0 else 1.0


def optimal_interval_search_s(
    checkpoint_cost_s: float,
    restart_cost_s: float,
    mtbf_s: float,
    lo_s: Optional[float] = None,
    hi_s: Optional[float] = None,
) -> float:
    """Numeric optimum of :func:`expected_completion_time_s` (golden
    section), used to validate the closed forms and to drive the
    autonomic controller when costs are measured rather than assumed."""
    _check(checkpoint_cost_s, mtbf_s)
    lo = lo_s if lo_s is not None else checkpoint_cost_s / 10.0
    hi = hi_s if hi_s is not None else 10.0 * mtbf_s
    phi = (math.sqrt(5.0) - 1.0) / 2.0

    def f(tau: float) -> float:
        return expected_completion_time_s(
            3600.0, tau, checkpoint_cost_s, restart_cost_s, mtbf_s
        )

    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(200):
        if f(c) < f(d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        if abs(b - a) < 1e-6 * (1.0 + abs(b)):
            break
    return (a + b) / 2.0
