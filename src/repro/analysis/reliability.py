"""Reliability arithmetic for large machines (E12).

Quantifies the paper's Section-1 motivation: MTBF shrinking with
component count until it falls "orders of magnitude" below application
runtimes, and what that does to the expected number of from-scratch
attempts without checkpointing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..cluster.failures import p_survive, system_mtbf_s
from ..errors import ReproError

__all__ = [
    "expected_attempts_without_ckpt",
    "expected_time_without_ckpt_s",
    "mtbf_table",
    "MTBFRow",
]


def expected_attempts_without_ckpt(
    runtime_s: float, node_mtbf_s: float, n_nodes: int
) -> float:
    """Expected number of from-scratch runs until one completes.

    Completion probability per attempt is ``p = exp(-runtime/M_sys)``;
    attempts are geometric with mean ``1/p`` -- the paper's "run an
    application ... many times to achieve one successful completion".
    """
    p = p_survive(runtime_s, node_mtbf_s, n_nodes)
    if p <= 0.0:
        return math.inf
    return 1.0 / p


def expected_time_without_ckpt_s(
    runtime_s: float, node_mtbf_s: float, n_nodes: int
) -> float:
    """Expected wall time to one successful scratch run.

    With exponential failures, E[T] = M_sys * (e^{runtime/M_sys} - 1):
    failed attempts cost their partial progress.
    """
    m_sys = system_mtbf_s(node_mtbf_s, n_nodes)
    return m_sys * (math.exp(runtime_s / m_sys) - 1.0)


@dataclass(frozen=True)
class MTBFRow:
    """One row of the machine-scaling table."""

    n_nodes: int
    system_mtbf_h: float
    p_complete_1d: float
    expected_attempts_1d: float


def mtbf_table(node_mtbf_h: float, node_counts: List[int]) -> List[MTBFRow]:
    """System MTBF and 1-day-job completion odds vs machine size."""
    if node_mtbf_h <= 0:
        raise ReproError("node MTBF must be positive")
    day_s = 86_400.0
    rows = []
    for n in node_counts:
        m_sys_s = system_mtbf_s(node_mtbf_h * 3600.0, n)
        p = p_survive(day_s, node_mtbf_h * 3600.0, n)
        rows.append(
            MTBFRow(
                n_nodes=n,
                system_mtbf_h=m_sys_s / 3600.0,
                p_complete_1d=p,
                expected_attempts_1d=(math.inf if p == 0 else 1.0 / p),
            )
        )
    return rows
