"""Checkpoint-interval and reliability mathematics."""

from .interval import (
    daly_interval_s,
    effective_utilization,
    expected_completion_time_s,
    optimal_interval_search_s,
    young_interval_s,
)
from .reliability import (
    MTBFRow,
    expected_attempts_without_ckpt,
    expected_time_without_ckpt_s,
    mtbf_table,
)

__all__ = [
    "young_interval_s",
    "daly_interval_s",
    "expected_completion_time_s",
    "effective_utilization",
    "optimal_interval_search_s",
    "MTBFRow",
    "mtbf_table",
    "expected_attempts_without_ckpt",
    "expected_time_without_ckpt_s",
]
