"""The simulated operating-system kernel.

:class:`Kernel` ties the engine, scheduler, memory system, VFS, signals
and syscall table into a runnable machine.  Programs (generators of
:mod:`~repro.simkernel.ops` operations) execute under a multiprocessor
scheduler with privilege-boundary, fault, signal, TLB, and interrupt
costs charged per the :class:`~repro.simkernel.costs.CostModel`.

The checkpoint mechanisms in :mod:`repro.mechanisms` are built *on* this
kernel, through the same interfaces their real counterparts use: new
system calls, new signals with kernel-mode default actions, kernel
threads reached via ``/dev`` ioctls or ``/proc`` writes, and user-level
signal handlers plus syscall interposition.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import (
    MemoryError_,
    SchedulerError,
    SignalError,
    SimulationError,
    SyscallError,
)
from .costs import CostModel, DEFAULT_COSTS
from .engine import Engine
from .memory import AddressSpace, PageFlag, Prot, VMA, VMAKind
from .ops import Compute, Exit, MemRead, MemWrite, Op, Sleep, Syscall, Yield
from .process import (
    FileDescriptor,
    Mode,
    ProgramFactory,
    SchedPolicy,
    Task,
    TaskState,
)
from .scheduler import CPU, Scheduler
from .signals import HandlerKind, Sig, SignalHandler, default_action
from .syscalls import SyscallResult, SyscallTable
from .vfs import DeviceNode, File, ProcEntry, RegularFile, SocketFile, VFS

__all__ = ["Kernel"]

#: Default VMA layout for a freshly spawned process, modelling the paper's
#: enumeration "code, shared libraries, data, heap, stack".
_DEFAULT_LAYOUT: Tuple[Tuple[str, int, int, VMAKind], ...] = (
    ("code", 256 * 1024, Prot.RX, VMAKind.CODE),
    ("libc.so", 512 * 1024, Prot.RX, VMAKind.SHLIB),
    ("data", 128 * 1024, Prot.RW, VMAKind.DATA),
    ("heap", 1024 * 1024, Prot.RW, VMAKind.HEAP),
    ("stack", 128 * 1024, Prot.RW, VMAKind.STACK),
)


class Kernel:
    """A single simulated node's operating system.

    Parameters
    ----------
    ncpus:
        Number of processors (the kernel-thread concurrency arguments of
        Section 4.1 need at least 2 to show).
    costs:
        Cost model; defaults to :data:`~repro.simkernel.costs.DEFAULT_COSTS`.
    engine:
        Optionally share an engine (the cluster layer runs many kernels on
        one virtual clock).
    node_id:
        Identity within a cluster; stamped on tasks for migration checks.
    """

    def __init__(
        self,
        ncpus: int = 1,
        costs: CostModel = DEFAULT_COSTS,
        engine: Optional[Engine] = None,
        seed: int = 0,
        node_id: int = 0,
        trace: bool = False,
    ) -> None:
        self.costs = costs
        self.engine = engine if engine is not None else Engine(seed=seed, trace=trace)
        self.node_id = node_id
        self.vfs = VFS()
        self.scheduler = Scheduler(costs, ncpus=ncpus)
        self.syscalls = SyscallTable()
        self.tasks: Dict[int, Task] = {}
        self._next_pid = 100
        self._tick_started = False
        self._halted = False
        #: Loaded kernel modules by name (see :mod:`repro.simkernel.modules`).
        self.modules: Dict[str, Any] = {}
        #: Extensions compiled into the static kernel (VMADump, EPCKPT ...).
        self.builtin_extensions: List[str] = []
        #: SysV shared-memory segments: key -> dict(size, id, attached_pids).
        self.shm_segments: Dict[int, Dict[str, Any]] = {}
        #: TCP ports in use on this node (restore-conflict modelling).
        self.ports_in_use: set = set()
        #: Hardware write tracker hook (Revive/SafetyNet models):
        #: ``fn(task, vma, page_index, offset, length)``.
        self.hw_tracker: Optional[Callable[[Task, VMA, int, int, int], None]] = None
        #: Per-task itimers: pid -> (interval_ns, sig, event).
        self._itimers: Dict[int, Dict[str, Any]] = {}
        #: Callbacks fired when a task exits: pid -> [fn(task)].
        self._exit_watchers: Dict[int, List[Callable[[Task], None]]] = {}
        self._register_default_syscalls()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def alloc_pid(self) -> int:
        """Allocate the next process id."""
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def make_address_space(
        self,
        layout: Optional[Iterable[Tuple[str, int, int, VMAKind]]] = None,
        heap_bytes: Optional[int] = None,
    ) -> AddressSpace:
        """Build an address space with the standard (or given) layout."""
        mm = AddressSpace(self.costs)
        rows = list(layout) if layout is not None else list(_DEFAULT_LAYOUT)
        if heap_bytes is not None:
            rows = [
                (n, heap_bytes if n == "heap" else b, p, k) for (n, b, p, k) in rows
            ]
        for name, nbytes, prot, kind in rows:
            mm.map(name, nbytes, prot=prot, kind=kind)
        return mm

    def spawn_process(
        self,
        name: str,
        program_factory: Optional[ProgramFactory] = None,
        mm: Optional[AddressSpace] = None,
        heap_bytes: Optional[int] = None,
        policy: SchedPolicy = SchedPolicy.OTHER,
        static_prio: int = 120,
        rt_prio: int = 0,
        start: bool = True,
        start_step: int = 0,
        pid: Optional[int] = None,
    ) -> Task:
        """Create a user process and (by default) enqueue it.

        ``start_step`` resumes the program at a recorded restart cursor;
        ``pid`` forces a specific process id (UCLiK-style PID restore) --
        it must be free.
        """
        if mm is None:
            mm = self.make_address_space(heap_bytes=heap_bytes)
        if pid is not None:
            if pid in self.tasks:
                raise SimulationError(f"pid {pid} already in use")
            self._next_pid = max(self._next_pid, pid + 1)
        task = Task(
            pid=pid if pid is not None else self.alloc_pid(),
            name=name,
            mm=mm,
            program_factory=program_factory,
            policy=policy,
            static_prio=static_prio,
            rt_prio=rt_prio,
            start_step=start_step,
        )
        task.node_id = self.node_id
        self.tasks[task.pid] = task
        self._install_kernel_signals(task)
        if start and program_factory is not None:
            self.scheduler.enqueue(task)
            self._kick()
        elif not start:
            task.state = TaskState.STOPPED
        return task

    def spawn_kthread(
        self,
        name: str,
        program_factory: ProgramFactory,
        policy: SchedPolicy = SchedPolicy.FIFO,
        rt_prio: int = 50,
        start: bool = True,
    ) -> Task:
        """Create a kernel thread (no own address space, kernel mode)."""
        task = Task(
            pid=self.alloc_pid(),
            name=name,
            mm=None,
            program_factory=program_factory,
            is_kthread=True,
            policy=policy,
            rt_prio=rt_prio,
        )
        task.node_id = self.node_id
        self.tasks[task.pid] = task
        if start:
            self.scheduler.enqueue(task)
            self._kick()
        else:
            task.state = TaskState.STOPPED
        return task

    def task_by_pid(self, pid: int) -> Task:
        """Look up a live task."""
        try:
            return self.tasks[pid]
        except KeyError:
            raise SimulationError(f"no task with pid {pid}") from None

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scheduler ticks and dispatch idle CPUs."""
        if not self._tick_started:
            self._tick_started = True
            self.engine.after_anon(self.costs.tick_ns, self._tick)
        self._kick()

    def run_for(self, duration_ns: int) -> None:
        """Advance virtual time by ``duration_ns``."""
        self.start()
        self.engine.run(until_ns=self.engine.now_ns + int(duration_ns))

    def run_until(self, time_ns: int) -> None:
        """Advance virtual time to absolute ``time_ns``."""
        self.start()
        self.engine.run(until_ns=int(time_ns))

    def run_until_exit(self, task: Task, limit_ns: int = 10**15) -> None:
        """Run until ``task`` exits (or the safety limit trips)."""
        self.start()
        self.engine.run(
            until_ns=self.engine.now_ns + int(limit_ns),
            until=lambda: not task.alive(),
        )
        if task.alive():
            raise SimulationError(f"task {task.name!r} did not exit within limit")

    def _tick(self) -> None:
        """Scheduler tick: an interrupt on every CPU."""
        if self._halted:
            return
        for cpu in self.scheduler.cpus:
            if cpu.irq_disabled:
                cpu.deferred_irqs += 1
                continue
            if cpu.current is not None:
                cpu.irq_backlog_ns += self.costs.interrupt_overhead_ns
                cpu.current.acct.interrupts_absorbed += 1
        self.scheduler.on_tick()
        self._fire_itimers()
        self._kick()
        self.engine.after_anon(self.costs.tick_ns, self._tick)

    def halt(self) -> None:
        """Stop issuing ticks (node failure / power-down)."""
        self._halted = True

    def _fire_itimers(self) -> None:
        now = self.engine.now_ns
        for pid, it in list(self._itimers.items()):
            if it["next_ns"] <= now:
                task = self.tasks.get(pid)
                if task is not None and task.alive():
                    self.post_signal(task.pid, it["sig"])
                if it["interval_ns"] > 0:
                    while it["next_ns"] <= now:
                        it["next_ns"] += it["interval_ns"]
                else:
                    del self._itimers[pid]

    # ------------------------------------------------------------------
    # Dispatch / execution
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        """Schedule dispatch on every idle CPU (coalesced per call)."""
        for cpu in self.scheduler.cpus:
            if cpu.current is None:
                self.engine.after_anon(0, lambda c=cpu: self._dispatch(c))

    def _dispatch(self, cpu: CPU) -> None:
        if self._halted or cpu.current is not None:
            return
        task = self.scheduler.pick_next(cpu)
        if task is None:
            cpu.idle_since_ns = self.engine.now_ns
            return
        cpu.need_resched = False
        switch_ns = self.costs.context_switch_ns
        task.acct.context_switches += 1
        if task.mm is not None and cpu.current_mm is not task.mm:
            switch_ns += self.costs.address_space_switch_ns + self.costs.tlb_flush_ns
            cpu.current_mm = task.mm
            task.tlb_cold_pages = min(
                task.mm.total_present_pages(), self.costs.tlb_entries
            )
            self.engine.count("mm_switches")
        self.engine.after_anon(switch_ns, lambda: self._begin_op(cpu))

    def _preempt(self, cpu: CPU, requeue: bool = True) -> None:
        task = cpu.current
        cpu.current = None
        cpu.need_resched = False
        if task is not None and requeue and task.alive():
            self.scheduler.enqueue(task)
        self._dispatch(cpu)

    def _begin_op(self, cpu: CPU) -> None:
        """Fetch and start the current task's next operation."""
        task = cpu.current
        if task is None or self._halted:
            return
        if task.stop_requested:
            self._enter_stopped(task, cpu)
            return
        # Signal delivery happens on the kernel->user transition, i.e.
        # before the next USER-mode op, and only outside handler frames.
        if (
            not task.is_kthread
            and not task.in_handler
            and task.top_mode() == Mode.USER
            and task.signals.has_deliverable()
        ):
            if self._deliver_one_signal(task, cpu):
                return  # task exited or stopped; CPU already re-dispatched
        op = task.next_op()
        if op is None:
            self._exit_task(task, code=0)
            return
        self._execute(cpu, task, op)

    def _execute(self, cpu: CPU, task: Task, op: Op) -> None:
        """Compute the op's duration, apply side effects, schedule completion."""
        duration = 0
        result: Any = None
        count_main = True
        task.in_non_reentrant = bool(op.non_reentrant)

        if isinstance(op, Compute):
            duration = int(op.ns)

        elif isinstance(op, MemWrite):
            count_main = not op.continuation
            dur = self._service_write(task, op)
            if dur is None:
                # Faulted into a user-level tracking handler: the fault
                # cost is charged, the op will be retried after sigreturn.
                duration = self.costs.page_fault_ns
                count_main = False
            else:
                duration = dur

        elif isinstance(op, MemRead):
            duration = self._service_read(task, op)

        elif isinstance(op, Syscall):
            try:
                res, duration = self.syscalls.dispatch(self, task, op.name, op.args)
                result = res.value
            except SyscallError as exc:
                result = exc
                duration = self.costs.syscall_ns()

        elif isinstance(op, Sleep):
            task.state = TaskState.SLEEPING
            cpu.current = None
            self.engine.after_anon(int(op.ns), lambda: self._wake(task))
            self._dispatch(cpu)
            return

        elif isinstance(op, Yield):
            task.completed_op()
            self.scheduler.enqueue(task)
            self._preempt(cpu, requeue=False)
            return

        elif isinstance(op, Exit):
            self._exit_task(task, code=int(op.code))
            return

        else:
            raise SimulationError(f"unknown op {op!r}")

        duration += cpu.irq_backlog_ns
        cpu.irq_backlog_ns = 0
        self.engine.after_anon(
            max(0, duration),
            lambda: self._complete_op(cpu, task, duration, result, count_main),
        )

    def _complete_op(
        self, cpu: CPU, task: Task, duration: int, result: Any, count_main: bool = True
    ) -> None:
        if self._halted:
            return
        task.acct.cpu_ns += duration
        if task.mode == Mode.USER:
            task.acct.user_ns += duration
        else:
            task.acct.kernel_ns += duration
        # NOTE: ``in_non_reentrant`` is deliberately *not* cleared here: a
        # signal delivered at the next boundary logically interrupted the
        # op that just ran, so the reentrancy-hazard check must still see
        # whether that op was inside malloc/free.  The next _execute()
        # overwrites the flag.
        if isinstance(result, Exception):
            task.feed_result(result)
        elif result is not None:
            task.feed_result(result)
        if not task.alive():
            return
        task.completed_op(count_main=count_main)
        if cpu.current is not task:
            # Task was stopped/migrated underneath us.
            return
        if task.stop_requested:
            self._enter_stopped(task, cpu)
            return
        if self.scheduler.should_preempt(cpu):
            self._preempt(cpu)
            return
        self._begin_op(cpu)

    # -- memory access servicing ----------------------------------------
    def _split_pages(self, task: Task, op: MemWrite) -> Optional[MemWrite]:
        """If ``op`` spans pages, queue per-page segments; return first."""
        mm = task.mm
        if mm is None:
            raise MemoryError_("kernel thread has no address space to write")
        vma = mm.vma(op.vma)
        ps = vma.page_size
        if op.offset < 0 or op.offset + op.nbytes > vma.size_bytes:
            raise MemoryError_(
                f"write [{op.offset}, {op.offset + op.nbytes}) outside VMA "
                f"{vma.name!r} of {vma.size_bytes} bytes"
            )
        first_page = op.offset // ps
        last_page = (op.offset + max(op.nbytes, 1) - 1) // ps
        if first_page == last_page:
            return op
        segments = []
        off = op.offset
        remaining = op.nbytes
        while remaining > 0:
            page_end = (off // ps + 1) * ps
            chunk = min(remaining, page_end - off)
            segments.append(
                MemWrite(
                    vma=op.vma,
                    offset=off,
                    nbytes=chunk,
                    seed=op.seed,
                    continuation=bool(segments) or op.continuation,
                )
            )
            off += chunk
            remaining -= chunk
        for seg in segments[1:]:
            task.op_queue.append(seg)
        return segments[0]

    def _service_write(self, task: Task, op: MemWrite) -> Optional[int]:
        """Service one (single-page after split) write; None => retry later."""
        op = self._split_pages(task, op)
        mm = task.mm
        vma = mm.vma(op.vma)
        pidx = op.offset // vma.page_size
        in_page_off = op.offset % vma.page_size

        # Tracking fault reflected to a *user-level* handler (SIGSEGV)?
        # mprotect covers the whole mapped range, so first-touch of a page
        # that was never allocated also faults while the VMA is armed.
        tracked_hit = vma.test(pidx, PageFlag.TRACK_WP) or (
            vma.tracking_armed
            and not vma.test(pidx, PageFlag.PRESENT)
            and not vma.test(pidx, PageFlag.UNPROT)
        )
        if (
            tracked_hit
            and task.annotations.get("tracking_mode") == "user"
            and task.mode == Mode.USER
        ):
            task.acct.page_faults += 1
            task.acct.tracking_faults += 1
            task.annotations["fault_info"] = {"vma": vma.name, "page": pidx}
            task.retry_op = op
            self.post_signal(task.pid, Sig.SIGSEGV)
            return None

        duration = 0
        outcome = mm.write_access(vma, pidx, in_page_off, op.nbytes)
        if outcome.allocated:
            duration += self.costs.page_fault_ns + self.costs.page_alloc_ns
            task.acct.page_faults += 1
        if outcome.cow_copied:
            duration += self.costs.page_fault_ns + self.costs.memcpy_ns(
                vma.page_size
            )
            task.acct.page_faults += 1
            task.acct.cow_copies += 1
        if outcome.tracking_fault:
            # System-level tracking: the fault handler logs the dirty page
            # directly and unprotects -- no signal, no user frame.
            duration += self.costs.page_fault_ns + 200
            task.acct.page_faults += 1
            task.acct.tracking_faults += 1
            vma.clear_flag(pidx, PageFlag.TRACK_WP)
            log = task.annotations.get("dirty_log")
            if log is not None:
                log.record(vma.name, pidx)
        if task.tlb_cold_pages > 0:
            duration += self.costs.tlb_refill_per_entry_ns
            task.acct.tlb_refill_ns += self.costs.tlb_refill_per_entry_ns
            task.tlb_cold_pages -= 1
        mm.fill_pattern(vma, pidx, in_page_off, op.nbytes, op.seed)
        duration += self.costs.memcpy_ns(op.nbytes)
        if self.hw_tracker is not None:
            self.hw_tracker(task, vma, pidx, in_page_off, op.nbytes)
        return duration

    def _service_read(self, task: Task, op: MemRead) -> int:
        mm = task.mm
        if mm is None:
            raise MemoryError_("kernel thread has no address space to read")
        vma = mm.vma(op.vma)
        if op.offset < 0 or op.offset + op.nbytes > vma.size_bytes:
            raise MemoryError_(f"read outside VMA {vma.name!r}")
        duration = self.costs.memcpy_ns(op.nbytes)
        first = op.offset // vma.page_size
        last = (op.offset + max(op.nbytes, 1) - 1) // vma.page_size
        for pidx in range(first, last + 1):
            _, allocated = vma.ensure_page(pidx)
            if allocated:
                duration += self.costs.page_fault_ns + self.costs.page_alloc_ns
                task.acct.page_faults += 1
            vma.set_flag(pidx, PageFlag.ACCESSED)
            if task.tlb_cold_pages > 0:
                duration += self.costs.tlb_refill_per_entry_ns
                task.acct.tlb_refill_ns += self.costs.tlb_refill_per_entry_ns
                task.tlb_cold_pages -= 1
        return duration

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def post_signal(self, pid: int, sig: Sig, sender: Optional[Task] = None) -> None:
        """Queue ``sig`` for ``pid`` (the ``kill()`` path).

        A system-level initiator may instead "directly updat[e] the data
        structure of the process" -- call with ``sender=None`` for that
        free path; user-mode senders go through the ``kill`` syscall which
        charges them.
        """
        task = self.task_by_pid(pid)
        if not task.alive():
            return
        task.signals.post(sig)
        self.engine.count(f"signal_post_{Sig(sig).name}")
        if task.state == TaskState.SLEEPING:
            self._wake(task)
        elif task.state == TaskState.STOPPED and sig == Sig.SIGCONT:
            self.resume_task(task)
        self._kick()

    def _deliver_one_signal(self, task: Task, cpu: CPU) -> bool:
        """Deliver the next signal; True if the task lost the CPU."""
        sig = task.signals.take_deliverable()
        if sig is None:
            return False
        task.acct.signals_received += 1
        handler = task.signals.disposition(sig)
        if handler.kind == HandlerKind.IGNORE:
            return False
        if handler.kind == HandlerKind.USER:
            if handler.uses_non_reentrant and task.in_non_reentrant:
                task.signals.reentrancy_hazards += 1
                self.engine.count("reentrancy_hazards")
            cpu.irq_backlog_ns += self.costs.signal_deliver_user_ns
            task.acct.mode_switches += 2
            task.push_frame(handler.program_factory(task), Mode.USER)
            return False
        if handler.kind == HandlerKind.KERNEL:
            cpu.irq_backlog_ns += self.costs.signal_deliver_kernel_ns
            handler.kernel_action(task)
            return False
        # DEFAULT disposition
        action = default_action(sig)
        if action == "ignore":
            return False
        if action == "stop":
            self._enter_stopped(task, cpu)
            return True
        self._exit_task(task, code=128 + int(sig))
        return True

    def register_handler(self, task: Task, sig: Sig, handler: SignalHandler) -> None:
        """Install a signal handler from kernel context (no syscall cost)."""
        task.signals.register(sig, handler)

    def add_kernel_signal(self, sig: Sig, action: Callable[[Task], None], label: str = "") -> None:
        """Give ``sig`` a *kernel-mode default action* for every task.

        This models EPCKPT/CHPOX/Software-Suspend adding a new signal to
        the kernel whose default action checkpoints (or freezes) the
        process -- no per-task registration needed.
        """
        self._kernel_signal_actions = getattr(self, "_kernel_signal_actions", {})
        self._kernel_signal_actions[sig] = (action, label)
        # Implemented by installing the handler lazily at post time via a
        # monkeypatch-free hook: we wrap post_signal's lookup instead.
        for task in self.tasks.values():
            if not task.is_kthread:
                task.signals.handlers.setdefault(
                    sig,
                    SignalHandler(kind=HandlerKind.KERNEL, kernel_action=action, label=label),
                )

    def remove_kernel_signal(self, sig: Sig) -> None:
        """Remove a kernel-added signal action (module unload)."""
        actions = getattr(self, "_kernel_signal_actions", {})
        actions.pop(sig, None)
        for task in self.tasks.values():
            h = task.signals.handlers.get(sig)
            if h is not None and h.kind == HandlerKind.KERNEL:
                del task.signals.handlers[sig]

    def _install_kernel_signals(self, task: Task) -> None:
        for sig, (action, label) in getattr(self, "_kernel_signal_actions", {}).items():
            task.signals.handlers.setdefault(
                sig,
                SignalHandler(kind=HandlerKind.KERNEL, kernel_action=action, label=label),
            )

    # ------------------------------------------------------------------
    # Task state control
    # ------------------------------------------------------------------
    def _wake(self, task: Task) -> None:
        if not task.alive():
            return
        if task.state == TaskState.SLEEPING:
            if task.stop_requested:
                task.state = TaskState.STOPPED
                task.stop_requested = False
                return
            self.scheduler.enqueue(task)
            self._kick()

    def _enter_stopped(self, task: Task, cpu: Optional[CPU]) -> None:
        task.stop_requested = False
        task.state = TaskState.STOPPED
        self.scheduler.dequeue(task)
        if cpu is not None and cpu.current is task:
            cpu.current = None
            self._dispatch(cpu)

    def stop_task(self, task: Task) -> None:
        """Freeze a task at its next op boundary (checkpoint consistency).

        The paper: "a mechanism to stop the application is necessary (like
        removing the application from its runqueue list) in order to
        guarantee data consistency."
        """
        if not task.alive():
            return
        if task.state == TaskState.READY:
            self._enter_stopped(task, None)
        elif task.state == TaskState.RUNNING:
            task.stop_requested = True
        elif task.state == TaskState.SLEEPING:
            task.stop_requested = True  # parks STOPPED on wake
        task.annotations["stop_time_ns"] = self.engine.now_ns

    def resume_task(self, task: Task) -> None:
        """Unfreeze a STOPPED task."""
        if not task.alive() and task.state != TaskState.STOPPED:
            return
        if task.state == TaskState.STOPPED:
            t0 = task.annotations.pop("stop_time_ns", None)
            if t0 is not None:
                task.acct.stall_ns += self.engine.now_ns - t0
            self.scheduler.enqueue(task)
            self._kick()

    def _exit_task(self, task: Task, code: int) -> None:
        task.exit_code = code
        task.state = TaskState.ZOMBIE
        self.scheduler.dequeue(task)
        for cpu in self.scheduler.cpus:
            if cpu.current is task:
                cpu.current = None
                self._dispatch(cpu)
        if task.parent is not None and task.parent.alive():
            task.parent.signals.post(Sig.SIGCHLD)
        for fn in self._exit_watchers.pop(task.pid, []):
            fn(task)
        self._itimers.pop(task.pid, None)
        self.engine.count("task_exits")

    def on_exit(self, task: Task, fn: Callable[[Task], None]) -> None:
        """Register a callback fired when ``task`` exits."""
        if not task.alive():
            fn(task)
            return
        self._exit_watchers.setdefault(task.pid, []).append(fn)

    def reap(self, task: Task) -> int:
        """Collect a zombie; returns exit code."""
        if task.state != TaskState.ZOMBIE:
            raise SimulationError(f"task {task.name!r} is not a zombie")
        task.state = TaskState.DEAD
        self.tasks.pop(task.pid, None)
        return task.exit_code if task.exit_code is not None else -1

    # ------------------------------------------------------------------
    # fork / kthread mm attach
    # ------------------------------------------------------------------
    def do_fork(
        self,
        parent: Task,
        child_program_factory: Optional[ProgramFactory] = None,
        stopped: bool = True,
    ) -> Tuple[Task, int]:
        """Fork ``parent``; returns (child, cost_ns).

        The child's address space is COW-shared; this is the consistency
        device of the concurrent "Checkpoint" mechanism [5] and of
        libckpt's forked checkpoints: the frozen child preserves the
        instantaneous image while the parent keeps running.
        """
        child_mm = parent.mm.fork()
        child = Task(
            pid=self.alloc_pid(),
            name=f"{parent.name}-child",
            mm=child_mm,
            program_factory=child_program_factory,
            policy=parent.policy,
            static_prio=parent.static_prio,
            rt_prio=parent.rt_prio,
            uid=parent.uid,
        )
        child.node_id = self.node_id
        child.parent = parent
        parent.children.append(child)
        # Duplicate descriptor table (offsets copied; files shared).
        for fd, fdesc in parent.fds.items():
            child.install_fd(
                FileDescriptor(
                    fd=fd,
                    file=fdesc.file,
                    offset=fdesc.offset,
                    flags=fdesc.flags,
                    cloexec=fdesc.cloexec,
                )
            )
            fdesc.file.refcount += 1
        child.signals.blocked = set(parent.signals.blocked)
        child.signals.handlers = dict(parent.signals.handlers)
        child.main_steps = parent.main_steps
        self.tasks[child.pid] = child
        cost = self.costs.fork_fixed_ns + self.costs.fork_per_page_ns * (
            parent.mm.total_present_pages()
        )
        if stopped or child_program_factory is None:
            child.state = TaskState.STOPPED
        else:
            self.scheduler.enqueue(child)
            self._kick()
        self.engine.count("forks")
        return child, cost

    def kthread_attach_mm(self, kthread: Task, target: Task) -> int:
        """Attach a kernel thread to ``target``'s page tables; returns cost.

        If the CPU running the kthread already holds the target's mm (the
        kthread "interrupt[ed] the application it wants to checkpoint"),
        the attach is free; otherwise it pays an address-space switch plus
        a TLB flush, and the displaced working set reloads cold.
        """
        cpu = self._cpu_of(kthread)
        if cpu is None:
            raise SchedulerError("kthread is not running on any CPU")
        if cpu.current_mm is target.mm:
            return 0
        cost = self.costs.address_space_switch_ns + self.costs.tlb_flush_ns
        displaced = cpu.current_mm
        cpu.current_mm = target.mm
        if displaced is not None:
            for t in self.tasks.values():
                if t.mm is displaced:
                    t.tlb_cold_pages = min(
                        displaced.total_present_pages(), self.costs.tlb_entries
                    )
        self.engine.count("kthread_mm_switches")
        return cost

    def _cpu_of(self, task: Task) -> Optional[CPU]:
        for cpu in self.scheduler.cpus:
            if cpu.current is task:
                return cpu
        return None

    # ------------------------------------------------------------------
    # Interrupt control (paper: defer interrupts during checkpoint)
    # ------------------------------------------------------------------
    def disable_irqs_for(self, task: Task) -> bool:
        """Disable interrupts on the CPU running ``task``; True on success."""
        cpu = self._cpu_of(task)
        if cpu is None:
            return False
        cpu.irq_disabled = True
        return True

    def enable_irqs_for(self, task: Task) -> int:
        """Re-enable interrupts; returns how many were deferred."""
        cpu = self._cpu_of(task)
        if cpu is None:
            return 0
        cpu.irq_disabled = False
        deferred = cpu.deferred_irqs
        cpu.deferred_irqs = 0
        # Deferred interrupts are replayed as a burst of backlog.
        cpu.irq_backlog_ns += deferred * self.costs.interrupt_overhead_ns
        return deferred

    def enable_irq_noise(self, rate_hz: float) -> None:
        """Generate Poisson device interrupts at ``rate_hz`` per CPU."""
        if rate_hz <= 0:
            return
        rng = self.engine.spawn_rng()
        mean_gap_ns = 1e9 / rate_hz

        def arrival(cpu: CPU) -> None:
            if self._halted:
                return
            if cpu.irq_disabled:
                cpu.deferred_irqs += 1
            elif cpu.current is not None:
                cpu.irq_backlog_ns += self.costs.interrupt_overhead_ns
                cpu.current.acct.interrupts_absorbed += 1
            gap = max(1, int(rng.exponential(mean_gap_ns)))
            self.engine.after_anon(gap, lambda: arrival(cpu))

        for cpu in self.scheduler.cpus:
            gap = max(1, int(rng.exponential(mean_gap_ns)))
            self.engine.after_anon(gap, lambda c=cpu: arrival(c))

    # ------------------------------------------------------------------
    # Direct kernel-side state access (system-level checkpointers)
    # ------------------------------------------------------------------
    def read_task_struct(self, task: Task) -> Dict[str, Any]:
        """Everything a system-level checkpointer reads "for free".

        "In kernel space every data structure relevant to a process's
        state is readily accessible: these include registers, memory
        regions, file descriptors, signal state, and more."
        """
        return {
            "pid": task.pid,
            "name": task.name,
            "uid": task.uid,
            "registers": task.registers.snapshot(),
            "main_steps": task.main_steps,
            "policy": task.policy.value,
            "static_prio": task.static_prio,
            "vmas": [
                {
                    "name": v.name,
                    "start": v.start,
                    "npages": v.npages,
                    "prot": v.prot,
                    "kind": v.kind.value,
                    "shared": v.shared,
                    "file_path": v.file_path,
                    "shm_key": v.shm_key,
                }
                for v in task.mm.vmas
            ]
            if task.mm is not None
            else [],
            "fds": [fd.snapshot() for fd in task.fds.values()],
            "signals": task.signals.snapshot(),
        }

    # ------------------------------------------------------------------
    # Default system calls
    # ------------------------------------------------------------------
    def _register_default_syscalls(self) -> None:
        t = self.syscalls

        def sc(name):
            def deco(fn):
                t.register(name, fn)
                return fn

            return deco

        @sc("getpid")
        def _getpid(k, task):
            return SyscallResult(task.pid, 50)

        @sc("sbrk")
        def _sbrk(k, task, delta=0):
            heap = task.mm.vma("heap")
            if delta:
                k_new = heap.size_bytes + int(delta)
                task.mm.resize("heap", k_new)
            return SyscallResult(task.mm.vma("heap").end, 150)

        @sc("mmap")
        def _mmap(k, task, name, nbytes, prot=Prot.RW, kind=VMAKind.ANON, shared=False):
            vma = task.mm.map(name, nbytes, prot=prot, kind=VMAKind(kind), shared=shared)
            return SyscallResult(vma.start, 800)

        @sc("munmap")
        def _munmap(k, task, name):
            task.mm.unmap(name)
            return SyscallResult(0, 600)

        @sc("mprotect")
        def _mprotect(k, task, vma_name, action, page=None):
            """Tracking-oriented mprotect.

            ``action``: ``"arm"`` write-protects all present pages of the
            VMA for dirty tracking; ``"unprotect"`` clears TRACK_WP on one
            page (the user-level SIGSEGV handler's fix-up); ``"disarm"``
            clears the whole VMA.
            """
            vma = task.mm.vma(vma_name)
            if action == "arm":
                present = (vma.flags & PageFlag.PRESENT) != 0
                armed = int(present.sum())
                vma.flags[present] |= PageFlag.TRACK_WP
                vma.flags[present] &= ~PageFlag.DIRTY & 0xFF
                vma.flags &= ~PageFlag.UNPROT & 0xFF
                vma.tracking_armed = True
                return SyscallResult(armed, 300 + 15 * armed)
            if action == "unprotect":
                vma.clear_flag(int(page), PageFlag.TRACK_WP)
                vma.set_flag(int(page), PageFlag.UNPROT)
                return SyscallResult(0, 300)
            if action == "disarm":
                vma.flags &= ~PageFlag.TRACK_WP & 0xFF
                vma.tracking_armed = False
                return SyscallResult(0, 300)
            raise SyscallError(f"mprotect: unknown action {action!r}")

        @sc("open")
        def _open(k, task, path, create=False):
            if not k.vfs.exists(path) and create:
                k.vfs.create(path)
            f = k.vfs.lookup(path)
            fd = task.alloc_fd()
            task.install_fd(FileDescriptor(fd=fd, file=f))
            f.refcount += 1
            return SyscallResult(fd, 400)

        @sc("close")
        def _close(k, task, fd):
            fdesc = task.fds.pop(int(fd), None)
            if fdesc is None:
                raise SyscallError(f"close: bad fd {fd}")
            fdesc.file.refcount -= 1
            return SyscallResult(0, 200)

        @sc("dup")
        def _dup(k, task, fd):
            src = task.fds.get(int(fd))
            if src is None:
                raise SyscallError(f"dup: bad fd {fd}")
            nfd = task.alloc_fd()
            task.install_fd(
                FileDescriptor(fd=nfd, file=src.file, offset=src.offset, flags=src.flags)
            )
            src.file.refcount += 1
            return SyscallResult(nfd, 250)

        @sc("lseek")
        def _lseek(k, task, fd, offset=0, whence="cur"):
            fdesc = task.fds.get(int(fd))
            if fdesc is None:
                raise SyscallError(f"lseek: bad fd {fd}")
            if whence == "set":
                fdesc.offset = int(offset)
            elif whence == "cur":
                fdesc.offset += int(offset)
            elif whence == "end":
                fdesc.offset = fdesc.file.size + int(offset)
            else:
                raise SyscallError(f"lseek: bad whence {whence!r}")
            return SyscallResult(fdesc.offset, 150)

        @sc("read")
        def _read(k, task, fd, nbytes):
            fdesc = task.fds.get(int(fd))
            if fdesc is None:
                raise SyscallError(f"read: bad fd {fd}")
            data = fdesc.file.read(fdesc.offset, int(nbytes))
            fdesc.offset += len(data)
            return SyscallResult(data, 300 + k.costs.memcpy_ns(len(data)))

        @sc("write")
        def _write(k, task, fd, data):
            fdesc = task.fds.get(int(fd))
            if fdesc is None:
                raise SyscallError(f"write: bad fd {fd}")
            payload = data if isinstance(data, (bytes, bytearray)) else bytes(int(data))
            n = fdesc.file.write(fdesc.offset, bytes(payload))
            fdesc.offset += n
            return SyscallResult(n, 300 + k.costs.memcpy_ns(n))

        @sc("unlink")
        def _unlink(k, task, path):
            k.vfs.unlink(path)
            return SyscallResult(0, 350)

        @sc("ioctl")
        def _ioctl(k, task, fd, cmd, arg=None):
            fdesc = task.fds.get(int(fd))
            if fdesc is None:
                raise SyscallError(f"ioctl: bad fd {fd}")
            value = fdesc.file.ioctl(task, cmd, arg)
            return SyscallResult(value, 500)

        @sc("kill")
        def _kill(k, task, pid, sig):
            k.post_signal(int(pid), Sig(sig))
            return SyscallResult(0, k.costs.signal_post_ns)

        @sc("sigaction")
        def _sigaction(k, task, sig, handler):
            task.signals.register(Sig(sig), handler)
            return SyscallResult(0, 250)

        @sc("sigpending")
        def _sigpending(k, task):
            return SyscallResult(list(task.signals.pending), 150)

        @sc("sigprocmask")
        def _sigprocmask(k, task, how, sigs):
            sigset = {Sig(s) for s in sigs}
            if how == "block":
                task.signals.blocked |= sigset
            elif how == "unblock":
                task.signals.blocked -= sigset
            elif how == "set":
                task.signals.blocked = sigset
            else:
                raise SyscallError(f"sigprocmask: bad how {how!r}")
            return SyscallResult(0, 200)

        @sc("setitimer")
        def _setitimer(k, task, interval_ns, sig=Sig.SIGALRM, first_ns=None):
            first = int(first_ns) if first_ns is not None else int(interval_ns)
            k._itimers[task.pid] = {
                "interval_ns": int(interval_ns),
                "sig": Sig(sig),
                "next_ns": k.engine.now_ns + first,
            }
            return SyscallResult(0, 300)

        @sc("fork")
        def _fork(k, task, child_factory=None):
            child, cost = k.do_fork(task, child_program_factory=child_factory)
            return SyscallResult(child.pid, cost)

        @sc("sched_setscheduler")
        def _setsched(k, task, pid, policy, rt_prio=0):
            target = k.task_by_pid(int(pid))
            target.policy = SchedPolicy(policy)
            target.rt_prio = int(rt_prio)
            return SyscallResult(0, 400)

        @sc("shmget")
        def _shmget(k, task, key, nbytes):
            seg = k.shm_segments.setdefault(
                int(key), {"size": int(nbytes), "id": 0x5000 + len(k.shm_segments), "attached": set()}
            )
            return SyscallResult(seg["id"], 500)

        @sc("shmat")
        def _shmat(k, task, key):
            seg = k.shm_segments.get(int(key))
            if seg is None:
                raise SyscallError(f"shmat: no segment with key {key}")
            name = f"shm:{key}"
            if not task.mm.has_vma(name):
                task.mm.map(
                    name, seg["size"], prot=Prot.RW, kind=VMAKind.SHM,
                    shared=True, shm_key=int(key),
                )
            seg["attached"].add(task.pid)
            return SyscallResult(task.mm.vma(name).start, 700)

        @sc("socket_connect")
        def _socket_connect(k, task, remote_addr, local_port):
            if int(local_port) in k.ports_in_use:
                raise SyscallError(f"port {local_port} in use")
            k.ports_in_use.add(int(local_port))
            sockpath = f"socket:[{task.pid}:{local_port}]"
            sock = SocketFile(sockpath, int(local_port), str(remote_addr))
            fd = task.alloc_fd()
            task.install_fd(FileDescriptor(fd=fd, file=sock))
            sock.refcount += 1
            return SyscallResult(fd, 900)

        @sc("nanosleep")
        def _nanosleep(k, task, ns):
            # Modelled via the Sleep op; syscall form kept for API parity.
            raise SyscallError("use the Sleep op instead of nanosleep")

        @sc("uname")
        def _uname(k, task):
            return SyscallResult({"node_id": k.node_id, "sysname": "simlinux"}, 100)
