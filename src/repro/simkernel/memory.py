"""Simulated virtual memory: VMAs, page tables, protection, COW.

This module supplies the substrate on which every checkpointing granularity
in the paper operates:

* **Page-protection dirty tracking** -- both the user-level flavour
  (``mprotect`` + SIGSEGV, Section 3 of the paper) and the system-level
  flavour (the fault handler records the dirty page directly, Section 4)
  are driven by the ``TRACK_WP`` software bit implemented here.
* **Copy-on-write fork** -- the consistency mechanism used by the
  "Checkpoint" proposal [5] and by libckpt's forked checkpoints.
* **Cache-line granularity tracking** -- the hardware proposals (Revive,
  SafetyNet) observe writes at line granularity; the write path reports
  the touched line range so :mod:`repro.mechanisms.hardware` can log it.

Page *contents* are real bytes (NumPy ``uint8`` arrays, allocated lazily
per page) so that checkpoint/restart can be verified byte-exactly, not
just accounted for.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import MemoryError_
from .costs import CostModel

__all__ = [
    "Prot",
    "VMAKind",
    "PageFlag",
    "VMA",
    "AddressSpace",
    "WriteOutcome",
    "page_checksum",
]


class Prot:
    """VMA protection bits (a la ``PROT_READ``/``PROT_WRITE``/``PROT_EXEC``)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC


class VMAKind(str, Enum):
    """What a VMA holds; drives per-mechanism image filtering (E17)."""

    CODE = "code"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    ANON = "anon"
    SHLIB = "shlib"
    FILE = "file"
    SHM = "shm"


class PageFlag:
    """Bit positions in the per-page flag word (uint8 per page)."""

    PRESENT = 1 << 0
    DIRTY = 1 << 1
    ACCESSED = 1 << 2
    COW = 1 << 3
    #: Software write-protect used for incremental dirty tracking.
    TRACK_WP = 1 << 4
    #: Explicitly unprotected by the user-level fault handler: exempt
    #: from armed-VMA first-touch faults until tracking is re-armed.
    UNPROT = 1 << 5


def page_checksum(data: np.ndarray) -> int:
    """Deterministic checksum of one page's bytes (adler32; cheap, stable)."""
    return zlib.adler32(data.tobytes()) & 0xFFFFFFFF


@dataclass
class WriteOutcome:
    """What servicing one page's worth of a write access entailed.

    The kernel uses this to charge costs and to drive fault plumbing
    (signal delivery for user-level tracking, dirty logging for
    system-level tracking, line logging for hardware tracking).
    """

    vma: "VMA"
    page_index: int
    allocated: bool = False
    cow_copied: bool = False
    tracking_fault: bool = False
    lines_touched: int = 0


class VMA:
    """A virtual memory area: contiguous pages with common attributes.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within the address space
        (``"heap"``, ``"stack"``, ``"libm.so"`` ...).
    start:
        Base virtual address (page aligned).
    npages:
        Length in pages.
    prot:
        :class:`Prot` bits.
    kind:
        :class:`VMAKind`; checkpointers filter on it (e.g. PsncR/C always
        saves code and shared libraries, most others skip clean file pages).
    page_size:
        Bytes per page.
    shared:
        True for MAP_SHARED/SysV-shm areas: fork does *not* COW them and
        their identity is kernel-persistent state (ZAP's pod virtualizes
        it; plain mechanisms fail to restore it cross-machine).
    file_path:
        Backing file path for file mappings (restored images re-open it).
    """

    def __init__(
        self,
        name: str,
        start: int,
        npages: int,
        prot: int,
        kind: VMAKind,
        page_size: int,
        shared: bool = False,
        file_path: Optional[str] = None,
        shm_key: Optional[int] = None,
    ) -> None:
        if npages <= 0:
            raise MemoryError_(f"VMA {name!r} must have at least one page")
        if start % page_size:
            raise MemoryError_(f"VMA {name!r} start {start:#x} not page aligned")
        self.name = name
        self.start = start
        self.npages = npages
        self.prot = prot
        self.kind = kind
        self.page_size = page_size
        self.shared = shared
        self.file_path = file_path
        self.shm_key = shm_key
        #: Sparse page contents: page index -> uint8 array.  Arrays may be
        #: shared with a forked sibling until a COW fault copies them.
        self.pages: Dict[int, np.ndarray] = {}
        #: Per-page flag word.
        self.flags: np.ndarray = np.zeros(npages, dtype=np.uint8)
        #: Dirty tracking armed on the whole VMA: ``mprotect`` covers the
        #: full mapped range, so first-touch of a *new* page is also a
        #: tracking fault, not just writes to TRACK_WP'd present pages.
        self.tracking_armed = False

    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.start + self.npages * self.page_size

    @property
    def size_bytes(self) -> int:
        """Mapped length in bytes."""
        return self.npages * self.page_size

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this VMA."""
        return self.start <= addr < self.end

    def page_of(self, addr: int) -> int:
        """Page index of ``addr`` within this VMA."""
        if not self.contains(addr):
            raise MemoryError_(f"address {addr:#x} outside VMA {self.name!r}")
        return (addr - self.start) // self.page_size

    # -- flag helpers ---------------------------------------------------
    def test(self, pidx: int, flag: int) -> bool:
        """Test a :class:`PageFlag` bit on page ``pidx``."""
        return bool(self.flags[pidx] & flag)

    def set_flag(self, pidx: int, flag: int) -> None:
        """Set a :class:`PageFlag` bit on page ``pidx``."""
        self.flags[pidx] |= flag

    def clear_flag(self, pidx: int, flag: int) -> None:
        """Clear a :class:`PageFlag` bit on page ``pidx``."""
        self.flags[pidx] &= ~np.uint8(flag)

    def present_pages(self) -> np.ndarray:
        """Indices of pages with backing storage allocated."""
        return np.nonzero(self.flags & PageFlag.PRESENT)[0]

    def dirty_pages(self) -> np.ndarray:
        """Indices of pages dirtied since tracking was last reset."""
        mask = (self.flags & (PageFlag.PRESENT | PageFlag.DIRTY)) == (
            PageFlag.PRESENT | PageFlag.DIRTY
        )
        return np.nonzero(mask)[0]

    # -- content helpers --------------------------------------------------
    def ensure_page(self, pidx: int) -> Tuple[np.ndarray, bool]:
        """Return the backing array for ``pidx``, allocating if needed.

        Returns ``(array, allocated_now)``.
        """
        arr = self.pages.get(pidx)
        if arr is None:
            arr = np.zeros(self.page_size, dtype=np.uint8)
            self.pages[pidx] = arr
            self.set_flag(pidx, PageFlag.PRESENT)
            return arr, True
        return arr, False

    def read_page(self, pidx: int) -> np.ndarray:
        """Copy of page ``pidx`` contents (zeros if never touched)."""
        arr = self.pages.get(pidx)
        if arr is None:
            return np.zeros(self.page_size, dtype=np.uint8)
        return arr.copy()

    def read_pages(self, pidx: int, npages: int) -> np.ndarray:
        """Contiguous copy of ``npages`` pages starting at ``pidx``.

        Absent pages read as zeros.  This is the extent-capture fast
        path: one allocation and ``npages`` row copies instead of
        ``npages`` separate page copies and Chunk objects.
        """
        out = np.zeros((npages, self.page_size), dtype=np.uint8)
        for i in range(npages):
            arr = self.pages.get(pidx + i)
            if arr is not None:
                out[i] = arr
        return out.reshape(-1)

    def install_page(self, pidx: int, data: np.ndarray, dirty: bool = False) -> None:
        """Install page contents (used by restart)."""
        if data.shape != (self.page_size,):
            raise MemoryError_(
                f"page data shape {data.shape} != ({self.page_size},)"
            )
        self.pages[pidx] = np.array(data, dtype=np.uint8, copy=True)
        self.set_flag(pidx, PageFlag.PRESENT)
        if dirty:
            self.set_flag(pidx, PageFlag.DIRTY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VMA {self.name} {self.start:#x}-{self.end:#x} "
            f"{self.kind.value} pages={self.npages}>"
        )


class AddressSpace:
    """A process's memory map: an ordered set of VMAs plus an allocator.

    The kernel-thread discussion in the paper (Section 4.1) hinges on
    address-space *identity*: a kernel thread borrows the page tables of
    whatever task it interrupted and must pay an address-space switch (and
    TLB invalidation) to touch a different task's memory.  Identity is the
    :class:`AddressSpace` object itself (compare with ``is``).
    """

    #: Where the bump allocator starts placing VMAs.
    BASE_ADDR = 0x0000_0000_0040_0000

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        self.page_size = costs.page_size
        self.vmas: List[VMA] = []
        self._by_name: Dict[str, VMA] = {}
        #: VMA start addresses kept sorted (parallel to ``_sorted``) so
        #: :meth:`find_vma` is a bisect instead of a linear scan.
        self._starts: List[int] = []
        self._sorted: List[VMA] = []
        self._next_addr = self.BASE_ADDR
        #: Monotone generation, bumped on fork for diagnostics.
        self.generation = 0

    def _attach(self, vma: VMA) -> None:
        self.vmas.append(vma)
        self._by_name[vma.name] = vma
        i = bisect_right(self._starts, vma.start)
        self._starts.insert(i, vma.start)
        self._sorted.insert(i, vma)

    def _detach(self, vma: VMA) -> None:
        self.vmas.remove(vma)
        i = self._sorted.index(vma)
        del self._sorted[i]
        del self._starts[i]

    # ------------------------------------------------------------------
    def map(
        self,
        name: str,
        nbytes: int,
        prot: int = Prot.RW,
        kind: VMAKind = VMAKind.ANON,
        shared: bool = False,
        file_path: Optional[str] = None,
        shm_key: Optional[int] = None,
    ) -> VMA:
        """Create and attach a new VMA of at least ``nbytes`` bytes."""
        if name in self._by_name:
            raise MemoryError_(f"VMA name {name!r} already mapped")
        npages = max(1, self.costs.pages_for(nbytes))
        vma = VMA(
            name,
            self._next_addr,
            npages,
            prot,
            kind,
            self.page_size,
            shared=shared,
            file_path=file_path,
            shm_key=shm_key,
        )
        # Leave a guard gap so resizes never collide.
        self._next_addr = vma.end + 64 * self.page_size
        self._attach(vma)
        return vma

    def unmap(self, name: str) -> VMA:
        """Detach and return the named VMA."""
        vma = self._by_name.pop(name, None)
        if vma is None:
            raise MemoryError_(f"no VMA named {name!r}")
        self._detach(vma)
        return vma

    def vma(self, name: str) -> VMA:
        """Look up a VMA by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"no VMA named {name!r}") from None

    def has_vma(self, name: str) -> bool:
        """Whether a VMA with this name exists."""
        return name in self._by_name

    def find_vma(self, addr: int) -> VMA:
        """Find the VMA containing ``addr`` (bisect on sorted starts)."""
        i = bisect_right(self._starts, addr) - 1
        if i >= 0:
            vma = self._sorted[i]
            if vma.contains(addr):
                return vma
        raise MemoryError_(f"address {addr:#x} is unmapped")

    def resize(self, name: str, new_nbytes: int) -> VMA:
        """Grow (never shrink below present pages) a VMA -- ``sbrk`` support."""
        vma = self.vma(name)
        new_npages = max(1, self.costs.pages_for(new_nbytes))
        if new_npages < vma.npages:
            present = vma.present_pages()
            if len(present) and present[-1] >= new_npages:
                raise MemoryError_(
                    f"cannot shrink VMA {name!r} below its populated pages"
                )
            # Drop trailing never-touched pages.
            vma.flags = vma.flags[:new_npages].copy()
            vma.npages = new_npages
        elif new_npages > vma.npages:
            grown = np.zeros(new_npages, dtype=np.uint8)
            grown[: vma.npages] = vma.flags
            vma.flags = grown
            vma.npages = new_npages
        return vma

    # ------------------------------------------------------------------
    def total_present_pages(self) -> int:
        """Total resident pages across all VMAs."""
        return int(sum(len(v.present_pages()) for v in self.vmas))

    def total_mapped_bytes(self) -> int:
        """Total mapped (not necessarily resident) bytes."""
        return sum(v.size_bytes for v in self.vmas)

    def iter_present(self) -> Iterator[Tuple[VMA, int]]:
        """Yield (vma, page_index) for every resident page."""
        for vma in self.vmas:
            for pidx in vma.present_pages():
                yield vma, int(pidx)

    # -- write access path ---------------------------------------------
    def write_access(
        self, vma: VMA, pidx: int, offset: int, length: int
    ) -> WriteOutcome:
        """Service a write of ``length`` bytes at ``offset`` within a page.

        Performs allocation and COW copying *of this address space's view*
        and reports what happened; the kernel charges time and decides how
        tracking faults propagate (signal vs direct logging).  The actual
        byte mutation is done separately by the caller via
        :meth:`fill_pattern` or :meth:`write_bytes` so mechanisms can
        observe the fault before the data changes.
        """
        if not (vma.prot & Prot.WRITE):
            raise MemoryError_(
                f"write to non-writable VMA {vma.name!r} (PROT_WRITE clear)"
            )
        if offset < 0 or offset + length > vma.page_size:
            raise MemoryError_("write crosses page boundary; split it first")
        out = WriteOutcome(vma=vma, page_index=pidx)
        _, out.allocated = vma.ensure_page(pidx)
        if vma.test(pidx, PageFlag.COW) and not vma.shared:
            src = vma.pages[pidx]
            vma.pages[pidx] = src.copy()
            vma.clear_flag(pidx, PageFlag.COW)
            out.cow_copied = True
        if vma.test(pidx, PageFlag.TRACK_WP):
            out.tracking_fault = True
            # The kernel decides whether to clear TRACK_WP (system-level
            # tracking unprotects after logging; user-level handler calls
            # mprotect itself).  We leave the bit alone here.
        vma.set_flag(pidx, PageFlag.DIRTY | PageFlag.ACCESSED)
        first_line = offset // self.costs.cache_line_size
        last_line = (offset + max(length, 1) - 1) // self.costs.cache_line_size
        out.lines_touched = last_line - first_line + 1
        return out

    def write_bytes(self, vma: VMA, pidx: int, offset: int, data: bytes) -> None:
        """Mutate page contents (after :meth:`write_access` was serviced)."""
        arr, _ = vma.ensure_page(pidx)
        arr[offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def fill_pattern(self, vma: VMA, pidx: int, offset: int, length: int, seed: int) -> None:
        """Write a cheap deterministic pattern derived from ``seed``.

        Used by workloads so restored images can be verified byte-exactly
        without storing the expected data anywhere else.
        """
        arr, _ = vma.ensure_page(pidx)
        base = (seed * 2654435761 + vma.start + pidx * 977 + offset) & 0xFFFFFFFF
        vals = (np.arange(length, dtype=np.uint32) * 167 + base) & 0xFF
        arr[offset : offset + length] = vals.astype(np.uint8)

    # -- tracking --------------------------------------------------------
    def protect_for_tracking(self, vma_names: Optional[List[str]] = None) -> int:
        """Arm incremental dirty tracking: write-protect and clean pages.

        Returns the number of pages armed.  Mirrors the ``mprotect`` sweep
        a user-level incremental checkpointer performs at the start of
        every interval, and the PTE sweep a system-level one performs.
        """
        armed = 0
        for vma in self._tracked(vma_names):
            present = (vma.flags & PageFlag.PRESENT) != 0
            vma.flags[present] |= PageFlag.TRACK_WP
            vma.flags[present] &= ~np.uint8(PageFlag.DIRTY)
            vma.flags &= ~np.uint8(PageFlag.UNPROT)
            vma.tracking_armed = True
            armed += int(present.sum())
        return armed

    def clear_tracking(self, vma_names: Optional[List[str]] = None) -> None:
        """Disarm tracking without touching dirty bits."""
        for vma in self._tracked(vma_names):
            vma.flags &= ~np.uint8(PageFlag.TRACK_WP)
            vma.tracking_armed = False

    def dirty_page_count(self, vma_names: Optional[List[str]] = None) -> int:
        """Resident pages currently marked dirty."""
        return int(
            sum(len(v.dirty_pages()) for v in self._tracked(vma_names))
        )

    def _tracked(self, vma_names: Optional[List[str]]) -> List[VMA]:
        if vma_names is None:
            return [v for v in self.vmas if v.prot & Prot.WRITE]
        return [self.vma(n) for n in vma_names]

    # -- fork -------------------------------------------------------------
    def fork(self) -> "AddressSpace":
        """Duplicate this address space with copy-on-write semantics.

        Private pages are shared read-only (COW bit set on both sides);
        shared VMAs keep pointing at the same page arrays.  This is the
        machinery behind the concurrent "Checkpoint" mechanism [5]: the
        parent keeps running while a helper saves the frozen child image,
        paying a page copy only for pages the parent rewrites meanwhile.
        """
        child = AddressSpace(self.costs)
        child._next_addr = self._next_addr
        child.generation = self.generation + 1
        for vma in self.vmas:
            cv = VMA(
                vma.name,
                vma.start,
                vma.npages,
                vma.prot,
                vma.kind,
                vma.page_size,
                shared=vma.shared,
                file_path=vma.file_path,
                shm_key=vma.shm_key,
            )
            cv.flags = vma.flags.copy()
            if vma.shared:
                cv.pages = vma.pages  # genuinely shared object
            else:
                cv.pages = dict(vma.pages)  # share page arrays, COW both
                present = (vma.flags & PageFlag.PRESENT) != 0
                vma.flags[present] |= PageFlag.COW
                cv.flags[present] |= PageFlag.COW
            child._attach(cv)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AddressSpace vmas={len(self.vmas)} gen={self.generation}>"
