"""Loadable kernel modules vs static-kernel extensions.

Table 1's last column records whether each surveyed package ships as a
kernel module.  The paper: "often it is possible to write most of the
code as kernel module.  This will provide portability and modularity and
will help during the development and debugging phases because a module
can be loaded and unloaded dynamically."

:class:`KernelModule` subclasses register system calls, device nodes,
/proc entries, and kernel signals on load, and must remove all of them on
unload.  Static extensions (VMADump, EPCKPT, Software Suspend,
Checkpoint) use :func:`install_static` instead: same registrations, but
irreversible -- the kernel would need to be rebuilt.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..errors import RegistryError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

__all__ = ["KernelModule", "install_static"]


class KernelModule:
    """Base class for loadable kernel modules.

    Subclasses override :meth:`on_load`; registrations made through the
    ``add_*`` helpers are reverted automatically by :meth:`unload`.
    """

    #: Module name as it would appear in ``lsmod``.
    name: str = "module"

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None
        self._undo: List[Callable[[], None]] = []
        self.loaded = False

    # -- registration helpers (auto-undone on unload) --------------------
    def add_syscall(self, name: str, handler) -> None:
        """Register a new system call; removed on unload."""
        k = self._require_kernel()
        k.syscalls.register(name, handler)
        self._undo.append(lambda: k.syscalls.unregister(name))

    def add_device(self, node) -> None:
        """Create a /dev node; removed on unload."""
        k = self._require_kernel()
        k.vfs.register(node)
        self._undo.append(lambda: k.vfs.remove(node.path))

    def add_proc_entry(self, entry) -> None:
        """Create a /proc entry; removed on unload."""
        k = self._require_kernel()
        k.vfs.register(entry)
        self._undo.append(lambda: k.vfs.remove(entry.path))

    def add_kernel_signal(self, sig, action, label: str = "") -> None:
        """Add a new kernel signal with a kernel-mode default action."""
        k = self._require_kernel()
        k.add_kernel_signal(sig, action, label=label)
        self._undo.append(lambda: k.remove_kernel_signal(sig))

    def _require_kernel(self) -> "Kernel":
        if self.kernel is None:
            raise RegistryError(f"module {self.name!r} is not loaded")
        return self.kernel

    # -- lifecycle --------------------------------------------------------
    def load(self, kernel: "Kernel") -> "KernelModule":
        """insmod: attach to ``kernel`` and perform registrations."""
        if self.loaded:
            raise RegistryError(f"module {self.name!r} already loaded")
        if self.name in kernel.modules:
            raise RegistryError(f"a module named {self.name!r} is already loaded")
        self.kernel = kernel
        self.on_load()
        kernel.modules[self.name] = self
        self.loaded = True
        return self

    def unload(self) -> None:
        """rmmod: revert every registration."""
        if not self.loaded:
            raise RegistryError(f"module {self.name!r} is not loaded")
        for undo in reversed(self._undo):
            undo()
        self._undo.clear()
        self.kernel.modules.pop(self.name, None)
        self.loaded = False
        self.kernel = None

    def on_load(self) -> None:
        """Subclass hook: perform registrations here."""
        raise NotImplementedError


def install_static(kernel: "Kernel", name: str, setup: Callable[["Kernel"], None]) -> None:
    """Compile an extension into the static kernel (irreversible).

    Used by the VMADump/EPCKPT/Software-Suspend/Checkpoint models, which
    the paper notes are "implemented in the static part of the kernel" --
    hence their Table 1 "kernel module: no".
    """
    if name in kernel.builtin_extensions:
        raise RegistryError(f"static extension {name!r} already installed")
    setup(kernel)
    kernel.builtin_extensions.append(name)
