"""Simulated POSIX-style signals, including checkpoint-specific ones.

The paper's taxonomy leans heavily on signal semantics:

* User-level packages hook *general-purpose* signals (SIGALRM for
  libckpt/Esky timers, SIGUSR1/SIGUSR2/SIGUNUSED for Condor) and run the
  checkpoint in a **user-mode handler**, which (a) is deferred until the
  kernel next returns to user mode in that task's context, (b) pays user
  frame setup + ``sigreturn``, and (c) is unsafe if it calls non-reentrant
  libc functions (``malloc``/``free``) while the interrupted code was
  inside them.
* Kernel-mode-signal packages (EPCKPT, CHPOX's SIGSYS, Software Suspend's
  freeze signal) add a **new signal whose default action runs in the
  kernel** -- no user frame, but delivery is still deferred to the next
  kernel->user transition of the target task, so latency depends on system
  load (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..errors import SignalError

if TYPE_CHECKING:  # pragma: no cover
    from .process import Task

__all__ = ["Sig", "HandlerKind", "SignalHandler", "SignalState"]


class Sig(IntEnum):
    """Signal numbers.  31 and below are standard; above are the "new
    kernel signals" the surveyed system-level packages introduce."""

    SIGKILL = 9
    SIGUSR1 = 10
    SIGSEGV = 11
    SIGUSR2 = 12
    SIGALRM = 14
    SIGCHLD = 17
    SIGCONT = 18
    SIGSTOP = 19
    SIGUNUSED = 30
    SIGSYS = 31  # CHPOX hooks this one
    # -- signals added to the kernel by checkpoint packages --
    SIGCKPT = 33  # EPCKPT-style dedicated checkpoint signal
    SIGFREEZE = 34  # Software Suspend's freeze-everything signal


class HandlerKind(str, Enum):
    """How a signal is acted upon when delivered."""

    DEFAULT = "default"  # built-in default action (term/ignore/stop)
    IGNORE = "ignore"
    USER = "user"  # user-mode handler: frame setup + deferred + sigreturn
    KERNEL = "kernel"  # kernel-mode action: runs in kernel on delivery


@dataclass
class SignalHandler:
    """Registered disposition for one signal.

    ``program_factory`` (USER handlers) builds a generator of ops to run in
    user mode; ``kernel_action`` (KERNEL handlers) is invoked inside the
    kernel and may itself start a kernel activity (e.g. a checkpoint).
    ``uses_non_reentrant`` marks handlers that call ``malloc``/``free`` --
    the hazard the paper warns about for user-level checkpointing.
    """

    kind: HandlerKind
    program_factory: Optional[Callable[["Task"], object]] = None
    kernel_action: Optional[Callable[["Task"], None]] = None
    uses_non_reentrant: bool = False
    label: str = ""


#: Signals whose built-in default action terminates the process.
_DEFAULT_FATAL = {Sig.SIGKILL, Sig.SIGSEGV, Sig.SIGUSR1, Sig.SIGUSR2, Sig.SIGALRM, Sig.SIGSYS}
_DEFAULT_IGNORED = {Sig.SIGCHLD, Sig.SIGCONT, Sig.SIGUNUSED}
_DEFAULT_STOP = {Sig.SIGSTOP, Sig.SIGFREEZE}


def default_action(sig: Sig) -> str:
    """Built-in default for ``sig``: ``"terminate"``/``"ignore"``/``"stop"``."""
    if sig in _DEFAULT_FATAL:
        return "terminate"
    if sig in _DEFAULT_STOP:
        return "stop"
    if sig in _DEFAULT_IGNORED:
        return "ignore"
    return "terminate"


@dataclass
class SignalState:
    """Per-task signal bookkeeping, part of the checkpointable state.

    The paper notes that a user-level checkpointer must call
    ``sigpending()`` (one more syscall) to learn what is recorded here,
    while the kernel reads it directly from the task structure.
    """

    pending: List[Sig] = field(default_factory=list)
    blocked: set = field(default_factory=set)
    handlers: Dict[Sig, SignalHandler] = field(default_factory=dict)
    #: Count of reentrancy hazards observed (user handler using malloc/free
    #: delivered while the main program was inside malloc/free).
    reentrancy_hazards: int = 0

    def post(self, sig: Sig) -> None:
        """Queue ``sig`` (idempotent for already-pending classic signals)."""
        if sig not in self.pending:
            self.pending.append(sig)

    def take_deliverable(self) -> Optional[Sig]:
        """Pop the first pending, unblocked signal (None if there is none).

        SIGKILL and SIGSTOP cannot be blocked, matching POSIX.
        """
        for i, sig in enumerate(self.pending):
            if sig in (Sig.SIGKILL, Sig.SIGSTOP) or sig not in self.blocked:
                return self.pending.pop(i)
        return None

    def has_deliverable(self) -> bool:
        """Whether any pending signal could be delivered right now."""
        return any(
            sig in (Sig.SIGKILL, Sig.SIGSTOP) or sig not in self.blocked
            for sig in self.pending
        )

    def disposition(self, sig: Sig) -> SignalHandler:
        """Effective handler for ``sig`` (synthesizing DEFAULT if unset)."""
        h = self.handlers.get(sig)
        if h is not None:
            return h
        return SignalHandler(kind=HandlerKind.DEFAULT)

    def register(self, sig: Sig, handler: SignalHandler) -> None:
        """Install a handler (``sigaction`` equivalent)."""
        if sig in (Sig.SIGKILL, Sig.SIGSTOP):
            raise SignalError(f"{sig.name} cannot be caught")
        self.handlers[sig] = handler

    def snapshot(self) -> dict:
        """Serializable view (for checkpoint images)."""
        return {
            "pending": [int(s) for s in self.pending],
            "blocked": sorted(int(s) for s in self.blocked),
            "handlers": {
                int(sig): h.label or h.kind.value for sig, h in self.handlers.items()
            },
        }
