"""A small virtual file system: regular files, /dev nodes, /proc entries.

The surveyed kernel-thread mechanisms expose three user-level interfaces
(Section 4.1 of the paper), all of which exist here:

1. a **device file** in ``/dev`` driven with ``read``/``write``/``ioctl``
   (CRAK, BLCR, ZAP);
2. a **/proc pseudo-file** driven with ``read``/``write`` (CHPOX
   registration, PsncR/C);
3. a **new system call** (VMADump, EPCKPT, Checkpoint) -- that path lives
   in :mod:`repro.simkernel.syscalls`.

Regular files also carry the attributes that make user-level
checkpointing expensive to reconstruct (per-descriptor offsets fetched
with ``lseek``) and the failure modes UCLiK fixes (deleted-but-open
files whose contents must be rescued into the checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import SyscallError

__all__ = ["File", "RegularFile", "DeviceNode", "ProcEntry", "SocketFile", "VFS"]


class File:
    """Base class for everything reachable by ``open``."""

    kind = "file"

    def __init__(self, path: str) -> None:
        self.path = path
        #: Open reference count (descriptors across all tasks).
        self.refcount = 0
        #: Unlinked while still open (UCLiK's deleted-file case).
        self.deleted = False

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` from ``offset``."""
        raise SyscallError(f"{self.path}: not readable")

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; returns bytes written."""
        raise SyscallError(f"{self.path}: not writable")

    def ioctl(self, task: Any, cmd: str, arg: Any) -> Any:
        """Device control; only device nodes implement it."""
        raise SyscallError(f"{self.path}: ioctl on non-device")

    @property
    def size(self) -> int:
        """Current length in bytes (0 for pseudo files)."""
        return 0


class RegularFile(File):
    """An ordinary file with real contents (bytearray-backed)."""

    kind = "regular"

    def __init__(self, path: str, content: bytes = b"") -> None:
        super().__init__(path)
        self.content = bytearray(content)

    def read(self, offset: int, nbytes: int) -> bytes:
        return bytes(self.content[offset : offset + nbytes])

    def write(self, offset: int, data: bytes) -> int:
        end = offset + len(data)
        if end > len(self.content):
            self.content.extend(b"\x00" * (end - len(self.content)))
        self.content[offset:end] = data
        return len(data)

    @property
    def size(self) -> int:
        return len(self.content)


class DeviceNode(File):
    """A character device in ``/dev`` whose behaviour is a set of callbacks.

    Checkpoint modules (CRAK, BLCR) create one of these and accept the pid
    of the process to checkpoint as the ``ioctl`` argument -- exactly the
    interface the paper describes.
    """

    kind = "device"

    def __init__(
        self,
        path: str,
        on_ioctl: Optional[Callable[[Any, str, Any], Any]] = None,
        on_read: Optional[Callable[[int, int], bytes]] = None,
        on_write: Optional[Callable[[int, bytes], int]] = None,
    ) -> None:
        super().__init__(path)
        self._on_ioctl = on_ioctl
        self._on_read = on_read
        self._on_write = on_write

    def ioctl(self, task: Any, cmd: str, arg: Any) -> Any:
        if self._on_ioctl is None:
            raise SyscallError(f"{self.path}: device has no ioctl handler")
        return self._on_ioctl(task, cmd, arg)

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._on_read is None:
            return b""
        return self._on_read(offset, nbytes)

    def write(self, offset: int, data: bytes) -> int:
        if self._on_write is None:
            raise SyscallError(f"{self.path}: device not writable")
        return self._on_write(offset, data)


class ProcEntry(File):
    """A ``/proc`` pseudo-file backed by read/write callbacks.

    CHPOX registers target pids by writing them here; PsncR/C exposes its
    control entry the same way.
    """

    kind = "proc"

    def __init__(
        self,
        path: str,
        on_read: Optional[Callable[[], bytes]] = None,
        on_write: Optional[Callable[[bytes], int]] = None,
    ) -> None:
        super().__init__(path)
        self._on_read = on_read
        self._on_write = on_write

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._on_read is None:
            return b""
        data = self._on_read()
        return data[offset : offset + nbytes]

    def write(self, offset: int, data: bytes) -> int:
        if self._on_write is None:
            raise SyscallError(f"{self.path}: proc entry not writable")
        return self._on_write(data)


class SocketFile(File):
    """A connected socket endpoint.

    Sockets are the canonical *kernel-persistent state* of Section 3: they
    exist in kernel tables, not in the process image, so a user-level
    checkpointer cannot recreate them on restart; ZAP-style virtualization
    records the pod-relative endpoint so the restore path can rebuild it.
    """

    kind = "socket"

    def __init__(self, path: str, local_port: int, remote_addr: str) -> None:
        super().__init__(path)
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.connected = True

    def read(self, offset: int, nbytes: int) -> bytes:
        return b""  # payloads are out of scope; identity is what matters

    def write(self, offset: int, data: bytes) -> int:
        return len(data)


class VFS:
    """Path namespace plus registration helpers for modules."""

    def __init__(self) -> None:
        self._files: Dict[str, File] = {}

    def create(self, path: str, content: bytes = b"") -> RegularFile:
        """Create (or truncate) a regular file."""
        f = RegularFile(path, content)
        self._files[path] = f
        return f

    def register(self, file: File) -> File:
        """Install an externally built file object (device, proc entry)."""
        self._files[file.path] = file
        return file

    def remove(self, path: str) -> None:
        """Remove a namespace entry (module unload)."""
        self._files.pop(path, None)

    def lookup(self, path: str) -> File:
        """Resolve a path or raise."""
        try:
            return self._files[path]
        except KeyError:
            raise SyscallError(f"no such file: {path}") from None

    def exists(self, path: str) -> bool:
        """Whether the path resolves."""
        return path in self._files

    def unlink(self, path: str) -> File:
        """Remove the name; the object stays alive while descriptors hold it."""
        f = self.lookup(path)
        f.deleted = True
        del self._files[path]
        return f

    def paths(self) -> list:
        """Sorted list of all paths (diagnostics)."""
        return sorted(self._files)
