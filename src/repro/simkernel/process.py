"""Simulated tasks (processes and kernel threads).

A :class:`Task` carries exactly the state the paper enumerates as "every
data structure relevant to a process's state": registers, memory regions
(the :class:`~repro.simkernel.memory.AddressSpace`), file descriptors,
signal state, credentials, and scheduling parameters.  System-level
checkpointers read these fields directly; user-level ones must recover the
same information through system calls (``sbrk``, ``lseek``,
``sigpending`` ...) at boundary-crossing cost -- that asymmetry is
experiment E3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from ..errors import SimulationError
from .memory import AddressSpace
from .signals import SignalState

if TYPE_CHECKING:  # pragma: no cover
    from .vfs import File

__all__ = [
    "TaskState",
    "SchedPolicy",
    "Mode",
    "Registers",
    "FileDescriptor",
    "Accounting",
    "Task",
    "ProgramFactory",
]

#: Builds the op generator for a task, resuming at ``start_step`` main-program
#: ops already completed (restart support).
ProgramFactory = Callable[["Task", int], Generator]


class TaskState(str, Enum):
    """Lifecycle states (Linux-flavoured)."""

    READY = "ready"  # runnable, waiting for a CPU
    RUNNING = "running"
    SLEEPING = "sleeping"  # blocked (I/O, sleep, waiting)
    STOPPED = "stopped"  # SIGSTOP / frozen for checkpoint or suspend
    ZOMBIE = "zombie"  # exited, not yet reaped
    DEAD = "dead"


class SchedPolicy(str, Enum):
    """Scheduling classes.

    ``CKPT`` is the paper's proposed "new priority ... introduced in order
    to be sure nobody will interrupt the kernel thread": it outranks even
    SCHED_FIFO tasks.
    """

    OTHER = "other"  # time sharing with dynamic priority decay
    FIFO = "fifo"  # real-time, run to completion at its rt_prio
    RR = "rr"  # real-time round robin
    CKPT = "ckpt"  # above FIFO: dedicated checkpoint class


class Mode(str, Enum):
    """Privilege mode the task's current op executes in."""

    USER = "user"
    KERNEL = "kernel"


@dataclass
class Registers:
    """Architectural register file (deterministic, checkpoint-verifiable).

    ``pc`` advances once per completed op; ``gpr`` entries are scrambled
    deterministically so a restored register file can be compared
    bit-for-bit against the original.
    """

    pc: int = 0x1000
    sp: int = 0x7FFF_F000
    gpr: List[int] = field(default_factory=lambda: [0] * 8)

    def advance(self, step: int) -> None:
        """Deterministically evolve the register file after an op."""
        self.pc += 4
        self.gpr[step % 8] = (self.gpr[step % 8] * 6364136223846793005 + step) & (
            2**64 - 1
        )

    def snapshot(self) -> dict:
        """Serializable copy."""
        return {"pc": self.pc, "sp": self.sp, "gpr": list(self.gpr)}

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Registers":
        """Rebuild from :meth:`snapshot` output."""
        return cls(pc=snap["pc"], sp=snap["sp"], gpr=list(snap["gpr"]))


@dataclass
class FileDescriptor:
    """An open file description: object reference plus position/flags.

    The positioning ``offset`` is the datum a user-level checkpointer must
    fetch with ``lseek()`` per descriptor, and the attribute the kernel
    reads for free.
    """

    fd: int
    file: "File"
    offset: int = 0
    flags: int = 0
    cloexec: bool = False

    def snapshot(self) -> dict:
        """Serializable view used in checkpoint images."""
        return {
            "fd": self.fd,
            "path": self.file.path,
            "kind": self.file.kind,
            "offset": self.offset,
            "flags": self.flags,
            "cloexec": self.cloexec,
        }


@dataclass
class Accounting:
    """Per-task cost/observable counters the experiments report on."""

    cpu_ns: int = 0
    user_ns: int = 0
    kernel_ns: int = 0
    syscalls: int = 0
    mode_switches: int = 0
    page_faults: int = 0
    cow_copies: int = 0
    tracking_faults: int = 0
    signals_received: int = 0
    tlb_refill_ns: int = 0
    interrupts_absorbed: int = 0
    context_switches: int = 0
    stall_ns: int = 0  # time stopped for checkpointing
    main_steps: int = 0


class Task:
    """A simulated process or kernel thread.

    Parameters
    ----------
    pid:
        Process identifier (kernel-persistent state: restoring it on
        another machine requires either luck or virtualization).
    name:
        Diagnostic name.
    mm:
        Address space; kernel threads pass ``None`` and borrow whatever
        page tables are live (the TLB discussion of Section 4.1).
    program_factory:
        Builds this task's op generator; also used to resume after
        restart.
    is_kthread:
        Kernel threads run all ops in kernel mode, are never signalled
        with user handlers, and default to SCHED_FIFO.
    """

    def __init__(
        self,
        pid: int,
        name: str,
        mm: Optional[AddressSpace],
        program_factory: Optional[ProgramFactory] = None,
        is_kthread: bool = False,
        policy: SchedPolicy = SchedPolicy.OTHER,
        static_prio: int = 120,
        rt_prio: int = 0,
        uid: int = 1000,
        start_step: int = 0,
    ) -> None:
        self.pid = pid
        self.name = name
        self.mm = mm
        self.is_kthread = is_kthread
        self.program_factory = program_factory
        self.state = TaskState.READY
        self.mode = Mode.KERNEL if is_kthread else Mode.USER
        self.policy = policy if not is_kthread else (
            policy if policy != SchedPolicy.OTHER else SchedPolicy.FIFO
        )
        self.static_prio = static_prio
        self.rt_prio = rt_prio
        self.uid = uid
        self.registers = Registers()
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0..2 notionally stdio
        self.signals = SignalState()
        self.acct = Accounting()
        self.exit_code: Optional[int] = None
        self.parent: Optional["Task"] = None
        self.children: List["Task"] = []
        #: Remaining quantum in scheduler ticks (time-sharing class).
        self.counter_ticks: int = 0
        #: Pages the task must re-walk after a TLB flush hit its CPU.
        self.tlb_cold_pages: int = 0
        #: Generator stack: main program at the bottom, signal handlers
        #: and checkpoint activities pushed on top.  Each entry is
        #: ``(generator, mode)`` -- a kernel-mode signal action or
        #: checkpoint capture runs its ops in kernel mode even though it
        #: executes in this task's context (the paper's "executed in
        #: kernel mode behind the process that has to be checkpointed").
        #: Each entry is a mutable ``[generator, mode, pending_send]``.
        self._stack: List[list] = []
        #: Frame that yielded the op currently in flight (send routing).
        self._yield_frame: Any = None
        #: True while the current op is inside a non-reentrant libc region.
        self.in_non_reentrant = False
        #: Number of *main-program* ops completed (restart cursor).
        self.main_steps = 0
        #: Set by the kernel when a checkpoint stop is requested.
        self.stopped_for_checkpoint = False
        #: Arbitrary per-mechanism annotations (shadow state, pods, ...).
        self.annotations: Dict[str, Any] = {}
        #: Opaque owner node id (set by the cluster layer).
        self.node_id: Optional[int] = None
        #: Set while the kernel has asked this task to stop at the next op
        #: boundary (checkpoint freeze).
        self.stop_requested = False
        #: A write op that faulted into a user-level tracking handler and
        #: must be retried once the handler returns.
        self.retry_op: Any = None
        #: Per-page expansion of multi-page memory ops, consumed before
        #: the generator is resumed.
        self.op_queue: deque = deque()
        if program_factory is not None:
            base_mode = Mode.KERNEL if is_kthread else Mode.USER
            self._stack.append([program_factory(self, start_step), base_mode, None])
            self.main_steps = start_step
            self.acct.main_steps = start_step

    # ------------------------------------------------------------------
    def alloc_fd(self) -> int:
        """Allocate the next file descriptor number."""
        fd = self._next_fd
        self._next_fd += 1
        return fd

    def install_fd(self, fdesc: FileDescriptor) -> None:
        """Attach an open file description (used by open/dup/restart)."""
        self.fds[fdesc.fd] = fdesc
        self._next_fd = max(self._next_fd, fdesc.fd + 1)

    # -- program execution machinery -------------------------------------
    @property
    def has_program(self) -> bool:
        """Whether any work remains (frames, queued or retry ops)."""
        return bool(self._stack) or bool(self.op_queue) or self.retry_op is not None

    @property
    def in_handler(self) -> bool:
        """Whether a pushed (signal/checkpoint) frame is executing."""
        return len(self._stack) > 1

    def push_frame(self, gen: Generator, mode: Mode = Mode.USER) -> None:
        """Push a handler/activity generator on top of the program.

        ``mode`` selects the privilege level the frame's ops execute at:
        user signal handlers push USER frames, kernel-mode signal actions
        and in-context checkpoint captures push KERNEL frames.
        """
        self._stack.append([gen, mode, None])

    def top_mode(self) -> Mode:
        """Privilege mode the next op would execute at."""
        if self.is_kthread:
            return Mode.KERNEL
        if self._stack:
            return self._stack[-1][1]
        return Mode.USER

    def next_op(self):
        """Advance the top generator and return its next op (or None).

        Exhausted frames are popped; ``None`` means the task has no more
        work (main program returned).  Sets :attr:`mode` to the executing
        frame's mode.
        """
        # Ordering: a pushed handler frame runs to completion first; then
        # a faulted op is retried; then queued continuation segments;
        # then the program generator resumes.  Pending send-values are
        # stored *per frame* (a syscall may push a new frame before its
        # result is delivered; the result belongs to the caller's frame,
        # not the pushed one).
        while True:
            if not self.in_handler:
                if self.retry_op is not None:
                    op = self.retry_op
                    self.retry_op = None
                    self._yield_frame = None
                    self.mode = self._stack[-1][1] if self._stack else Mode.USER
                    return op
                if self.op_queue:
                    op = self.op_queue.popleft()
                    self._yield_frame = None
                    self.mode = self._stack[-1][1] if self._stack else Mode.USER
                    return op
            if not self._stack:
                return None
            frame = self._stack[-1]
            gen, mode, send_value = frame
            frame[2] = None
            try:
                # Plain iterators are accepted as programs too (results
                # sent into them are dropped -- they cannot receive).
                if hasattr(gen, "send"):
                    op = gen.send(send_value)
                else:
                    op = next(gen)
            except StopIteration:
                self._stack.pop()
                continue
            self._yield_frame = frame
            self.mode = mode
            return op

    def feed_result(self, value: Any) -> None:
        """Deliver an op result to the frame that yielded the op."""
        frame = getattr(self, "_yield_frame", None)
        if frame is not None:
            frame[2] = value

    def completed_op(self, count_main: bool = True) -> None:
        """Record completion of one op.

        Advances the register file always; advances the main-step restart
        cursor only for ops that (a) belong to the main program (not a
        pushed handler frame), (b) are not continuation segments of a
        split multi-page write, and (c) are not a faulted attempt that
        will be retried -- callers pass ``count_main=False`` for (b)/(c).
        """
        if count_main and not self.in_handler:
            self.main_steps += 1
            self.acct.main_steps = self.main_steps
        self.registers.advance(self.main_steps)

    def rebuild_program(self, start_step: int) -> None:
        """Reset the generator stack from the factory at ``start_step``
        (restart path)."""
        if self.program_factory is None:
            raise SimulationError(f"task {self.name!r} has no program factory")
        base_mode = Mode.KERNEL if self.is_kthread else Mode.USER
        self._stack = [[self.program_factory(self, start_step), base_mode, None]]
        self._yield_frame = None
        self.retry_op = None
        self.op_queue.clear()
        self.main_steps = start_step

    # ------------------------------------------------------------------
    def is_realtime(self) -> bool:
        """FIFO/RR/CKPT tasks preempt all time-sharing tasks."""
        return self.policy in (SchedPolicy.FIFO, SchedPolicy.RR, SchedPolicy.CKPT)

    def effective_prio(self) -> int:
        """Lower is more urgent.  CKPT < FIFO/RR (by rt_prio) < OTHER."""
        if self.policy == SchedPolicy.CKPT:
            return -1000 - self.rt_prio
        if self.policy in (SchedPolicy.FIFO, SchedPolicy.RR):
            return -self.rt_prio
        # Time sharing: dynamic priority improves (decreases) as the task
        # accumulates unused quantum, mirroring counter-based decay.
        return self.static_prio - min(self.counter_ticks, 20)

    def alive(self) -> bool:
        """Neither exited nor reaped."""
        return self.state not in (TaskState.ZOMBIE, TaskState.DEAD)

    def runnable(self) -> bool:
        """Eligible for CPU."""
        return self.state in (TaskState.READY, TaskState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "kthread" if self.is_kthread else "proc"
        return f"<Task {self.pid} {self.name!r} {kind} {self.state.value}>"
