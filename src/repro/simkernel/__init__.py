"""Simulated Linux-like operating-system substrate.

This subpackage is the foundation of the reproduction: a deterministic
discrete-event kernel with processes, virtual memory (page protection,
dirty tracking, COW), signals with user/kernel delivery semantics, a
multiprocessor scheduler (time-sharing + real-time + the paper's proposed
checkpoint class), system calls with privilege-boundary costs, kernel
threads with borrowed page tables, a VFS with /dev and /proc, and
loadable kernel modules.

Quick start::

    from repro.simkernel import Kernel, ops

    k = Kernel(ncpus=2, seed=1)

    def program(task, start_step):
        for i in range(start_step, 100):
            yield ops.Compute(ns=10_000)
            yield ops.MemWrite(vma="heap", offset=i * 4096, nbytes=512, seed=i)

    t = k.spawn_process("app", program)
    k.run_until_exit(t)
"""

from . import ops
from .costs import CostModel, DEFAULT_COSTS, NS_PER_MS, NS_PER_S, NS_PER_US
from .engine import Completion, Engine
from .kernel import Kernel
from .memory import AddressSpace, PageFlag, Prot, VMA, VMAKind
from .modules import KernelModule, install_static
from .parallel import (
    Envelope,
    LocalShardGroup,
    ParallelError,
    ShardContext,
    ShardGroup,
    WindowReply,
    WindowStats,
    derive_lookahead,
    run_windows,
)
from .process import (
    FileDescriptor,
    Mode,
    Registers,
    SchedPolicy,
    Task,
    TaskState,
)
from .scheduler import CPU, Scheduler
from .signals import HandlerKind, Sig, SignalHandler, SignalState
from .syscalls import SyscallResult, SyscallTable
from .vfs import DeviceNode, File, ProcEntry, RegularFile, SocketFile, VFS

__all__ = [
    "ops",
    "CostModel",
    "DEFAULT_COSTS",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "Completion",
    "Engine",
    "Kernel",
    "AddressSpace",
    "PageFlag",
    "Prot",
    "VMA",
    "VMAKind",
    "KernelModule",
    "install_static",
    "FileDescriptor",
    "Mode",
    "Registers",
    "SchedPolicy",
    "Task",
    "TaskState",
    "CPU",
    "Scheduler",
    "HandlerKind",
    "Sig",
    "SignalHandler",
    "SignalState",
    "SyscallResult",
    "SyscallTable",
    "DeviceNode",
    "File",
    "ProcEntry",
    "RegularFile",
    "SocketFile",
    "VFS",
    "Envelope",
    "ShardContext",
    "ShardGroup",
    "LocalShardGroup",
    "WindowReply",
    "WindowStats",
    "ParallelError",
    "derive_lookahead",
    "run_windows",
]
