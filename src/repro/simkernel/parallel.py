"""Conservative time-windowed parallel simulation engine.

PR 4 pushed one core to ~875k events/s and 65,536 nodes; the next order
of magnitude needs parallelism, not more micro-optimization.  The
structural observation (PAPER.md section 5, and both petascale C/R
studies in PAPERS.md) is that machines in a cluster interact only
through the shared link and the storage servers -- channels with
*nonzero* propagation and service latencies.  That latency floor is
exactly the **lookahead** a conservative parallel discrete-event engine
needs: if every cross-machine interaction takes at least ``L``
nanoseconds to arrive, then a machine's events inside the window
``[T, T + L)`` can only depend on messages that were already exchanged
before ``T``.  Shards may therefore advance through the window without
hearing from each other at all.

The design here:

* machines (and their node-local events) are partitioned into
  **shards**; each shard owns a private :class:`~repro.simkernel.Engine`
  (its own timer wheel, clock, metrics registry);
* all shards advance in **lockstep windows**.  The window start is the
  global minimum pending event time (idle virtual time is skipped, so a
  fleet whose next failure is minutes away costs no barriers), and the
  window width is bounded by the lookahead;
* anything that crosses a machine boundary -- link deliveries, storage
  requests and acks, fleet failure-cohort notifications -- travels as
  an :class:`Envelope` through the shard's outbox and is exchanged at
  the **window barrier**.  Crucially this discipline is uniform: even a
  single-shard run routes every cross-machine send through the barrier,
  so the event schedule a shard executes is *identical* whether it runs
  alone or next to fifteen siblings;
* each shard sorts its incoming envelopes by a **canonical key**
  ``(deliver_at_ns, kind, canonical-JSON payload, src_shard)`` before
  scheduling them, so the merge is independent of arrival order, worker
  count and OS scheduling.

Determinism contract (the hard gate): a scenario built from
shard-invariant state -- per-node counter-based RNG streams (see
:meth:`repro.cluster.FailureModel.draw_ttf_indexed`), no reads of
another shard's memory, all cross-machine sends through
:meth:`ShardContext.send` with ``delay_ns >= lookahead_ns`` -- produces
byte-identical folded ``repro.obs`` exports for 1, 2, 4, ... shards.
``tests/runner/test_parallel.py`` asserts exactly that, property-based
over random seeds and topologies.

This module is backend-agnostic: :func:`run_windows` drives any
:class:`ShardGroup` (the in-process reference group lives here; the
``ProcessPoolExecutor``-style persistent-worker group lives in
:mod:`repro.runner.parallel`).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs import MetricsRegistry
from .engine import Engine

__all__ = [
    "Envelope",
    "EnvelopeBatch",
    "ParallelError",
    "ShardContext",
    "ShardGroup",
    "LocalShardGroup",
    "WindowReply",
    "WindowStats",
    "derive_lookahead",
    "run_windows",
]


class ParallelError(SimulationError):
    """A conservative-window invariant was violated."""


def derive_lookahead(*latencies_ns: int) -> int:
    """The engine's lookahead: the minimum nonzero cross-shard latency.

    Callers pass every latency floor a cross-machine interaction can
    take -- link propagation, storage service floor -- and get back the
    largest window width that is still conservative.
    """
    floors = [int(x) for x in latencies_ns if x is not None]
    if not floors:
        raise ParallelError("lookahead needs at least one latency floor")
    lo = min(floors)
    if lo <= 0:
        raise ParallelError(f"lookahead must be positive, got {lo}")
    return lo


def _payload_key(payload: Any) -> str:
    """Canonical JSON of an envelope payload (the sort tiebreak)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Envelope:
    """One cross-shard event, exchanged at a window barrier.

    ``payload_key`` is the canonical JSON of the payload, computed once
    at send time; together with ``(deliver_at_ns, kind, src_shard)`` it
    makes the barrier merge order total and content-determined.
    """

    deliver_at_ns: int
    kind: str
    dst_shard: int
    src_shard: int
    payload: Dict[str, Any]
    payload_key: str

    @property
    def sort_key(self) -> Tuple[int, str, str, int]:
        """Canonical merge key: a pure function of envelope content."""
        return (self.deliver_at_ns, self.kind, self.payload_key,
                self.src_shard)


class EnvelopeBatch:
    """Columnar encoding of an envelope list: one struct-framed blob.

    The shared-memory transport ships a whole window's outbox as a
    single frame -- packed NumPy columns for the fixed-width fields
    (``deliver_at_ns``/``src_shard``/``dst_shard``, a per-frame kind
    table with ``uint16`` indices) plus a side arena holding the
    canonical-JSON payload keys back to back.  Nothing is pickled:
    the payload *is* its canonical JSON (computed once at send time for
    the sort key), so the receiver rebuilds each payload with one
    ``json.loads``.  This is also the contract the encoding imposes:
    envelope payloads must round-trip canonical JSON, which every
    payload already satisfies by construction of ``payload_key``
    (string-keyed dicts of JSON scalars/containers).

    Routing happens on the columns -- :meth:`select` slices rows with a
    boolean mask and :meth:`concat` re-merges frames -- so the barrier
    driver never materializes per-envelope objects; only the receiving
    shard does, immediately before the canonical-order delivery sort.
    """

    _HDR = struct.Struct("<IIII")  # magic, n, kinds_nbytes, keys_nbytes
    _MAGIC = 0x53_48_4D_46  # "SHMF"

    __slots__ = ("deliver_at", "src_shard", "dst_shard", "kind_id",
                 "key_len", "kinds", "keys_blob")

    def __init__(self, deliver_at, src_shard, dst_shard, kind_id, key_len,
                 kinds: List[str], keys_blob: bytes) -> None:
        self.deliver_at = deliver_at
        self.src_shard = src_shard
        self.dst_shard = dst_shard
        self.kind_id = kind_id
        self.key_len = key_len
        self.kinds = kinds
        self.keys_blob = keys_blob

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of envelopes in the frame."""
        return len(self.deliver_at)

    @classmethod
    def from_envelopes(cls, envelopes: Sequence[Envelope]) -> "EnvelopeBatch":
        """Encode a list of envelopes into columns (the send side)."""
        n = len(envelopes)
        kinds = sorted({e.kind for e in envelopes})
        kid = {k: i for i, k in enumerate(kinds)}
        if len(kinds) > 0xFFFF:  # pragma: no cover - protocol bound
            raise ParallelError("too many envelope kinds for one frame")
        keys = [e.payload_key.encode("utf-8") for e in envelopes]
        return cls(
            deliver_at=np.fromiter((e.deliver_at_ns for e in envelopes),
                                   np.int64, n),
            src_shard=np.fromiter((e.src_shard for e in envelopes),
                                  np.int32, n),
            dst_shard=np.fromiter((e.dst_shard for e in envelopes),
                                  np.int32, n),
            kind_id=np.fromiter((kid[e.kind] for e in envelopes),
                                np.uint16, n),
            key_len=np.fromiter((len(k) for k in keys), np.uint32, n),
            kinds=kinds,
            keys_blob=b"".join(keys),
        )

    def to_envelopes(self) -> List[Envelope]:
        """Materialize ``Envelope`` objects (the delivery side).

        ``payload_key`` is the exact string the sender computed, so the
        canonical sort key -- and therefore the delivery schedule -- is
        bit-for-bit what the in-process path produces.
        """
        starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.key_len, out=starts[1:])
        blob = self.keys_blob
        out = []
        for i in range(self.n):
            key = bytes(blob[starts[i]:starts[i + 1]]).decode("utf-8")
            out.append(Envelope(
                deliver_at_ns=int(self.deliver_at[i]),
                kind=self.kinds[self.kind_id[i]],
                dst_shard=int(self.dst_shard[i]),
                src_shard=int(self.src_shard[i]),
                payload=json.loads(key),
                payload_key=key,
            ))
        return out

    # ------------------------------------------------------------------
    def select(self, mask) -> "EnvelopeBatch":
        """Row subset by boolean mask (copies; used for dst routing)."""
        starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(self.key_len, out=starts[1:])
        blob = self.keys_blob
        picked = np.flatnonzero(mask)
        keys = b"".join(bytes(blob[starts[i]:starts[i + 1]]) for i in picked)
        return EnvelopeBatch(
            deliver_at=self.deliver_at[picked],
            src_shard=self.src_shard[picked],
            dst_shard=self.dst_shard[picked],
            kind_id=self.kind_id[picked],
            key_len=self.key_len[picked],
            kinds=list(self.kinds),
            keys_blob=keys,
        )

    @classmethod
    def concat(cls, batches: Sequence["EnvelopeBatch"]) -> "EnvelopeBatch":
        """Merge frames (re-unifying their kind tables)."""
        kinds = sorted({k for b in batches for k in b.kinds})
        kid = {k: i for i, k in enumerate(kinds)}
        remapped = []
        for b in batches:
            lut = np.fromiter((kid[k] for k in b.kinds), np.uint16,
                              len(b.kinds)) if b.kinds else np.zeros(
                                  0, np.uint16)
            remapped.append(lut[b.kind_id] if b.n else b.kind_id)
        return cls(
            deliver_at=np.concatenate([b.deliver_at for b in batches]),
            src_shard=np.concatenate([b.src_shard for b in batches]),
            dst_shard=np.concatenate([b.dst_shard for b in batches]),
            kind_id=np.concatenate(remapped),
            key_len=np.concatenate([b.key_len for b in batches]),
            kinds=kinds,
            keys_blob=b"".join(bytes(b.keys_blob) for b in batches),
        )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Serialized frame size."""
        kinds_blob = json.dumps(self.kinds).encode("utf-8")
        return (self._HDR.size + 22 * self.n + len(kinds_blob)
                + len(self.keys_blob))

    def write_into(self, buf) -> int:
        """Serialize into a writable buffer; returns bytes written."""
        kinds_blob = json.dumps(self.kinds).encode("utf-8")
        n = self.n
        self._HDR.pack_into(buf, 0, self._MAGIC, n, len(kinds_blob),
                            len(self.keys_blob))
        off = self._HDR.size
        for arr in (self.deliver_at, self.src_shard, self.dst_shard,
                    self.key_len, self.kind_id):
            raw = np.ascontiguousarray(arr).tobytes()
            buf[off:off + len(raw)] = raw
            off += len(raw)
        buf[off:off + len(kinds_blob)] = kinds_blob
        off += len(kinds_blob)
        buf[off:off + len(self.keys_blob)] = bytes(self.keys_blob)
        return off + len(self.keys_blob)

    @classmethod
    def read_from(cls, buf) -> "EnvelopeBatch":
        """Deserialize a frame.

        The columns are zero-copy views into ``buf`` -- callers that
        outlive the buffer (ring slots are reused next window) must
        copy first; the transport passes a one-shot ``bytes`` snapshot.
        """
        magic, n, kinds_nbytes, keys_nbytes = cls._HDR.unpack_from(buf, 0)
        if magic != cls._MAGIC:
            raise ParallelError("bad envelope-frame magic")
        off = cls._HDR.size
        cols = []
        for dtype, width in ((np.int64, 8), (np.int32, 4), (np.int32, 4),
                             (np.uint32, 4), (np.uint16, 2)):
            cols.append(np.frombuffer(buf, dtype=dtype, count=n, offset=off))
            off += width * n
        kinds = json.loads(bytes(buf[off:off + kinds_nbytes]).decode("utf-8"))
        off += kinds_nbytes
        keys_blob = bytes(buf[off:off + keys_nbytes])
        deliver_at, src, dst, key_len, kind_id = cols
        return cls(deliver_at=deliver_at, src_shard=src, dst_shard=dst,
                   kind_id=kind_id, key_len=key_len, kinds=kinds,
                   keys_blob=keys_blob)


class ShardContext:
    """One shard's view of the parallel simulation.

    Owns the shard-local :class:`Engine`, the envelope outbox, and the
    registry of cross-shard message handlers.  Scenario code builds its
    machines against this context; everything that would touch another
    shard's machine goes through :meth:`send`.
    """

    def __init__(
        self,
        engine: Engine,
        shard_id: int,
        n_shards: int,
        lookahead_ns: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ParallelError("need at least one shard")
        if not 0 <= shard_id < n_shards:
            raise ParallelError(
                f"shard_id {shard_id} out of range for {n_shards} shards"
            )
        if lookahead_ns is not None and lookahead_ns <= 0:
            raise ParallelError("lookahead must be positive when set")
        self.engine = engine
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.lookahead_ns = lookahead_ns
        self._handlers: Dict[str, Callable[[Dict[str, Any]], None]] = {}
        self._outbox: List[Envelope] = []
        self._sent = engine.metrics.counter("parallel.sent")
        self._delivered = engine.metrics.counter("parallel.delivered")

    # ------------------------------------------------------------------
    def on(self, kind: str, handler: Callable[[Dict[str, Any]], None]) -> None:
        """Register the handler for envelope ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ParallelError(f"duplicate handler for envelope kind {kind!r}")
        self._handlers[kind] = handler

    def send(
        self,
        kind: str,
        payload: Dict[str, Any],
        delay_ns: int,
        dst_shard: int,
    ) -> None:
        """Queue a cross-machine event for barrier exchange.

        ``delay_ns`` must be at least the lookahead -- that is the
        conservative condition that makes in-window parallelism safe.
        The discipline is uniform: a send whose destination happens to
        live on this same shard *still* goes through the barrier, so
        event interleaving does not depend on the partitioning.
        """
        if self.lookahead_ns is None:
            raise ParallelError(
                "this context has no cross-shard channels (lookahead unset)"
            )
        if delay_ns < self.lookahead_ns:
            raise ParallelError(
                f"send delay {delay_ns} violates lookahead {self.lookahead_ns}"
            )
        if not 0 <= dst_shard < self.n_shards:
            raise ParallelError(f"dst_shard {dst_shard} out of range")
        self._sent.inc()
        self._outbox.append(Envelope(
            deliver_at_ns=self.engine.now_ns + int(delay_ns),
            kind=kind,
            dst_shard=int(dst_shard),
            src_shard=self.shard_id,
            payload=payload,
            payload_key=_payload_key(payload),
        ))

    # ------------------------------------------------------------------
    def run_window(self, end_ns: int) -> Tuple[List[Envelope], int]:
        """Advance the shard's engine to ``end_ns``; drain the outbox.

        Returns ``(outbox, processed)``.  The engine clock is left at
        ``end_ns`` even when the schedule drained earlier, so every
        shard observes the same barrier instant.
        """
        processed = self.engine.run(until_ns=end_ns)
        outbox, self._outbox = self._outbox, []
        return outbox, processed

    def deliver(self, envelopes: Sequence[Envelope]) -> None:
        """Schedule a barrier batch in canonical order.

        Sorting by :attr:`Envelope.sort_key` makes the local schedule a
        pure function of the batch's *contents* -- workers may hand the
        batch over in any order.
        """
        now = self.engine.now_ns
        for env in sorted(envelopes, key=lambda e: e.sort_key):
            if env.dst_shard != self.shard_id:
                raise ParallelError(
                    f"envelope for shard {env.dst_shard} delivered to "
                    f"shard {self.shard_id}"
                )
            handler = self._handlers.get(env.kind)
            if handler is None:
                raise ParallelError(f"no handler for envelope kind {env.kind!r}")
            if env.deliver_at_ns < now:
                raise ParallelError(
                    f"envelope {env.kind!r} arrives in the past "
                    f"({env.deliver_at_ns} < {now}): lookahead violated"
                )
            self.engine.at_anon(
                env.deliver_at_ns,
                lambda h=handler, p=env.payload: (self._delivered.inc(), h(p)),
            )

    def next_time_ns(self) -> Optional[int]:
        """Earliest pending local event (lower bound; None when idle)."""
        return self.engine.next_time_ns()


# ----------------------------------------------------------------------
# Window driver
# ----------------------------------------------------------------------
@dataclass
class WindowReply:
    """One shard's answer to a window step."""

    outbox: List[Envelope]
    next_ns: Optional[int]
    processed: int
    stop: bool


class ShardGroup:
    """Backend interface the window driver runs against.

    Implementations hold ``size`` shards and answer three lockstep
    operations.  The in-process reference implementation is
    :class:`LocalShardGroup`; :mod:`repro.runner.parallel` provides the
    persistent-worker-process one.  Both execute the *same* driver loop
    (:func:`run_windows`), which is what makes their outputs
    byte-identical.
    """

    size: int

    def status_all(self) -> List[Optional[int]]:
        """Initial next-event time per shard."""
        raise NotImplementedError

    def window_all(self, end_ns: int) -> List[WindowReply]:
        """Run every shard to ``end_ns``; collect outboxes."""
        raise NotImplementedError

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        """Deliver barrier batches; return updated next-event times."""
        raise NotImplementedError

    def exchange(
        self, replies: List["WindowReply"]
    ) -> Tuple[List[Optional[int]], int]:
        """Route every reply's outbox to its destination and deliver.

        Returns ``(next-event times after delivery, envelopes moved)``.
        The default walks per-envelope outboxes and hands each shard its
        inbox through :meth:`deliver_all`; the shared-memory backend
        overrides it to route columnar frames instead.  Either way the
        receiving shard sorts its batch canonically, so the exchange
        mechanics cannot perturb the delivery schedule.
        """
        inboxes: List[List[Envelope]] = [[] for _ in range(self.size)]
        exchanged = 0
        for reply in replies:
            for env in reply.outbox:
                inboxes[env.dst_shard].append(env)
                exchanged += 1
        nexts = [reply.next_ns for reply in replies]
        if exchanged:
            updated = self.deliver_all(inboxes)
            nexts = [
                updated[i] if inboxes[i] else nexts[i]
                for i in range(self.size)
            ]
        return nexts, exchanged


class LocalShardGroup(ShardGroup):
    """All shards in this process, stepped sequentially.

    The determinism reference: the N-worker process backend must fold
    to the same bytes this group produces (and the 1-shard instance of
    this group is the gate every multi-shard run is compared against).
    """

    def __init__(self, shards: Sequence[Tuple[ShardContext, Any]]) -> None:
        if not shards:
            raise ParallelError("need at least one shard")
        self._shards = list(shards)
        self.size = len(self._shards)

    @property
    def shards(self) -> List[Tuple[ShardContext, Any]]:
        """The ``(context, scenario)`` pairs, in shard-id order."""
        return self._shards

    def status_all(self) -> List[Optional[int]]:
        return [ctx.next_time_ns() for ctx, _ in self._shards]

    def window_all(self, end_ns: int) -> List[WindowReply]:
        replies = []
        for ctx, scenario in self._shards:
            outbox, processed = ctx.run_window(end_ns)
            stop = bool(getattr(scenario, "stop", lambda: False)())
            replies.append(WindowReply(outbox, ctx.next_time_ns(),
                                       processed, stop))
        return replies

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        nexts: List[Optional[int]] = []
        for (ctx, _), inbox in zip(self._shards, inboxes):
            if inbox:
                ctx.deliver(inbox)
            nexts.append(ctx.next_time_ns())
        return nexts


@dataclass
class WindowStats:
    """Barrier-level observability for one parallel run.

    These numbers are *topology-dependent* by nature (a single shard
    exchanges nothing) and therefore live outside the folded
    ``repro.obs`` document that the byte-identity gate covers.
    """

    windows: int = 0
    exchanged: int = 0
    events: int = 0
    idle_shard_windows: int = 0
    stopped: bool = False
    end_ns: int = 0
    #: Per-window span and exchange tallies, accumulated as plain list
    #: appends inside the driver loop and rendered into histograms once
    #: at the end (``observe_many``) -- no per-window registry lookups.
    window_spans: List[int] = field(default_factory=list)
    window_exchanges: List[int] = field(default_factory=list)

    def to_registry(self, registry: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
        """Render the stats as ``parallel.*`` barrier metrics."""
        reg = registry if registry is not None else MetricsRegistry()
        if self.window_spans:
            reg.observe_many("parallel.window_span_ns", self.window_spans)
        if self.window_exchanges:
            reg.observe_many("parallel.window_exchange",
                             self.window_exchanges)
        reg.counter("parallel.windows").inc(self.windows)
        reg.counter("parallel.envelopes").inc(self.exchanged)
        reg.counter("parallel.events").inc(self.events)
        reg.counter("parallel.shard_idle_windows").inc(self.idle_shard_windows)
        return reg


def run_windows(
    group: ShardGroup,
    *,
    horizon_ns: int,
    window_ns: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> WindowStats:
    """Drive a shard group to ``horizon_ns`` in conservative windows.

    Each iteration: find the global minimum pending event time ``t0``
    (skipping idle virtual time entirely), run every shard to
    ``min(horizon, t0 + window)``, exchange the outboxes, deliver each
    shard's batch in canonical order, and re-poll.  ``window_ns`` must
    not exceed the scenario's lookahead; ``None`` means the shards
    never interact (no channels registered), so each runs straight to
    the horizon in a single window.

    Stops early when any shard's scenario raises its stop flag at a
    barrier (all shards are then parked at the same instant -- the
    window end), or when the horizon is reached.  Returns the
    :class:`WindowStats` barrier tally.
    """
    horizon_ns = int(horizon_ns)
    stats = WindowStats()
    nexts = group.status_all()
    while True:
        live = [t for t in nexts if t is not None]
        t0 = min(live) if live else None
        if t0 is None or t0 > horizon_ns:
            break
        end = horizon_ns if window_ns is None else min(
            horizon_ns, t0 + int(window_ns))
        replies = group.window_all(end)
        stats.windows += 1
        stats.end_ns = end
        for reply in replies:
            stats.events += reply.processed
            if reply.processed == 0:
                stats.idle_shard_windows += 1
        nexts, exchanged = group.exchange(replies)
        stats.exchanged += exchanged
        stats.window_spans.append(end - t0)
        stats.window_exchanges.append(exchanged)
        if any(reply.stop for reply in replies):
            stats.stopped = True
            break
    if not stats.stopped:
        # Park every clock at the horizon (no events remain at or
        # before it, so this processes nothing).
        group.window_all(horizon_ns)
        stats.end_ns = horizon_ns
    if registry is not None:
        stats.to_registry(registry)
    return stats
