"""Conservative time-windowed parallel simulation engine.

PR 4 pushed one core to ~875k events/s and 65,536 nodes; the next order
of magnitude needs parallelism, not more micro-optimization.  The
structural observation (PAPER.md section 5, and both petascale C/R
studies in PAPERS.md) is that machines in a cluster interact only
through the shared link and the storage servers -- channels with
*nonzero* propagation and service latencies.  That latency floor is
exactly the **lookahead** a conservative parallel discrete-event engine
needs: if every cross-machine interaction takes at least ``L``
nanoseconds to arrive, then a machine's events inside the window
``[T, T + L)`` can only depend on messages that were already exchanged
before ``T``.  Shards may therefore advance through the window without
hearing from each other at all.

The design here:

* machines (and their node-local events) are partitioned into
  **shards**; each shard owns a private :class:`~repro.simkernel.Engine`
  (its own timer wheel, clock, metrics registry);
* all shards advance in **lockstep windows**.  The window start is the
  global minimum pending event time (idle virtual time is skipped, so a
  fleet whose next failure is minutes away costs no barriers), and the
  window width is bounded by the lookahead;
* anything that crosses a machine boundary -- link deliveries, storage
  requests and acks, fleet failure-cohort notifications -- travels as
  an :class:`Envelope` through the shard's outbox and is exchanged at
  the **window barrier**.  Crucially this discipline is uniform: even a
  single-shard run routes every cross-machine send through the barrier,
  so the event schedule a shard executes is *identical* whether it runs
  alone or next to fifteen siblings;
* each shard sorts its incoming envelopes by a **canonical key**
  ``(deliver_at_ns, kind, canonical-JSON payload, src_shard)`` before
  scheduling them, so the merge is independent of arrival order, worker
  count and OS scheduling.

Determinism contract (the hard gate): a scenario built from
shard-invariant state -- per-node counter-based RNG streams (see
:meth:`repro.cluster.FailureModel.draw_ttf_indexed`), no reads of
another shard's memory, all cross-machine sends through
:meth:`ShardContext.send` with ``delay_ns >= lookahead_ns`` -- produces
byte-identical folded ``repro.obs`` exports for 1, 2, 4, ... shards.
``tests/runner/test_parallel.py`` asserts exactly that, property-based
over random seeds and topologies.

This module is backend-agnostic: :func:`run_windows` drives any
:class:`ShardGroup` (the in-process reference group lives here; the
``ProcessPoolExecutor``-style persistent-worker group lives in
:mod:`repro.runner.parallel`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs import MetricsRegistry
from .engine import Engine

__all__ = [
    "Envelope",
    "ParallelError",
    "ShardContext",
    "ShardGroup",
    "LocalShardGroup",
    "WindowReply",
    "WindowStats",
    "derive_lookahead",
    "run_windows",
]


class ParallelError(SimulationError):
    """A conservative-window invariant was violated."""


def derive_lookahead(*latencies_ns: int) -> int:
    """The engine's lookahead: the minimum nonzero cross-shard latency.

    Callers pass every latency floor a cross-machine interaction can
    take -- link propagation, storage service floor -- and get back the
    largest window width that is still conservative.
    """
    floors = [int(x) for x in latencies_ns if x is not None]
    if not floors:
        raise ParallelError("lookahead needs at least one latency floor")
    lo = min(floors)
    if lo <= 0:
        raise ParallelError(f"lookahead must be positive, got {lo}")
    return lo


def _payload_key(payload: Any) -> str:
    """Canonical JSON of an envelope payload (the sort tiebreak)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Envelope:
    """One cross-shard event, exchanged at a window barrier.

    ``payload_key`` is the canonical JSON of the payload, computed once
    at send time; together with ``(deliver_at_ns, kind, src_shard)`` it
    makes the barrier merge order total and content-determined.
    """

    deliver_at_ns: int
    kind: str
    dst_shard: int
    src_shard: int
    payload: Dict[str, Any]
    payload_key: str

    @property
    def sort_key(self) -> Tuple[int, str, str, int]:
        """Canonical merge key: a pure function of envelope content."""
        return (self.deliver_at_ns, self.kind, self.payload_key,
                self.src_shard)


class ShardContext:
    """One shard's view of the parallel simulation.

    Owns the shard-local :class:`Engine`, the envelope outbox, and the
    registry of cross-shard message handlers.  Scenario code builds its
    machines against this context; everything that would touch another
    shard's machine goes through :meth:`send`.
    """

    def __init__(
        self,
        engine: Engine,
        shard_id: int,
        n_shards: int,
        lookahead_ns: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ParallelError("need at least one shard")
        if not 0 <= shard_id < n_shards:
            raise ParallelError(
                f"shard_id {shard_id} out of range for {n_shards} shards"
            )
        if lookahead_ns is not None and lookahead_ns <= 0:
            raise ParallelError("lookahead must be positive when set")
        self.engine = engine
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.lookahead_ns = lookahead_ns
        self._handlers: Dict[str, Callable[[Dict[str, Any]], None]] = {}
        self._outbox: List[Envelope] = []
        self._sent = engine.metrics.counter("parallel.sent")
        self._delivered = engine.metrics.counter("parallel.delivered")

    # ------------------------------------------------------------------
    def on(self, kind: str, handler: Callable[[Dict[str, Any]], None]) -> None:
        """Register the handler for envelope ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ParallelError(f"duplicate handler for envelope kind {kind!r}")
        self._handlers[kind] = handler

    def send(
        self,
        kind: str,
        payload: Dict[str, Any],
        delay_ns: int,
        dst_shard: int,
    ) -> None:
        """Queue a cross-machine event for barrier exchange.

        ``delay_ns`` must be at least the lookahead -- that is the
        conservative condition that makes in-window parallelism safe.
        The discipline is uniform: a send whose destination happens to
        live on this same shard *still* goes through the barrier, so
        event interleaving does not depend on the partitioning.
        """
        if self.lookahead_ns is None:
            raise ParallelError(
                "this context has no cross-shard channels (lookahead unset)"
            )
        if delay_ns < self.lookahead_ns:
            raise ParallelError(
                f"send delay {delay_ns} violates lookahead {self.lookahead_ns}"
            )
        if not 0 <= dst_shard < self.n_shards:
            raise ParallelError(f"dst_shard {dst_shard} out of range")
        self._sent.inc()
        self._outbox.append(Envelope(
            deliver_at_ns=self.engine.now_ns + int(delay_ns),
            kind=kind,
            dst_shard=int(dst_shard),
            src_shard=self.shard_id,
            payload=payload,
            payload_key=_payload_key(payload),
        ))

    # ------------------------------------------------------------------
    def run_window(self, end_ns: int) -> Tuple[List[Envelope], int]:
        """Advance the shard's engine to ``end_ns``; drain the outbox.

        Returns ``(outbox, processed)``.  The engine clock is left at
        ``end_ns`` even when the schedule drained earlier, so every
        shard observes the same barrier instant.
        """
        processed = self.engine.run(until_ns=end_ns)
        outbox, self._outbox = self._outbox, []
        return outbox, processed

    def deliver(self, envelopes: Sequence[Envelope]) -> None:
        """Schedule a barrier batch in canonical order.

        Sorting by :attr:`Envelope.sort_key` makes the local schedule a
        pure function of the batch's *contents* -- workers may hand the
        batch over in any order.
        """
        now = self.engine.now_ns
        for env in sorted(envelopes, key=lambda e: e.sort_key):
            if env.dst_shard != self.shard_id:
                raise ParallelError(
                    f"envelope for shard {env.dst_shard} delivered to "
                    f"shard {self.shard_id}"
                )
            handler = self._handlers.get(env.kind)
            if handler is None:
                raise ParallelError(f"no handler for envelope kind {env.kind!r}")
            if env.deliver_at_ns < now:
                raise ParallelError(
                    f"envelope {env.kind!r} arrives in the past "
                    f"({env.deliver_at_ns} < {now}): lookahead violated"
                )
            self.engine.at_anon(
                env.deliver_at_ns,
                lambda h=handler, p=env.payload: (self._delivered.inc(), h(p)),
            )

    def next_time_ns(self) -> Optional[int]:
        """Earliest pending local event (lower bound; None when idle)."""
        return self.engine.next_time_ns()


# ----------------------------------------------------------------------
# Window driver
# ----------------------------------------------------------------------
@dataclass
class WindowReply:
    """One shard's answer to a window step."""

    outbox: List[Envelope]
    next_ns: Optional[int]
    processed: int
    stop: bool


class ShardGroup:
    """Backend interface the window driver runs against.

    Implementations hold ``size`` shards and answer three lockstep
    operations.  The in-process reference implementation is
    :class:`LocalShardGroup`; :mod:`repro.runner.parallel` provides the
    persistent-worker-process one.  Both execute the *same* driver loop
    (:func:`run_windows`), which is what makes their outputs
    byte-identical.
    """

    size: int

    def status_all(self) -> List[Optional[int]]:
        """Initial next-event time per shard."""
        raise NotImplementedError

    def window_all(self, end_ns: int) -> List[WindowReply]:
        """Run every shard to ``end_ns``; collect outboxes."""
        raise NotImplementedError

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        """Deliver barrier batches; return updated next-event times."""
        raise NotImplementedError


class LocalShardGroup(ShardGroup):
    """All shards in this process, stepped sequentially.

    The determinism reference: the N-worker process backend must fold
    to the same bytes this group produces (and the 1-shard instance of
    this group is the gate every multi-shard run is compared against).
    """

    def __init__(self, shards: Sequence[Tuple[ShardContext, Any]]) -> None:
        if not shards:
            raise ParallelError("need at least one shard")
        self._shards = list(shards)
        self.size = len(self._shards)

    @property
    def shards(self) -> List[Tuple[ShardContext, Any]]:
        """The ``(context, scenario)`` pairs, in shard-id order."""
        return self._shards

    def status_all(self) -> List[Optional[int]]:
        return [ctx.next_time_ns() for ctx, _ in self._shards]

    def window_all(self, end_ns: int) -> List[WindowReply]:
        replies = []
        for ctx, scenario in self._shards:
            outbox, processed = ctx.run_window(end_ns)
            stop = bool(getattr(scenario, "stop", lambda: False)())
            replies.append(WindowReply(outbox, ctx.next_time_ns(),
                                       processed, stop))
        return replies

    def deliver_all(
        self, inboxes: List[List[Envelope]]
    ) -> List[Optional[int]]:
        nexts: List[Optional[int]] = []
        for (ctx, _), inbox in zip(self._shards, inboxes):
            if inbox:
                ctx.deliver(inbox)
            nexts.append(ctx.next_time_ns())
        return nexts


@dataclass
class WindowStats:
    """Barrier-level observability for one parallel run.

    These numbers are *topology-dependent* by nature (a single shard
    exchanges nothing) and therefore live outside the folded
    ``repro.obs`` document that the byte-identity gate covers.
    """

    windows: int = 0
    exchanged: int = 0
    events: int = 0
    idle_shard_windows: int = 0
    stopped: bool = False
    end_ns: int = 0

    def to_registry(self, registry: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
        """Render the stats as ``parallel.*`` barrier metrics."""
        reg = registry if registry is not None else MetricsRegistry()
        reg.counter("parallel.windows").inc(self.windows)
        reg.counter("parallel.envelopes").inc(self.exchanged)
        reg.counter("parallel.events").inc(self.events)
        reg.counter("parallel.shard_idle_windows").inc(self.idle_shard_windows)
        return reg


def run_windows(
    group: ShardGroup,
    *,
    horizon_ns: int,
    window_ns: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> WindowStats:
    """Drive a shard group to ``horizon_ns`` in conservative windows.

    Each iteration: find the global minimum pending event time ``t0``
    (skipping idle virtual time entirely), run every shard to
    ``min(horizon, t0 + window)``, exchange the outboxes, deliver each
    shard's batch in canonical order, and re-poll.  ``window_ns`` must
    not exceed the scenario's lookahead; ``None`` means the shards
    never interact (no channels registered), so each runs straight to
    the horizon in a single window.

    Stops early when any shard's scenario raises its stop flag at a
    barrier (all shards are then parked at the same instant -- the
    window end), or when the horizon is reached.  Returns the
    :class:`WindowStats` barrier tally.
    """
    horizon_ns = int(horizon_ns)
    stats = WindowStats()
    nexts = group.status_all()
    while True:
        live = [t for t in nexts if t is not None]
        t0 = min(live) if live else None
        if t0 is None or t0 > horizon_ns:
            break
        end = horizon_ns if window_ns is None else min(
            horizon_ns, t0 + int(window_ns))
        replies = group.window_all(end)
        stats.windows += 1
        stats.end_ns = end
        inboxes: List[List[Envelope]] = [[] for _ in range(group.size)]
        for reply in replies:
            for env in reply.outbox:
                inboxes[env.dst_shard].append(env)
                stats.exchanged += 1
            stats.events += reply.processed
            if reply.processed == 0:
                stats.idle_shard_windows += 1
        nexts = [reply.next_ns for reply in replies]
        if any(inboxes):
            updated = group.deliver_all(inboxes)
            nexts = [
                updated[i] if inboxes[i] else nexts[i]
                for i in range(group.size)
            ]
        if registry is not None:
            registry.observe("parallel.window_span_ns", end - t0)
            registry.observe(
                "parallel.window_exchange",
                sum(len(box) for box in inboxes),
            )
        if any(reply.stop for reply in replies):
            stats.stopped = True
            break
    if not stats.stopped:
        # Park every clock at the horizon (no events remain at or
        # before it, so this processes nothing).
        group.window_all(horizon_ns)
        stats.end_ns = horizon_ns
    if registry is not None:
        stats.to_registry(registry)
    return stats
