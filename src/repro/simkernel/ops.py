"""The operation vocabulary that simulated programs are written in.

A *program* is a Python generator that yields :class:`Op` instances; the
kernel executes each op, charges virtual time, and sends results back into
the generator.  Programs run in user mode (applications, user-level
checkpoint handlers) or kernel mode (kernel threads, kernel-mode signal
actions); the same vocabulary serves both, with the kernel charging
boundary crossings only where they really occur.

Programs must be **restartable**: a workload supplies a
``program_factory(task, start_step)`` and the kernel counts completed ops,
so a restarted task resumes at the recorded step with its memory image
restored from the checkpoint rather than replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = [
    "Op",
    "Compute",
    "MemWrite",
    "MemRead",
    "Syscall",
    "Sleep",
    "Exit",
    "Yield",
]


@dataclass
class Op:
    """Base class for program operations."""

    #: When true, the op executes inside a non-reentrant libc region
    #: (malloc/free).  A user signal handler that itself uses those
    #: functions and interrupts such an op triggers the reentrancy hazard
    #: the paper describes.
    non_reentrant: bool = field(default=False, kw_only=True)


@dataclass
class Compute(Op):
    """Pure CPU work for ``ns`` nanoseconds."""

    ns: int = 0


@dataclass
class MemWrite(Op):
    """Write ``nbytes`` at ``offset`` inside the named VMA.

    The kernel splits the range per page, services faults (allocation,
    COW, tracking write-protect), charges copy time, and fills a
    deterministic pattern derived from ``seed`` so restores are
    byte-verifiable.
    """

    vma: str = ""
    offset: int = 0
    nbytes: int = 0
    seed: int = 0
    #: Internal: set on the 2nd..nth per-page segments the kernel splits a
    #: multi-page write into, so only the original op advances the
    #: restart step counter.
    continuation: bool = False


@dataclass
class MemRead(Op):
    """Read ``nbytes`` at ``offset`` in the named VMA (charges bandwidth,
    sets accessed bits, participates in the TLB-cold penalty)."""

    vma: str = ""
    offset: int = 0
    nbytes: int = 0


@dataclass
class Syscall(Op):
    """Invoke the named system call; the result is sent back into the
    program generator.  User-mode callers pay the full boundary cost;
    kernel-mode callers pay only the work."""

    name: str = ""
    args: Tuple[Any, ...] = ()


@dataclass
class Sleep(Op):
    """Block voluntarily for ``ns`` of virtual time."""

    ns: int = 0


@dataclass
class Exit(Op):
    """Terminate the task with ``code``."""

    code: int = 0


@dataclass
class Yield(Op):
    """Relinquish the CPU without blocking (sched_yield)."""
