"""Deterministic discrete-event simulation engine.

The engine owns the virtual clock and an event heap.  Everything else in
the simulated kernel -- scheduler ticks, I/O completions, signal posts,
node failures -- is expressed as events scheduled here.  Two runs with the
same seed and the same call sequence produce identical traces; nothing in
the package reads wall-clock time or unseeded randomness.

Times are integer nanoseconds (see :mod:`repro.simkernel.costs`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from ..obs import MetricsRegistry, Tracer
from ..obs.metrics import CountersView

__all__ = ["Event", "Engine", "TraceRecord"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence) for determinism."""

    time_ns: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set once the engine has removed the event from the heap (whether
    #: it ran or was skipped as cancelled).  Guards the live count:
    #: cancelling an event that already executed must be a no-op.
    popped: bool = field(default=False, compare=False)
    #: Owning engine, so cancellation can keep the live count exact.
    _engine: Optional["Engine"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped.

        Cancelling an event that was already popped (it ran, or it was
        already discarded as cancelled) is a no-op -- in particular it
        must not drive the engine's pending count negative.
        """
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._live -= 1


@dataclass(frozen=True)
class TraceRecord:
    """One line of the (optional) engine trace, for debugging/analysis."""

    time_ns: int
    category: str
    message: str


class Engine:
    """Event heap plus virtual clock.

    Parameters
    ----------
    seed:
        Seed for the engine's :class:`numpy.random.Generator`.  All
        stochastic behaviour in the simulation (failure processes,
        randomized write patterns) draws from this generator or from
        generators derived from it, so a run is reproducible end to end.
    trace:
        When true, keep an in-memory list of :class:`TraceRecord` entries.
        Off by default; tracing a long simulation is memory-hungry.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now_ns: int = 0
        self._heap: List[Event] = []
        #: Not-yet-cancelled events in the heap, maintained on
        #: push/cancel/pop so :meth:`pending` is O(1).
        self._live: int = 0
        self._seq = itertools.count()
        self.rng: np.random.Generator = np.random.default_rng(seed)
        self._trace_enabled = trace
        self.trace_log: List[TraceRecord] = []
        self._stopped = False
        #: Typed metrics (counters / gauges / histograms) on virtual time.
        self.metrics = MetricsRegistry(clock=lambda: self._now_ns)
        #: Structured span log on virtual time (see :mod:`repro.obs`).
        self.tracer = Tracer(clock=lambda: self._now_ns)
        #: Compatibility view: the historical untyped counters dict now
        #: reads and writes the typed registry's counters.
        self.counters: Dict[str, int] = CountersView(self.metrics)
        self._events_counter = self.metrics.counter("engine.events")
        #: Per-namespace monotonic id sequences (checkpoint keys etc.).
        #: Engine-scoped, so same-seed runs allocate identical ids --
        #: unlike process-global counters, which leak across runs.
        self._id_counters: Dict[str, int] = {}

    def next_id(self, namespace: str) -> int:
        """Next monotonic id in ``namespace`` (starts at 1, O(1))."""
        n = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = n
        return n

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds (for reporting only)."""
        return self._now_ns / 1e9

    def spawn_rng(self) -> np.random.Generator:
        """Derive an independent, deterministic child generator."""
        return np.random.default_rng(self.rng.integers(0, 2**63 - 1))

    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` at absolute virtual time ``time_ns``."""
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule event in the past: {time_ns} < {self._now_ns}"
            )
        ev = Event(int(time_ns), next(self._seq), fn, label, _engine=self)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def after(self, delay_ns: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self._now_ns + int(delay_ns), fn, label)

    # ------------------------------------------------------------------
    def trace(self, category: str, message: str) -> None:
        """Append a trace record if tracing is enabled."""
        if self._trace_enabled:
            self.trace_log.append(TraceRecord(self._now_ns, category, message))

    def count(self, name: str, delta: int = 1) -> None:
        """Bump the named statistics counter (typed, in the registry)."""
        self.metrics.inc(name, delta)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap (O(1))."""
        return self._live

    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events in order.

        Parameters
        ----------
        until_ns:
            Stop once the clock would pass this time (the clock is left at
            ``until_ns`` if the heap drains or only later events remain).
        max_events:
            Safety valve: stop after this many events.
        until:
            Predicate evaluated after every event; return true to stop.

        Returns
        -------
        int
            The number of events processed.
        """
        self._stopped = False
        processed = 0
        while self._heap:
            if self._stopped:
                break
            if max_events is not None and processed >= max_events:
                break
            ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                ev.popped = True  # _live already dropped at cancel time
                continue
            if until_ns is not None and ev.time_ns > until_ns:
                self._now_ns = max(self._now_ns, int(until_ns))
                break
            heapq.heappop(self._heap)
            ev.popped = True
            self._live -= 1
            self._now_ns = ev.time_ns
            ev.fn()
            self._events_counter.value += 1
            processed += 1
            if until is not None and until():
                break
        else:
            if until_ns is not None:
                self._now_ns = max(self._now_ns, int(until_ns))
        return processed

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now_ns}ns pending={self.pending()}>"
