"""Deterministic discrete-event simulation engine.

The engine owns the virtual clock and the event schedule.  Everything
else in the simulated kernel -- scheduler ticks, I/O completions, signal
posts, node failures -- is expressed as events scheduled here.  Two runs
with the same seed and the same call sequence produce identical traces;
nothing in the package reads wall-clock time or unseeded randomness.

Times are integer nanoseconds (see :mod:`repro.simkernel.costs`).

Scheduling data structure (the hot path of every experiment)
------------------------------------------------------------
Events are totally ordered by ``(time_ns, seq)`` -- exactly the order
the original single-``heapq`` implementation produced -- but stored in a
hybrid structure tuned for the simulation's actual timer mix:

* a **hierarchical timer wheel** (two levels of 256 slots: 131 us and
  33.5 ms per slot, ~8.6 s total horizon) absorbs the dominant
  short-horizon timers (scheduler ticks, op completions, I/O, wave
  polls) with O(1) unsorted inserts;
* a **far heap** holds events beyond the wheel horizon (node failures
  hours away, GC sweeps); they cascade into the wheel as the clock
  approaches;
* the **current slot** is sorted once and drained by index, with a
  small side heap absorbing entries that arrive at or before the
  cursor while it drains (0-delay dispatches), so intra-slot ordering
  is exact ``(time_ns, seq)`` without a heappop per event.

Entries are plain tuples ``(time_ns, seq, fn, event_or_None)`` --
comparisons never leave C.  The anonymous fast path
(:meth:`Engine.after_anon`) skips :class:`Event` allocation entirely for
fire-and-forget callbacks, and a slab free-list recycles :class:`Event`
objects for call sites that opt in (``pooled=True``).

Cancelled events no longer linger until their scheduled time: when the
cancelled fraction of stored entries crosses a threshold the structure
compacts, so schedule/cancel churn (retry timers, speculative watchers)
keeps memory and pop cost bounded.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs import MetricsRegistry, Tracer
from ..obs.metrics import CountersView

__all__ = ["Event", "Completion", "Engine", "TraceRecord"]

# Timer-wheel geometry.  Level-0 slots are 2**17 ns (131.072 us), level-1
# slots cover one full level-0 window (2**25 ns, 33.554 ms); with 256
# slots per level the wheel spans ~8.59 s ahead of the cursor.  Events
# beyond that live in the far heap.
_L0_BITS = 17
_L1_BITS = _L0_BITS + 8
_SLOTS = 256
_MASK = _SLOTS - 1

#: Compaction trigger: compact once at least this many cancelled entries
#: are stored *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 512

#: Upper bound on the Event slab free-list.
_POOL_CAP = 4096


class Event:
    """A scheduled callback, ordered by ``(time_ns, seq)`` for determinism.

    Only *labelled* schedules (:meth:`Engine.at` / :meth:`Engine.after`)
    allocate an ``Event``; the anonymous fast path stores a bare tuple.
    """

    __slots__ = ("time_ns", "seq", "fn", "label", "cancelled", "popped",
                 "_engine", "_pooled")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        fn: Callable[[], None],
        label: str = "",
        _engine: Optional["Engine"] = None,
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False
        #: Set once the engine has removed the event from the schedule
        #: (whether it ran or was discarded as cancelled).  Guards the
        #: live count: cancelling an event that already executed must be
        #: a no-op.
        self.popped = False
        self._engine = _engine
        #: Slab opt-in: the creator promises to drop its handle once the
        #: event has fired or been cancelled, so the engine may recycle
        #: the object.
        self._pooled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is reached.

        Cancelling an event that was already popped (it ran, or it was
        already discarded as cancelled) is a no-op -- in particular it
        must not drive the engine's pending count negative.
        """
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None:
            eng._ndone += 1
            eng._n_cancelled += 1
            if (
                eng._n_cancelled >= _COMPACT_MIN_CANCELLED
                and eng._n_cancelled > eng._seq - eng._ndone
            ):
                eng._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "cancelled " if self.cancelled else ""
        return f"<Event t={self.time_ns} seq={self.seq} {flags}{self.label!r}>"


# Tuple layout of a schedule entry.  ``ev`` is None for anonymous events.
_Entry = Tuple[int, int, Callable[[], None], Optional[Event]]


class Completion:
    """A one-shot virtual-time completion token (an I/O future).

    The asynchronous checkpoint/restart pipeline posts these for every
    in-flight transfer: the issuer knows the deterministic completion
    time from the device model, schedules the token on the timer wheel
    (:meth:`Engine.completion`), and consumers attach callbacks instead
    of blocking a task context for the whole transfer latency.

    Callbacks added *after* the token resolved fire immediately (at the
    current virtual time), so late subscribers never deadlock.

    A token may be *cancelled* (:meth:`cancel`): pending callbacks run
    one final time with ``token.cancelled`` set (asyncio's done-on-
    cancel semantics -- waiters must observe the abort, not hang) and a
    later :meth:`resolve` is a silent no-op.  Protocols that abort
    mid-flight (a rank failing during a distributed-snapshot marker
    flood) cancel their outstanding tokens this way; a token scheduled
    through :meth:`Engine.completion` with ``cancellable=True`` also
    removes its timer event from the schedule, so the engine's pending
    count stays exact across abort paths.
    """

    __slots__ = ("engine", "done", "value", "done_at_ns", "cancelled",
                 "_callbacks", "_event")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.done = False
        self.value: Any = None
        #: Virtual time the token resolved (None while pending).
        self.done_at_ns: Optional[int] = None
        self.cancelled = False
        self._callbacks: List[Callable[["Completion"], None]] = []
        #: The labelled timer event backing a cancellable token (None for
        #: the anonymous fast path).
        self._event: Optional[Event] = None

    def add_done_callback(self, fn: Callable[["Completion"], None]) -> None:
        """Run ``fn(self)`` when the token settles -- resolution or
        cancellation (now, if it already has)."""
        if self.done or self.cancelled:
            fn(self)
        else:
            self._callbacks.append(fn)

    def resolve(self, value: Any = None) -> None:
        """Resolve the token at the current virtual time.

        Resolving a cancelled token is a no-op: an anonymous timer that
        already left the wheel may still fire after its consumer
        aborted, and the stale resolution must not reach anyone.
        """
        if self.cancelled:
            return
        if self.done:
            raise SimulationError("completion already resolved")
        self.done = True
        self.value = value
        self.done_at_ns = self.engine.now_ns
        self._event = None
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def cancel(self) -> None:
        """Cancel the token: resolve becomes a no-op, a cancellable
        token's timer leaves the schedule (``Engine.pending`` is
        decremented exactly once, through :meth:`Event.cancel`'s guarded
        accounting), and pending callbacks run once with
        ``cancelled`` set so waiters observe the abort."""
        if self.done or self.cancelled:
            return
        self.cancelled = True
        ev, self._event = self._event, None
        if ev is not None:
            ev.cancel()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else f"done@{self.done_at_ns}" if self.done
            else "pending"
        )
        return f"<Completion {state}>"


class TraceRecord:
    """One line of the (optional) engine trace, for debugging/analysis."""

    __slots__ = ("time_ns", "category", "message")

    def __init__(self, time_ns: int, category: str, message: str) -> None:
        self.time_ns = time_ns
        self.category = category
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord({self.time_ns}, {self.category!r}, {self.message!r})"


class Engine:
    """Hybrid timer wheel + virtual clock.

    Parameters
    ----------
    seed:
        Seed for the engine's :class:`numpy.random.Generator`.  All
        stochastic behaviour in the simulation (failure processes,
        randomized write patterns) draws from this generator or from
        generators derived from it, so a run is reproducible end to end.
    trace:
        When true, keep an in-memory list of :class:`TraceRecord` entries.
        Off by default; tracing a long simulation is memory-hungry.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now_ns: int = 0
        #: Schedules issued so far; doubles as the tiebreak sequence.
        self._seq: int = 0
        #: Events no longer live (executed or cancelled).  ``pending()``
        #: is the O(1) difference ``_seq - _ndone``, so the insert fast
        #: path touches no extra counter.
        self._ndone: int = 0
        #: Cancelled-but-still-stored entries (reaped lazily or at
        #: compaction).
        self._n_cancelled: int = 0
        # --- the hybrid schedule ------------------------------------
        #: The slot being drained: a sorted list consumed by index, plus
        #: a side heap for entries that arrive at or before the cursor
        #: slot while it drains (0-delay dispatches and the like).
        self._cur: List[_Entry] = []
        self._cur_idx: int = 0
        self._side: List[_Entry] = []
        #: Absolute level-0 slot index of the cursor (== slot of _cur).
        self._pos: int = 0
        self._l0: List[List[_Entry]] = [[] for _ in range(_SLOTS)]
        self._l0_map: int = 0  # bit i set <=> bucket i non-empty
        self._l1: List[List[_Entry]] = [[] for _ in range(_SLOTS)]
        self._l1_map: int = 0
        #: Far-future overflow (beyond the wheel horizon), a tuple heap.
        self._far: List[_Entry] = []
        #: Slab free-list of recyclable Event objects.
        self._pool: List[Event] = []
        # ------------------------------------------------------------
        self.rng: np.random.Generator = np.random.default_rng(seed)
        self._trace_enabled = trace
        self.trace_log: List[TraceRecord] = []
        self._stopped = False
        #: Typed metrics (counters / gauges / histograms) on virtual time.
        self.metrics = MetricsRegistry(clock=lambda: self._now_ns)
        #: Structured span log on virtual time (see :mod:`repro.obs`).
        self.tracer = Tracer(clock=lambda: self._now_ns)
        #: Compatibility view: the historical untyped counters dict now
        #: reads and writes the typed registry's counters.
        self.counters: Dict[str, int] = CountersView(self.metrics)
        self._events_counter = self.metrics.counter("engine.events")
        #: Per-namespace monotonic id sequences (checkpoint keys etc.).
        #: Engine-scoped, so same-seed runs allocate identical ids --
        #: unlike process-global counters, which leak across runs.
        self._id_counters: Dict[str, int] = {}

    def next_id(self, namespace: str) -> int:
        """Next monotonic id in ``namespace`` (starts at 1, O(1))."""
        n = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = n
        return n

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds (for reporting only)."""
        return self._now_ns / 1e9

    def spawn_rng(self) -> np.random.Generator:
        """Derive an independent, deterministic child generator."""
        return np.random.default_rng(self.rng.integers(0, 2**63 - 1))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _place(self, entry: _Entry) -> None:
        """Route an entry into current-slot heap / wheel / far heap."""
        s = entry[0] >> _L0_BITS
        d = s - self._pos
        if d <= 0:
            heappush(self._side, entry)
        elif d <= _SLOTS:
            i = s & _MASK
            self._l0[i].append(entry)
            self._l0_map |= 1 << i
        else:
            u = entry[0] >> _L1_BITS
            if u - (self._pos >> 8) < _SLOTS:
                i = u & _MASK
                self._l1[i].append(entry)
                self._l1_map |= 1 << i
            else:
                heappush(self._far, entry)

    def at(
        self,
        time_ns: int,
        fn: Callable[[], None],
        label: str = "",
        pooled: bool = False,
    ) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time_ns``.

        ``pooled=True`` opts the returned :class:`Event` into slab
        recycling: the caller promises to drop the handle once the event
        has fired or been cancelled (the engine may then reuse the
        object for a later schedule).
        """
        t = int(time_ns)
        if t < self._now_ns:
            raise SimulationError(
                f"cannot schedule event in the past: {t} < {self._now_ns}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time_ns = t
            ev.seq = seq
            ev.fn = fn
            ev.label = label
            ev.cancelled = False
            ev.popped = False
        else:
            ev = Event(t, seq, fn, label, _engine=self)
        ev._pooled = pooled
        self._place((t, seq, fn, ev))
        return ev

    def after(
        self,
        delay_ns: int,
        fn: Callable[[], None],
        label: str = "",
        pooled: bool = False,
    ) -> Event:
        """Schedule ``fn`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self._now_ns + int(delay_ns), fn, label, pooled=pooled)

    def at_anon(self, time_ns: int, fn: Callable[[], None]) -> None:
        """Anonymous fast path: schedule ``fn`` at ``time_ns`` with no
        :class:`Event` handle (the event cannot be cancelled or labelled).

        This is the hot path for the simulated kernel's own timers --
        dispatches, op completions, scheduler ticks -- which are never
        cancelled and vastly outnumber everything else.
        """
        t = int(time_ns)
        if t < self._now_ns:
            raise SimulationError(
                f"cannot schedule event in the past: {t} < {self._now_ns}"
            )
        seq = self._seq
        self._seq = seq + 1
        # Inlined _place fast path (short-horizon slots dominate).
        s = t >> _L0_BITS
        d = s - self._pos
        if d <= 0:
            heappush(self._side, (t, seq, fn, None))
        elif d <= _SLOTS:
            i = s & _MASK
            self._l0[i].append((t, seq, fn, None))
            self._l0_map |= 1 << i
        else:
            u = t >> _L1_BITS
            if u - (self._pos >> 8) < _SLOTS:
                i = u & _MASK
                self._l1[i].append((t, seq, fn, None))
                self._l1_map |= 1 << i
            else:
                heappush(self._far, (t, seq, fn, None))

    def completion(
        self, delay_ns: int, value: Any = None, cancellable: bool = False
    ) -> Completion:
        """Schedule a :class:`Completion` that resolves in ``delay_ns``.

        By default the resolution rides the anonymous fast path on the
        timer wheel (I/O acknowledgements are never cancelled); ``value``
        is delivered to the token's callbacks.  ``cancellable=True``
        routes through a labelled event instead, so
        :meth:`Completion.cancel` removes the timer from the schedule --
        the form protocols use for abortable waits (quiesce drains,
        marker-flood watchdogs), where an abandoned anonymous timer
        would otherwise linger until its scheduled instant.
        """
        token = Completion(self)
        if cancellable:
            token._event = self.after(
                int(delay_ns), lambda: token.resolve(value), label="completion"
            )
        else:
            self.after_anon(int(delay_ns), lambda: token.resolve(value))
        return token

    def after_anon(self, delay_ns: int, fn: Callable[[], None]) -> None:
        """Anonymous fast path: schedule ``fn`` after ``delay_ns``."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        t = self._now_ns + int(delay_ns)
        seq = self._seq
        self._seq = seq + 1
        s = t >> _L0_BITS
        d = s - self._pos
        if d <= 0:
            heappush(self._side, (t, seq, fn, None))
        elif d <= _SLOTS:
            i = s & _MASK
            self._l0[i].append((t, seq, fn, None))
            self._l0_map |= 1 << i
        else:
            u = t >> _L1_BITS
            if u - (self._pos >> 8) < _SLOTS:
                i = u & _MASK
                self._l1[i].append((t, seq, fn, None))
                self._l1_map |= 1 << i
            else:
                heappush(self._far, (t, seq, fn, None))

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def events(self) -> Iterator[Event]:
        """Yield the live *labelled* events currently scheduled.

        Anonymous events have no handle and are not reported.  Debugging
        aid; order is unspecified.
        """
        for entry in self._entries():
            ev = entry[3]
            if ev is not None and not ev.cancelled:
                yield ev

    def _entries(self) -> Iterator[_Entry]:
        yield from self._cur[self._cur_idx:]
        yield from self._side
        for bucket in self._l0:
            yield from bucket
        for bucket in self._l1:
            yield from bucket
        yield from self._far

    def stored_events(self) -> int:
        """Entries currently stored, including cancelled ones awaiting
        reap/compaction (memory-bound diagnostics; O(1))."""
        return self._seq - self._ndone + self._n_cancelled

    def next_time_ns(self) -> Optional[int]:
        """Earliest stored entry time, or None when the schedule is empty.

        This is the lower-bound peek the conservative parallel engine
        uses to place the next lockstep window: cancelled-but-unreaped
        entries are counted (their time is still a valid lower bound, so
        a window placed on one is merely empty, never unsafe).  Cost is
        one bitmap scan plus a min over the first non-empty bucket --
        never a full walk of the schedule.
        """
        best: Optional[int] = None
        if self._cur_idx < len(self._cur):
            best = self._cur[self._cur_idx][0]
        if self._side:
            t = self._side[0][0]
            if best is None or t < best:
                best = t
        # Entries in cur/side are at or before the cursor slot; wheel
        # buckets and the far heap hold strictly later slots, so the
        # first hit wins at each level.
        if best is not None:
            return best
        pos = self._pos
        if self._l0_map:
            start = (pos + 1) & _MASK
            m = self._l0_map >> start
            if m:
                bidx = (start + ((m & -m).bit_length() - 1)) & _MASK
            else:
                m = self._l0_map & ((1 << start) - 1)
                bidx = (m & -m).bit_length() - 1
            return min(e[0] for e in self._l0[bidx])
        if self._l1_map:
            p1 = pos >> 8
            start = (p1 + 1) & _MASK
            m = self._l1_map >> start
            if m:
                b1 = (start + ((m & -m).bit_length() - 1)) & _MASK
            else:
                m = self._l1_map & ((1 << start) - 1)
                b1 = (m & -m).bit_length() - 1
            return min(e[0] for e in self._l1[b1])
        if self._far:
            return self._far[0][0]
        return None

    def _release(self, ev: Event) -> None:
        """Return a pooled Event to the slab."""
        pool = self._pool
        if len(pool) < _POOL_CAP:
            ev.fn = None  # type: ignore[assignment]  # drop the closure
            pool.append(ev)

    def _compact(self) -> None:
        """Rebuild the schedule without cancelled entries.

        Triggered when cancelled entries outnumber live ones: long runs
        that schedule-and-cancel many speculative timers (retry guards,
        watchdogs) would otherwise accumulate dead entries until their
        scheduled time arrives.
        """
        entries = list(self._entries())
        self._cur = []
        self._cur_idx = 0
        self._side = []
        self._l0 = [[] for _ in range(_SLOTS)]
        self._l0_map = 0
        self._l1 = [[] for _ in range(_SLOTS)]
        self._l1_map = 0
        self._far = []
        place = self._place
        for entry in entries:
            ev = entry[3]
            if ev is not None and ev.cancelled:
                ev.popped = True
                if ev._pooled:
                    self._release(ev)
                continue
            place(entry)
        self._n_cancelled = 0
        self.metrics.inc("engine.compactions")

    # ------------------------------------------------------------------
    def trace(self, category: str, message: str) -> None:
        """Append a trace record if tracing is enabled."""
        if self._trace_enabled:
            self.trace_log.append(TraceRecord(self._now_ns, category, message))

    def count(self, name: str, delta: int = 1) -> None:
        """Bump the named statistics counter (typed, in the registry)."""
        self.metrics.inc(name, delta)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events scheduled (O(1))."""
        return self._seq - self._ndone

    # ------------------------------------------------------------------
    def _refill(self) -> bool:
        """Advance the cursor to the next slot containing entries and
        sort it into ``_cur``.  Returns False when nothing is left."""
        far = self._far
        while True:
            pos = self._pos
            p1 = pos >> 8
            # Far events whose level-1 slot entered the wheel horizon
            # cascade in before anything later may be drained.
            while far and (far[0][0] >> _L1_BITS) - p1 < _SLOTS:
                self._place(heappop(far))
            # Next non-empty level-0 slot in the window (pos, pos+256].
            l0_map = self._l0_map
            s_a = None
            if l0_map:
                start = (pos + 1) & _MASK
                m = l0_map >> start
                if m:
                    bidx = start + ((m & -m).bit_length() - 1)
                else:
                    m = l0_map & ((1 << start) - 1)
                    bidx = (m & -m).bit_length() - 1
                s_a = pos + 1 + ((bidx - pos - 1) & _MASK)
            # Next non-empty level-1 bucket in the window (p1, p1+256).
            l1_map = self._l1_map
            u_b = None
            if l1_map:
                start = (p1 + 1) & _MASK
                m = l1_map >> start
                if m:
                    b1 = start + ((m & -m).bit_length() - 1)
                else:
                    m = l1_map & ((1 << start) - 1)
                    b1 = (m & -m).bit_length() - 1
                u_b = p1 + 1 + ((b1 - p1 - 1) & _MASK)
            if u_b is not None and (s_a is None or (u_b << 8) <= s_a):
                # The level-1 bucket starts at or before the next level-0
                # slot: cascade it into level-0 first (its entries all
                # land within the new 256-slot window).
                self._pos = (u_b << 8) - 1
                i = u_b & _MASK
                bucket = self._l1[i]
                self._l1[i] = []
                self._l1_map &= ~(1 << i)
                place = self._place
                for entry in bucket:
                    place(entry)
                continue
            if s_a is not None:
                self._pos = s_a
                i = s_a & _MASK
                bucket = self._l0[i]
                self._l0[i] = []
                self._l0_map &= ~(1 << i)
                bucket.sort()
                self._cur = bucket
                self._cur_idx = 0
                return True
            # Both wheel levels empty: jump the cursor toward the far
            # heap's head so the migration loop above pulls it in.
            if not far:
                return False
            jump = (far[0][0] >> _L0_BITS) - 1
            if jump > self._pos:
                self._pos = jump

    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events in order.

        Parameters
        ----------
        until_ns:
            Stop once the clock would pass this time (the clock is left at
            ``until_ns`` if the schedule drains or only later events remain).
        max_events:
            Safety valve: stop after this many events.  Cancelled events
            that are skipped do not count as processed.
        until:
            Predicate evaluated after every event; return true to stop.

        Returns
        -------
        int
            The number of events processed.
        """
        self._stopped = False
        processed = 0
        # Sentinels let the hot loop test with plain comparisons instead
        # of None checks: ``processed`` only ever increments by one, so
        # ``limit == -1`` is never hit; ``inf`` compares fine with ints.
        limit = -1 if max_events is None else max_events
        horizon = float("inf") if until_ns is None else int(until_ns)
        # The engine.events counter is flushed once per run() (in the
        # finally below) rather than per event; nothing observes it
        # between events of a single run.
        try:
            while True:
                if self._stopped or processed == limit:
                    break
                cur = self._cur
                i = self._cur_idx
                side = self._side
                n = len(cur)
                if i >= n and not side:
                    if not self._refill():
                        if until_ns is not None and self._now_ns < until_ns:
                            self._now_ns = int(until_ns)
                        break
                    continue
                # Drain the current slot.  ``cur`` never grows (in-slot
                # arrivals go to ``side``); only _compact() replaces it,
                # and that is caught by the identity check after each
                # callback.
                while True:
                    if i < n:
                        entry = cur[i]
                        if side and side[0] < entry:
                            entry = heappop(side)
                        else:
                            i += 1
                    elif side:
                        entry = heappop(side)
                    else:
                        self._cur_idx = i
                        break
                    ev = entry[3]
                    if ev is not None and ev.cancelled:
                        # Reap a cancelled entry: it stopped counting as
                        # pending at cancel time and does not count as
                        # processed now.
                        ev.popped = True
                        self._n_cancelled -= 1
                        if ev._pooled:
                            self._release(ev)
                        continue
                    t = entry[0]
                    if t > horizon:
                        # Leave it for a later run().
                        self._cur_idx = i
                        heappush(side, entry)
                        if self._now_ns < until_ns:
                            self._now_ns = int(until_ns)
                        return processed
                    self._now_ns = t
                    self._ndone += 1
                    if ev is not None:
                        ev.popped = True
                        if ev._pooled:
                            self._release(ev)
                    # Persist the cursor before the callback: it may
                    # inspect or compact the schedule (via Event.cancel).
                    self._cur_idx = i
                    entry[2]()
                    processed += 1
                    if until is not None and until():
                        return processed
                    if self._cur is not cur:
                        break  # compacted mid-callback; resync aliases
                    if self._stopped or processed == limit:
                        break
            return processed
        finally:
            self._events_counter.value += processed

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now_ns}ns pending={self.pending()}>"
