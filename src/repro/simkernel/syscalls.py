"""System-call table, dispatch costs, and interposition hooks.

Two of the paper's arguments live here:

* **Cost asymmetry (E3).** A user-level checkpointer extracts kernel-held
  process state through system calls -- ``sbrk(0)`` for heap boundaries,
  ``lseek()`` per descriptor for file offsets, ``sigpending()`` for queued
  signals -- paying two privilege crossings plus dispatch each time, while
  the kernel reads the same fields directly from the task structure.
  Every syscall here charges :meth:`CostModel.syscall_ns` for user-mode
  callers and only the call-specific work for kernel-mode callers.

* **Interposition overhead (E4).** LD_PRELOAD-based packages wrap
  ``mmap``/``munmap``/``dlopen``/``open``/``dup`` to mirror kernel state
  into user-space shadow structures.  Hooks registered per task via
  :meth:`SyscallTable.interpose` run on matching calls, charge their extra
  bookkeeping time, and may record shadow state in ``task.annotations``.

New checkpoint-specific system calls (VMADump's, EPCKPT's, Checkpoint's)
are registered at module load through :meth:`SyscallTable.register`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import SyscallError
from .process import Mode, Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

__all__ = ["SyscallResult", "SyscallTable"]


@dataclass
class SyscallResult:
    """Outcome of a syscall handler: return value + in-kernel work time."""

    value: Any = None
    work_ns: int = 0


#: Handler signature: ``fn(kernel, task, *args) -> SyscallResult``.
Handler = Callable[..., SyscallResult]
#: Interposition hook: ``fn(kernel, task, name, args) -> extra_ns``.
InterposeHook = Callable[["Kernel", Task, str, tuple], int]


class SyscallTable:
    """Name -> handler mapping with per-task interposition."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}
        #: Global hooks (applied to every task) -- rarely used directly.
        self._global_hooks: List[Tuple[frozenset, InterposeHook]] = []

    def register(self, name: str, handler: Handler) -> None:
        """Install (or replace) the handler for ``name``."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a handler (kernel-module unload path)."""
        self._handlers.pop(name, None)

    def has(self, name: str) -> bool:
        """Whether the call exists in this kernel build."""
        return name in self._handlers

    # ------------------------------------------------------------------
    @staticmethod
    def interpose(task: Task, names: List[str], hook: InterposeHook) -> None:
        """Attach an LD_PRELOAD-style wrapper to ``task`` for ``names``."""
        table = task.annotations.setdefault("interpose", {})
        for n in names:
            table.setdefault(n, []).append(hook)

    @staticmethod
    def uninterpose(task: Task) -> None:
        """Remove all wrappers from ``task``."""
        task.annotations.pop("interpose", None)

    # ------------------------------------------------------------------
    def dispatch(
        self, kernel: "Kernel", task: Task, name: str, args: tuple
    ) -> Tuple[SyscallResult, int]:
        """Execute the call; return ``(result, total_duration_ns)``.

        User-mode callers pay the full boundary cost; kernel-mode callers
        (kernel threads, in-context kernel frames) pay dispatch work only,
        reflecting that "all this information is directly accessible in
        the kernel".
        """
        handler = self._handlers.get(name)
        if handler is None:
            raise SyscallError(f"unknown system call {name!r}")
        extra_ns = 0
        hooks = task.annotations.get("interpose", {}).get(name, ())
        for hook in hooks:
            extra_ns += int(hook(kernel, task, name, args))
        result = handler(kernel, task, *args)
        costs = kernel.costs
        if task.mode == Mode.USER:
            duration = costs.syscall_ns(result.work_ns) + extra_ns
            task.acct.mode_switches += 2
        else:
            duration = costs.syscall_dispatch_ns // 4 + result.work_ns + extra_ns
        task.acct.syscalls += 1
        return result, duration
