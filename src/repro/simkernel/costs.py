"""Cost model for the simulated operating-system kernel.

Every quantitative claim in the paper ultimately reduces to the relative
magnitudes of a small set of hardware/OS primitives: the price of crossing
the user/kernel boundary, of switching address spaces (and refilling the
TLB), of taking a page fault, of delivering a signal, and of moving bytes
through the memory system and out to stable storage.  This module makes all
of them explicit, immutable parameters.

Defaults are calibrated to the 2004-2005 era the paper describes (the
hardware studied in its companion feasibility paper [31]): roughly 1 GHz-to-
3 GHz x86 nodes, 4 KiB pages, ~1 us syscall round trips, context switches
dominated by cache effects, ~1.5 GB/s memory copy bandwidth.  Absolute
values are illustrative -- experiments in this repository compare *shapes
and orderings*, which are insensitive to modest recalibration.  Pass a
customized :class:`CostModel` to :class:`repro.simkernel.kernel.Kernel` to
explore other regimes.

All times are integer nanoseconds; all sizes are bytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["CostModel", "NS_PER_US", "NS_PER_MS", "NS_PER_S"]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class CostModel:
    """Immutable collection of primitive costs used by the simulator.

    Attributes are grouped by the subsystem that charges them.  See the
    module docstring for calibration notes.
    """

    # --- CPU / privilege boundary -------------------------------------
    #: One user->kernel or kernel->user privilege transition (half a
    #: syscall round trip): trap entry, register spill, mode change.
    mode_switch_ns: int = 350
    #: Fixed in-kernel dispatch work for a system call, *excluding* the two
    #: mode switches and excluding call-specific work.
    syscall_dispatch_ns: int = 300
    #: Full process context switch: scheduler bookkeeping, register state,
    #: and the indirect cache-pollution cost folded in, as the paper notes
    #: "most CPU's registers must be saved/restored".
    context_switch_ns: int = 5_000
    #: Switching to a different address space (load page-table base).  The
    #: TLB consequences are charged separately via ``tlb_flush_ns`` and
    #: ``tlb_refill_per_entry_ns``.
    address_space_switch_ns: int = 1_200
    #: Flushing the TLB (full invalidation on address-space switch).
    tlb_flush_ns: int = 800
    #: Refilling one TLB entry on first touch after a flush (page-table
    #: walk).  Charged lazily to the task whose working set went cold.
    tlb_refill_per_entry_ns: int = 120
    #: Number of TLB entries modelled (how many refills a full flush
    #: ultimately costs a task with a large working set).
    tlb_entries: int = 64

    # --- Faults, signals, interrupts ----------------------------------
    #: Kernel-side handling of a page fault (exception entry, vma lookup,
    #: PTE update), excluding any page copy and excluding user-level signal
    #: delivery if the fault is reflected to user space.
    page_fault_ns: int = 1_500
    #: Delivering a signal to a *user-level* handler: frame setup on the
    #: user stack plus the eventual ``sigreturn`` -- two extra boundary
    #: crossings beyond the fault/trap itself.
    signal_deliver_user_ns: int = 2_500
    #: Running a *kernel-mode* default action for a signal: no user frame,
    #: no sigreturn; just dispatch inside the kernel.
    signal_deliver_kernel_ns: int = 400
    #: Overhead of fielding one timer/device interrupt (entry + exit),
    #: charged to whatever was running.
    interrupt_overhead_ns: int = 900
    #: Cost of posting a signal (kill(): locate task, queue, wake).
    signal_post_ns: int = 600

    # --- Memory system -------------------------------------------------
    #: Page size.  The paper's incremental checkpointing tracks writes at
    #: this granularity when driven by page protection.
    page_size: int = 4096
    #: Cache-line size -- the granularity at which the hardware proposals
    #: (Revive, SafetyNet) track modifications.
    cache_line_size: int = 64
    #: Memory copy bandwidth in bytes per nanosecond (1.5 => 1.5 GB/s).
    memcpy_bytes_per_ns: float = 1.5
    #: Hashing throughput for probabilistic checkpointing's block digests.
    hash_bytes_per_ns: float = 0.8
    #: Fixed cost to allocate/zero a fresh page (minor fault service).
    page_alloc_ns: int = 900

    # --- Scheduling ----------------------------------------------------
    #: Scheduler tick period (timer interrupt driving time sharing).
    tick_ns: int = 1 * NS_PER_MS
    #: Default time-sharing quantum granted to a task at full priority.
    quantum_ns: int = 50 * NS_PER_MS
    #: Cost of a fork(): duplicating task structures and page tables with
    #: copy-on-write (per-page COW costs are charged later, on write).
    fork_fixed_ns: int = 60_000
    #: Per-VMA-page cost of marking page-table entries COW during fork.
    fork_per_page_ns: int = 35

    # --- Derived helpers -------------------------------------------------
    def memcpy_ns(self, nbytes: int) -> int:
        """Time to copy ``nbytes`` through the memory system."""
        return int(nbytes / self.memcpy_bytes_per_ns)

    def hash_ns(self, nbytes: int) -> int:
        """Time to digest ``nbytes`` (probabilistic checkpoint hashing)."""
        return int(nbytes / self.hash_bytes_per_ns)

    def syscall_ns(self, work_ns: int = 0) -> int:
        """Full cost of one syscall round trip plus ``work_ns`` of work."""
        return 2 * self.mode_switch_ns + self.syscall_dispatch_ns + work_ns

    def tlb_cold_penalty_ns(self, touched_pages: int) -> int:
        """Cost a task pays re-walking page tables after a TLB flush."""
        entries = min(touched_pages, self.tlb_entries)
        return entries * self.tlb_refill_per_entry_ns

    def replace(self, **kwargs: object) -> "CostModel":
        """Return a copy of this model with selected fields overridden."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]

    def pages_for(self, nbytes: int) -> int:
        """Number of pages spanned by ``nbytes`` (ceiling division)."""
        return -(-nbytes // self.page_size)

    def lines_for(self, nbytes: int) -> int:
        """Number of cache lines spanned by ``nbytes``."""
        return -(-nbytes // self.cache_line_size)


DEFAULT_COSTS = CostModel()
