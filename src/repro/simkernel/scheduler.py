"""CPU and scheduler models.

The paper's Section 4.1 argues that *when* checkpoint code runs is decided
by the scheduler: a time-sharing task executing a checkpoint (system-call
or signal-handler approach) "could be suspended by the kernel because
there is another process with a higher priority waiting for the CPU",
while a kernel thread at SCHED_FIFO "will be executed as soon as it wakes
up and it will run until it has completed its work"; the paper further
proposes a *new* priority class above FIFO so nothing can preempt the
checkpoint thread.  All three behaviours are implemented here and measured
by experiment E10.

The time-sharing class is a counter-decay design in the spirit of Linux
2.4 (the kernel generation the surveyed packages targeted): each task
holds a quantum measured in scheduler ticks; the tick decrements the
running task's counter; at zero the task is preempted and requeued, and
its dynamic priority worsens until quanta are recharged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SchedulerError
from .costs import CostModel
from .memory import AddressSpace
from .process import SchedPolicy, Task, TaskState

__all__ = ["CPU", "Scheduler"]


@dataclass
class CPU:
    """One processor: the dispatch unit of the simulation."""

    index: int
    current: Optional[Task] = None
    #: The user address space whose page tables are loaded.  Kernel
    #: threads do not change this (they borrow it) -- the heart of the
    #: paper's TLB argument, experiment E8.
    current_mm: Optional[AddressSpace] = None
    need_resched: bool = False
    #: Interrupts disabled (the paper's mechanism to keep the checkpoint
    #: kernel thread from being stopped by interrupts).
    irq_disabled: bool = False
    #: Interrupt overhead accumulated while a task runs; folded into the
    #: next op's duration.
    irq_backlog_ns: int = 0
    #: IRQs that arrived while disabled, replayed on enable.
    deferred_irqs: int = 0
    idle_since_ns: int = 0


class Scheduler:
    """Global-runqueue multiprocessor scheduler."""

    def __init__(self, costs: CostModel, ncpus: int = 1) -> None:
        if ncpus < 1:
            raise SchedulerError("need at least one CPU")
        self.costs = costs
        self.cpus: List[CPU] = [CPU(index=i) for i in range(ncpus)]
        self._runqueue: List[Task] = []
        #: Ticks in a full quantum for a default-priority task.
        self.quantum_ticks = max(1, costs.quantum_ns // costs.tick_ns)

    # ------------------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        """Make ``task`` runnable (idempotent)."""
        if not task.alive():
            raise SchedulerError(f"cannot enqueue dead task {task!r}")
        task.state = TaskState.READY
        if task not in self._runqueue:
            self._runqueue.append(task)
        # A newly runnable real-time task preempts lower-priority CPUs.
        for cpu in self.cpus:
            if cpu.current is not None and self._beats(task, cpu.current):
                cpu.need_resched = True

    def dequeue(self, task: Task) -> None:
        """Remove ``task`` from the runqueue (block/stop/exit paths).

        This is the paper's "removing the application from its runqueue
        list" data-consistency mechanism when a kernel thread checkpoints
        a running process.
        """
        if task in self._runqueue:
            self._runqueue.remove(task)

    def runqueue_length(self) -> int:
        """Tasks waiting for a CPU (not counting running ones)."""
        return len(self._runqueue)

    @staticmethod
    def _beats(a: Task, b: Task) -> bool:
        """Whether ``a`` should preempt ``b``."""
        return a.effective_prio() < b.effective_prio()

    # ------------------------------------------------------------------
    def pick_next(self, cpu: CPU) -> Optional[Task]:
        """Choose and claim the best runnable task for ``cpu``.

        Real-time classes (CKPT, then FIFO/RR by rt_prio) outrank time
        sharing; ties go to queue order (FIFO within a priority level).
        """
        # Epoch recharge (2.4-style "goodness" cycle): when every runnable
        # time-sharing task has exhausted its counter, everyone gets a
        # fresh quantum.  Without this, a task preempted with leftover
        # ticks would permanently outrank drained ones (or vice versa).
        others = [
            t
            for t in self._runqueue
            if t.state == TaskState.READY and t.policy == SchedPolicy.OTHER
        ]
        if others and all(t.counter_ticks <= 0 for t in others):
            for t in others:
                t.counter_ticks = self._quantum_for(t)
        best: Optional[Task] = None
        for task in self._runqueue:
            if task.state != TaskState.READY:
                continue
            if best is None or self._beats(task, best):
                best = task
        if best is None:
            return None
        self._runqueue.remove(best)
        if best.policy == SchedPolicy.OTHER and best.counter_ticks <= 0:
            best.counter_ticks = self._quantum_for(best)
        best.state = TaskState.RUNNING
        cpu.current = best
        return best

    def _quantum_for(self, task: Task) -> int:
        """Quantum (ticks) granted at recharge; niceness scales it."""
        nice_bias = (120 - task.static_prio) // 4
        return max(1, self.quantum_ticks + nice_bias)

    # ------------------------------------------------------------------
    def on_tick(self) -> None:
        """Scheduler tick: decay running time-sharing quanta.

        Recharges everyone when all runnable OTHER tasks exhausted their
        counters (the 2.4-style epoch recharge).
        """
        for cpu in self.cpus:
            t = cpu.current
            if t is None:
                continue
            if t.policy == SchedPolicy.OTHER:
                t.counter_ticks -= 1
                if t.counter_ticks <= 0:
                    cpu.need_resched = True
            elif t.policy == SchedPolicy.RR:
                t.counter_ticks -= 1
                if t.counter_ticks <= 0:
                    t.counter_ticks = self.quantum_ticks
                    cpu.need_resched = True
        others = [
            t
            for t in self._runqueue
            if t.policy == SchedPolicy.OTHER and t.state == TaskState.READY
        ]
        if others and all(t.counter_ticks <= 0 for t in others):
            for t in others:
                t.counter_ticks = self._quantum_for(t)

    def should_preempt(self, cpu: CPU) -> bool:
        """Checked at op boundaries: does ``cpu.current`` lose the CPU?"""
        t = cpu.current
        if t is None:
            return False
        if cpu.need_resched:
            return True
        return any(
            self._beats(w, t) for w in self._runqueue if w.state == TaskState.READY
        )

    # ------------------------------------------------------------------
    def waiting_better_than(self, task: Task) -> Optional[Task]:
        """The best waiting task that outranks ``task``, if any."""
        best = None
        for w in self._runqueue:
            if w.state == TaskState.READY and self._beats(w, task):
                if best is None or self._beats(w, best):
                    best = w
        return best
