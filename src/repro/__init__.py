"""repro -- a checkpoint/restart laboratory.

Reproduction of *"Current Practice and a Direction Forward in
Checkpoint/Restart Implementations for Fault Tolerance"* (IPPS 2005):
a simulated Linux-like kernel substrate plus behavioural models of every
checkpoint/restart mechanism the paper surveys, the taxonomy (Figure 1)
and feature matrix (Table 1) regenerated from live code, and benchmarks
for each of the paper's quantitative claims.

Layering (import order mirrors dependency order):

* :mod:`repro.simkernel` -- the simulated OS (engine, memory, scheduler,
  signals, syscalls, kernel threads, VFS, modules).
* :mod:`repro.storage` -- stable-storage backends and device models.
* :mod:`repro.stablestore` -- the replicated remote stable-storage
  service (storage-server nodes, quorum client, repair, generation GC).
* :mod:`repro.workloads` -- synthetic applications that drive the kernel.
* :mod:`repro.core` -- checkpoint images, the Checkpointer API, taxonomy,
  feature matrix, the paper's advocated "direction forward" design, and
  autonomic policies.
* :mod:`repro.mechanisms` -- the twelve surveyed packages (and their
  user-level and hardware-level cousins) as concrete Checkpointers.
* :mod:`repro.cluster` -- multi-node machines, failures, parallel jobs,
  migration, coordinated checkpointing.
* :mod:`repro.analysis` -- optimal-interval and reliability mathematics.
* :mod:`repro.reporting` -- ASCII renderers for the tables and figures.
"""

from ._version import __version__
from .errors import (
    CheckpointError,
    ClusterError,
    IncompatibleStateError,
    NodeFailedError,
    ReproError,
    RestartError,
    SimulationError,
    StorageError,
    StorageLostError,
)

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "CheckpointError",
    "RestartError",
    "IncompatibleStateError",
    "StorageError",
    "StorageLostError",
    "ClusterError",
    "NodeFailedError",
]
