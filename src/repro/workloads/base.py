"""Workload framework: restartable synthetic applications.

A workload is a parameterized program generator with a *restart
contract*: the kernel counts completed main-program ops, a checkpoint
records that count, and on restart the program is rebuilt to resume at an
iteration boundary at or before the recorded count (memory state comes
from the image, not from replay).  Workloads therefore structure their
main loop as fixed-size iterations.

The write *pattern* is the independent variable of the incremental-
checkpointing experiments (E5, E6, E14): the paper notes "the reduction
in the size of the checkpoint data depends strongly on the application".
"""

from __future__ import annotations

from typing import Dict, Generator, Iterator, Optional

import numpy as np

from ..errors import WorkloadError
from ..simkernel import Kernel, Task, ops
from ..simkernel.memory import page_checksum

__all__ = ["Workload", "memory_digest"]


def memory_digest(task: Task) -> Dict[str, Dict[int, int]]:
    """Checksums of every resident page: {vma_name: {page_index: adler32}}.

    Used to verify byte-exact restores without holding page copies.
    """
    out: Dict[str, Dict[int, int]] = {}
    for vma in task.mm.vmas:
        pages = {}
        for pidx in vma.present_pages():
            pages[int(pidx)] = page_checksum(vma.pages[int(pidx)])
        out[vma.name] = pages
    return out


class Workload:
    """Base class: a restartable iterative application.

    Subclasses override :meth:`setup` (run once, before iteration 0;
    must emit exactly :attr:`setup_ops` ops) and :meth:`iteration`
    (must emit exactly :attr:`ops_per_iteration` ops each call).

    Parameters
    ----------
    iterations:
        Total main-loop iterations before exit.
    heap_bytes:
        Size of the heap VMA the workload writes into.
    compute_ns:
        CPU time burned per iteration (between writes).
    seed:
        Per-workload RNG seed (patterns are deterministic in it).
    """

    #: Ops emitted by :meth:`setup`.  Subclasses with setup must match.
    setup_ops: int = 0
    #: Ops emitted per :meth:`iteration` call.  Must be constant.
    ops_per_iteration: int = 1

    def __init__(
        self,
        iterations: int = 100,
        heap_bytes: int = 4 * 1024 * 1024,
        compute_ns: int = 50_000,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        self.iterations = iterations
        self.heap_bytes = heap_bytes
        self.compute_ns = compute_ns
        self.seed = seed
        self.name = name or type(self).__name__

    # ------------------------------------------------------------------
    def setup(self, task: Task) -> Iterator[ops.Op]:
        """One-time initialization ops (open files, handlers...)."""
        return iter(())

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        """Ops for iteration ``it`` -- exactly ``ops_per_iteration`` of them."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def align_step(self, step: int) -> int:
        """Round an op count down to the nearest resumable boundary."""
        if step < self.setup_ops:
            return 0
        body = step - self.setup_ops
        return self.setup_ops + (body // self.ops_per_iteration) * self.ops_per_iteration

    def iteration_of_step(self, step: int) -> int:
        """Main-loop iteration index corresponding to an op count."""
        if step < self.setup_ops:
            return 0
        return (step - self.setup_ops) // self.ops_per_iteration

    @staticmethod
    def _forward(inner) -> Generator:
        """Delegate to ``inner`` forwarding send() values; returns op count.

        A plain ``for op in inner: yield op`` would swallow the values the
        kernel sends back into the program (syscall results), so setup and
        iteration bodies are driven through this shim via ``yield from``.
        """
        count = 0
        send = None
        while True:
            try:
                op = inner.send(send) if hasattr(inner, "send") else next(inner)
            except StopIteration:
                return count
            count += 1
            send = yield op

    def program_factory(self, task: Task, start_step: int) -> Generator:
        """Build the op generator resuming at ``start_step`` (aligned)."""
        aligned = self.align_step(start_step)

        def gen():
            if aligned == 0:
                emitted = yield from self._forward(iter(self.setup(task)))
                if emitted != self.setup_ops:
                    raise WorkloadError(
                        f"{self.name}: setup emitted {emitted} ops, "
                        f"declared setup_ops={self.setup_ops}"
                    )
                start_it = 0
            else:
                start_it = self.iteration_of_step(aligned)
            for it in range(start_it, self.iterations):
                count = yield from self._forward(iter(self.iteration(task, it)))
                if count != self.ops_per_iteration:
                    raise WorkloadError(
                        f"{self.name}: iteration {it} emitted {count} ops, "
                        f"declared ops_per_iteration={self.ops_per_iteration}"
                    )
            yield ops.Exit(code=0)

        return gen()

    # ------------------------------------------------------------------
    def spawn(self, kernel: Kernel, name: Optional[str] = None, **spawn_kw) -> Task:
        """Create the process running this workload on ``kernel``."""
        task = kernel.spawn_process(
            name or self.name,
            self.program_factory,
            heap_bytes=self.heap_bytes,
            **spawn_kw,
        )
        task.annotations["workload"] = self
        return task

    # ------------------------------------------------------------------
    def rng_for_iteration(self, it: int) -> np.random.Generator:
        """Deterministic per-iteration RNG (restart-safe patterns)."""
        return np.random.default_rng((self.seed * 1_000_003 + it) & 0x7FFFFFFF)

    def total_pages(self, page_size: int = 4096) -> int:
        """Heap pages this workload can touch."""
        return self.heap_bytes // page_size
