"""Workloads holding kernel-persistent state.

Section 3 of the paper: "user-level implementations are limited to
applications that do not depend o[n] some persistent state belonging to
the operating system, per example sockets, shared memory, PIDs, and IP
address.  In contrast, a system-level approach can virtualizate these
resources."  These workloads hold exactly those resources so experiment
E11 can show which mechanisms restore them (ZAP pods), which fail
cross-machine (plain system-level), and which cannot capture them at all
(user-level).
"""

from __future__ import annotations

from typing import Iterator

from ..simkernel import Task, ops
from .base import Workload

__all__ = ["SocketApp", "SharedMemoryApp", "PidDependentApp"]


class SocketApp(Workload):
    """Opens a TCP connection at setup; the socket must exist on restart."""

    setup_ops = 1
    ops_per_iteration = 2

    def __init__(self, remote_addr: str = "10.0.0.9:5000", local_port: int = 40123, **kw) -> None:
        super().__init__(**kw)
        self.remote_addr = remote_addr
        self.local_port = local_port

    def setup(self, task: Task) -> Iterator[ops.Op]:
        yield ops.Syscall(name="socket_connect", args=(self.remote_addr, self.local_port))

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        yield ops.MemWrite(vma="heap", offset=(it * 4096) % (self.heap_bytes - 512), nbytes=512, seed=it)


class SharedMemoryApp(Workload):
    """Attaches a SysV shared-memory segment and writes through it."""

    setup_ops = 2
    ops_per_iteration = 2

    def __init__(self, shm_key: int = 77, shm_bytes: int = 64 * 1024, **kw) -> None:
        super().__init__(**kw)
        self.shm_key = shm_key
        self.shm_bytes = shm_bytes

    def setup(self, task: Task) -> Iterator[ops.Op]:
        yield ops.Syscall(name="shmget", args=(self.shm_key, self.shm_bytes))
        yield ops.Syscall(name="shmat", args=(self.shm_key,))

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        yield ops.MemWrite(
            vma=f"shm:{self.shm_key}",
            offset=(it * 256) % (self.shm_bytes - 256),
            nbytes=256,
            seed=it,
        )


class PidDependentApp(Workload):
    """Records its own PID in memory at setup and re-checks it forever.

    After a restart that failed to restore the original PID, the check
    breaks -- the failure UCLiK fixes by "restoring the original process
    ID".  The recorded pid is kept in ``task.annotations`` for the test
    harness and (for mechanisms) in the first heap page.
    """

    setup_ops = 2
    ops_per_iteration = 2

    def setup(self, task: Task) -> Iterator[ops.Op]:
        pid = yield ops.Syscall(name="getpid")
        task.annotations["recorded_pid"] = pid
        yield ops.MemWrite(vma="heap", offset=0, nbytes=8, seed=pid)

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        pid = yield ops.Syscall(name="getpid")
        recorded = task.annotations.get("recorded_pid")
        if recorded is not None and pid != recorded:
            task.annotations["pid_mismatch"] = (recorded, pid)
        yield ops.Compute(ns=self.compute_ns)
