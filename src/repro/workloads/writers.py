"""Memory-writer workloads: the dirty-fraction spectrum.

These four writers span the application behaviours the feasibility study
[31] observed across scientific codes: from rewriting the whole working
set every interval (incremental checkpointing saves nothing) to touching
a few bytes on a few pages (page-granularity incremental still saves
little; block/line granularity shines -- experiments E5/E6/E14).
"""

from __future__ import annotations

from typing import Iterator

from ..simkernel import Task, ops
from .base import Workload

__all__ = ["DenseWriter", "SparseWriter", "StreamingWriter", "HotColdWriter"]


class DenseWriter(Workload):
    """Rewrites its entire heap every iteration (dirty fraction ~= 1).

    Worst case for incremental checkpointing: the delta equals the full
    image, so the tracking overhead buys nothing.
    """

    ops_per_iteration = 2

    def __init__(self, chunk_bytes: int = 64 * 1024, **kw) -> None:
        super().__init__(**kw)
        self.chunk_bytes = min(chunk_bytes, self.heap_bytes)

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        # One whole-heap write (the kernel splits it per page).
        yield ops.MemWrite(vma="heap", offset=0, nbytes=self.heap_bytes, seed=it)


class SparseWriter(Workload):
    """Touches a random ``dirty_fraction`` of pages with small writes.

    The regime where page-granularity incremental checkpointing wins big:
    the delta is ``dirty_fraction`` of the full image.
    """

    def __init__(
        self,
        dirty_fraction: float = 0.1,
        write_bytes: int = 128,
        page_size: int = 4096,
        **kw,
    ) -> None:
        super().__init__(**kw)
        if not 0.0 < dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in (0, 1]")
        self.dirty_fraction = dirty_fraction
        self.write_bytes = write_bytes
        self.page_size = page_size
        npages = self.heap_bytes // page_size
        self._touched = max(1, int(round(npages * dirty_fraction)))
        # 1 compute + one small write per touched page
        self.ops_per_iteration = 1 + self._touched

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        rng = self.rng_for_iteration(it)
        npages = self.heap_bytes // self.page_size
        pages = rng.choice(npages, size=self._touched, replace=False)
        for p in sorted(int(x) for x in pages):
            yield ops.MemWrite(
                vma="heap",
                offset=p * self.page_size,
                nbytes=self.write_bytes,
                seed=it * 131 + p,
            )


class StreamingWriter(Workload):
    """Sequentially sweeps a window across the heap (stream/stencil-like).

    Each iteration dirties ``window_bytes`` of fresh pages; over a full
    checkpoint interval the delta is (interval length x window), giving a
    dirty fraction that *grows with the checkpoint interval* -- the
    coupling the adaptive schemes exploit.
    """

    ops_per_iteration = 2

    def __init__(self, window_bytes: int = 256 * 1024, **kw) -> None:
        super().__init__(**kw)
        self.window_bytes = min(window_bytes, self.heap_bytes)

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        offset = (it * self.window_bytes) % (self.heap_bytes - self.window_bytes + 1)
        yield ops.MemWrite(
            vma="heap", offset=offset, nbytes=self.window_bytes, seed=it
        )


class HotColdWriter(Workload):
    """A hot set rewritten every iteration plus occasional cold writes.

    Models the common scientific pattern (solution arrays hot, lookup
    tables cold); the delta converges to the hot-set size.
    """

    def __init__(
        self,
        hot_fraction: float = 0.05,
        cold_touch_every: int = 10,
        page_size: int = 4096,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.page_size = page_size
        self.hot_fraction = hot_fraction
        self.cold_touch_every = cold_touch_every
        self.hot_bytes = max(page_size, int(self.heap_bytes * hot_fraction))
        self.ops_per_iteration = 3

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        yield ops.MemWrite(vma="heap", offset=0, nbytes=self.hot_bytes, seed=it)
        if it % self.cold_touch_every == 0:
            rng = self.rng_for_iteration(it)
            cold_span = self.heap_bytes - self.hot_bytes - self.page_size
            off = self.hot_bytes + int(rng.integers(0, max(1, cold_span)))
            yield ops.MemWrite(vma="heap", offset=off, nbytes=64, seed=it + 7)
        else:
            yield ops.Compute(ns=100)
