"""Multithreaded applications: several tasks sharing one address space.

The paper distinguishes packages that can checkpoint multithreaded
processes (libtckpt at user level; BLCR and "Checkpoint" at system
level) from the single-threaded-only majority.  A thread group here is a
set of tasks sharing the same :class:`AddressSpace` (Linux threads are
exactly that); a correct multithread checkpoint must freeze *all* of
them, capture one memory image plus per-thread register/step state, and
restore every thread.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..simkernel import Kernel, Task, ops
from .base import Workload

__all__ = ["ThreadedWorkload", "spawn_thread_group"]


class ThreadedWorkload(Workload):
    """N threads, each writing a disjoint band of the shared heap.

    Each thread runs the same iteration structure (the restart contract
    holds per thread); thread ``t`` writes band ``t`` so races never
    corrupt the verification pattern.
    """

    ops_per_iteration = 2

    def __init__(self, nthreads: int = 4, band_write_bytes: int = 32 * 1024, **kw) -> None:
        super().__init__(**kw)
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.nthreads = nthreads
        self.band_write_bytes = band_write_bytes

    def thread_factory(self, tid: int):
        """Program factory for thread ``tid``."""
        band = self.heap_bytes // self.nthreads
        base = tid * band
        nbytes = min(self.band_write_bytes, band)

        def factory(task: Task, start_step: int) -> Generator:
            start_it = self.iteration_of_step(self.align_step(start_step))

            def gen():
                for it in range(start_it, self.iterations):
                    yield ops.Compute(ns=self.compute_ns)
                    yield ops.MemWrite(
                        vma="heap",
                        offset=base + (it * 4096) % max(1, band - nbytes),
                        nbytes=nbytes,
                        seed=it * 31 + tid,
                    )
                yield ops.Exit(code=0)

            return gen()

        return factory

    def spawn_group(self, kernel: Kernel, name: Optional[str] = None) -> List[Task]:
        """Spawn all threads sharing one address space."""
        return spawn_thread_group(
            kernel,
            name or self.name,
            [self.thread_factory(t) for t in range(self.nthreads)],
            heap_bytes=self.heap_bytes,
            workload=self,
        )


def spawn_thread_group(
    kernel: Kernel,
    name: str,
    factories,
    heap_bytes: int = 4 * 1024 * 1024,
    workload: Optional[Workload] = None,
) -> List[Task]:
    """Spawn tasks sharing a single address space (a thread group).

    The first task owns the group identity (its pid is the tgid); all
    tasks carry a ``thread_group`` annotation listing the member pids.
    """
    mm = kernel.make_address_space(heap_bytes=heap_bytes)
    tasks: List[Task] = []
    for i, factory in enumerate(factories):
        t = kernel.spawn_process(f"{name}/t{i}", factory, mm=mm)
        if workload is not None:
            t.annotations["workload"] = workload
        t.annotations["thread_index"] = i
        tasks.append(t)
    pids = [t.pid for t in tasks]
    for t in tasks:
        t.annotations["thread_group"] = pids
        t.annotations["tgid"] = pids[0]
    return tasks
