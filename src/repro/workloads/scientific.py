"""Scientific-application proxies.

The paper motivates checkpointing with long-running DOE ASC codes; its
companion study [31] measured incremental checkpointing on codes with
SAGE/SWEEP3D-like behaviour.  These proxies reproduce the relevant
memory traffic shapes on the simulated kernel:

* :class:`StencilKernel` -- an iterative grid sweep (SAGE-like): the
  whole solution array is rewritten each sweep, plus a small halo.
* :class:`WavefrontSweep` -- SWEEP3D-like: each iteration updates one
  diagonal plane, a modest slice of the domain.
* :class:`RandomUpdater` -- GUPS-like scattered single-word updates: the
  pathological case for page-granularity tracking (every page dirty, a
  few bytes changed) and the showcase for block/cache-line granularity.
"""

from __future__ import annotations

from typing import Iterator

from ..simkernel import Task, ops
from .base import Workload

__all__ = ["StencilKernel", "WavefrontSweep", "RandomUpdater"]


class StencilKernel(Workload):
    """Jacobi-style stencil: read neighbourhood, rewrite the grid.

    Dirty fraction per sweep ~= 100% of the grid array, but the grid is
    only part of the address space (code/libs/tables stay clean), so
    incremental checkpointing still helps versus a full-image dump.
    """

    ops_per_iteration = 3

    def __init__(self, grid_fraction: float = 0.6, **kw) -> None:
        super().__init__(**kw)
        self.grid_bytes = max(4096, int(self.heap_bytes * grid_fraction))

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        # Read the previous iterate (touches the grid read-only).
        yield ops.MemRead(vma="heap", offset=0, nbytes=self.grid_bytes)
        yield ops.Compute(ns=self.compute_ns)
        # Rewrite the solution array.
        yield ops.MemWrite(vma="heap", offset=0, nbytes=self.grid_bytes, seed=it)


class WavefrontSweep(Workload):
    """SWEEP3D-like wavefront: one plane of the domain per iteration."""

    ops_per_iteration = 3

    def __init__(self, planes: int = 32, **kw) -> None:
        super().__init__(**kw)
        self.planes = planes
        self.plane_bytes = max(4096, self.heap_bytes // planes)

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        plane = it % self.planes
        offset = plane * self.plane_bytes
        nbytes = min(self.plane_bytes, self.heap_bytes - offset)
        yield ops.MemRead(vma="heap", offset=offset, nbytes=nbytes)
        yield ops.Compute(ns=self.compute_ns)
        yield ops.MemWrite(vma="heap", offset=offset, nbytes=nbytes, seed=it)


class RandomUpdater(Workload):
    """GUPS-like scattered 8-byte updates across the whole heap.

    With ``updates_per_iteration`` random single-word writes, nearly every
    touched *page* is dirty while almost no *bytes* changed: page-level
    incremental checkpointing degenerates to a full dump, while
    block-hashing (probabilistic) and cache-line (hardware) tracking keep
    the delta tiny.  This is experiment E6/E14's centrepiece.
    """

    def __init__(self, updates_per_iteration: int = 64, page_size: int = 4096, **kw) -> None:
        super().__init__(**kw)
        self.updates = updates_per_iteration
        self.page_size = page_size
        self.ops_per_iteration = 1 + updates_per_iteration

    def iteration(self, task: Task, it: int) -> Iterator[ops.Op]:
        yield ops.Compute(ns=self.compute_ns)
        rng = self.rng_for_iteration(it)
        offsets = rng.integers(0, self.heap_bytes - 8, size=self.updates)
        for j, off in enumerate(sorted(int(x) for x in offsets)):
            # Keep each update inside one page (the kernel would split
            # anyway; alignment makes accounting exact).
            off -= off % 8
            yield ops.MemWrite(vma="heap", offset=off, nbytes=8, seed=it * 977 + j)
