"""Synthetic applications that drive the simulated kernel."""

from .base import Workload, memory_digest
from .multithreaded import ThreadedWorkload, spawn_thread_group
from .persistent import PidDependentApp, SharedMemoryApp, SocketApp
from .scientific import RandomUpdater, StencilKernel, WavefrontSweep
from .writers import DenseWriter, HotColdWriter, SparseWriter, StreamingWriter

__all__ = [
    "Workload",
    "memory_digest",
    "DenseWriter",
    "SparseWriter",
    "StreamingWriter",
    "HotColdWriter",
    "StencilKernel",
    "WavefrontSweep",
    "RandomUpdater",
    "SocketApp",
    "SharedMemoryApp",
    "PidDependentApp",
    "ThreadedWorkload",
    "spawn_thread_group",
]
