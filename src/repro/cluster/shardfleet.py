"""Shard-partitioned failure cohorts for million-node fleets.

:class:`ShardFleet` is the sharded sibling of
:class:`~repro.cluster.fleet.NodeFleet`: one instance per shard owns
the contiguous global-id range ``[lo, hi)`` of a fleet partitioned by
:func:`~repro.cluster.partition.shard_ranges`, keeps that slice's
failure/repair process in NumPy arrays, and drives it with one
dispatcher event on the *shard-local* engine.

The difference that makes sharding deterministic is the draw
discipline: where ``NodeFleet`` consumes one sequential generator
stream in node order (so the draws a node sees depend on every node
before it), ``ShardFleet`` uses the **counter-based per-node streams**
of :meth:`~repro.cluster.FailureModel.draw_ttf_indexed` -- draw ``i``
of node ``j`` is a pure function of ``(stream_seed, j, i)``.  Any
partitioning of the cohort therefore reproduces the exact same
transition times, which is what the 1-vs-N-shard byte-identity gate
measures.

Accounting matches ``NodeFleet`` exactly: failure and repair times are
taken from the arrays (exact even under a batch window), downtime
accrues per repair, and the ``fleet.failures`` / ``fleet.repairs``
counters carry the same names so folded exports line up with the
single-shard vocabulary.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import ClusterError
from ..simkernel.costs import NS_PER_S
from ..simkernel.engine import Engine
from .failures import FailureModel
from .fleet import _HORIZON_NS, _NEVER

__all__ = ["ShardFleet", "trial_first_failure_s"]

#: Indexed-draw offset for distributional trials, so probe trials and
#: the engine-driven run (draw indices 0, 1, 2, ...) never overlap.
_TRIAL_DRAW_BASE = 1 << 32


def trial_first_failure_s(
    model: FailureModel, lo: int, hi: int, trial: int
) -> float:
    """Earliest time-to-failure over global nodes ``[lo, hi)`` for one
    distributional trial, straight from the per-node streams.

    Min-folding the per-shard values over a full partition equals the
    single-range value -- float ``min`` is exact -- so E12-style MTBF
    trials shard without any events at all.
    """
    if hi <= lo:
        raise ClusterError("empty node range")
    ids = np.arange(lo, hi, dtype=np.int64)
    ttf = model.draw_ttf_indexed(
        ids, np.full(hi - lo, _TRIAL_DRAW_BASE + trial, dtype=np.int64)
    )
    return float(ttf.min())


class ShardFleet:
    """One shard's slice of a partitioned failure cohort.

    Parameters
    ----------
    engine:
        The shard-local simulation engine.
    lo, hi:
        Global node-id range ``[lo, hi)`` this shard owns.
    model:
        Failure model built with ``stream_seed=`` (indexed draws).
    repair_s:
        Fixed repair time; after it elapses the node re-arms with the
        next draw of its private stream.
    on_fail:
        Optional ``fn(global_ids, fail_times_ns)`` callback invoked
        from the dispatcher with the *global* node ids that just failed
        and their exact failure times (the restart-traffic hook).
    on_repair:
        Optional ``fn(global_ids)`` when nodes come back up.
    batch_window_ns:
        Dispatch quantum, as in ``NodeFleet``: 0 dispatches at exact
        transition times; a positive window coalesces.  Accounting
        stays exact either way, and because the quantization grid is
        absolute (multiples of the window), it is shard-invariant.
    """

    def __init__(
        self,
        engine: Engine,
        lo: int,
        hi: int,
        model: FailureModel,
        repair_s: float = 300.0,
        on_fail: Optional[Callable[[np.ndarray, np.ndarray], None]] = None,
        on_repair: Optional[Callable[[np.ndarray], None]] = None,
        batch_window_ns: int = 0,
    ) -> None:
        if hi <= lo:
            raise ClusterError("shard fleet needs a non-empty node range")
        if repair_s < 0:
            raise ClusterError("repair time cannot be negative")
        if model.stream_seed is None:
            raise ClusterError("ShardFleet needs a model with stream_seed=")
        self.engine = engine
        self.lo = int(lo)
        self.hi = int(hi)
        self.n_nodes = self.hi - self.lo
        self.model = model
        self.repair_ns = min(int(repair_s * NS_PER_S), _HORIZON_NS)
        self.on_fail = on_fail
        self.on_repair = on_repair
        self.batch_window_ns = int(batch_window_ns)

        now = engine.now_ns
        self.global_ids = np.arange(self.lo, self.hi, dtype=np.int64)
        #: Next draw index per node (0 consumed by the initial arming).
        self.draw_count = np.ones(self.n_nodes, dtype=np.int64)
        ttf = model.draw_ttf_indexed(
            self.global_ids, np.zeros(self.n_nodes, dtype=np.int64)
        )
        delta = np.minimum(ttf * NS_PER_S, _HORIZON_NS).astype(np.int64)
        #: Next failure time per node; _NEVER while down.
        self.fail_at_ns = now + delta
        #: Repair-complete time per node; _NEVER while up.
        self.repair_at_ns = np.full(self.n_nodes, _NEVER, dtype=np.int64)
        self.down = np.zeros(self.n_nodes, dtype=bool)

        self.failures = 0
        self.repairs = 0
        self.downtime_ns = 0
        self.first_failure_ns: Optional[int] = None
        self._armed_for = _NEVER
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the dispatcher (idempotent)."""
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop driving transitions (arrays keep their state)."""
        self._running = False

    def up_count(self) -> int:
        """Nodes currently up in this shard's range."""
        return int((~self.down).sum())

    def next_transition_ns(self) -> int:
        """Earliest pending failure or repair (``_NEVER`` if none)."""
        return int(min(self.fail_at_ns.min(), self.repair_at_ns.min()))

    # ------------------------------------------------------------------
    def _arm(self) -> None:
        if not self._running:
            return
        t = self.next_transition_ns()
        if t == _NEVER:
            self._armed_for = _NEVER
            return
        if self.batch_window_ns:
            w = self.batch_window_ns
            t = (t // w + 1) * w
        now = self.engine.now_ns
        if t < now:
            t = now
        if t == self._armed_for:
            return
        self._armed_for = t
        self.engine.at_anon(t, self._dispatch)

    def _dispatch(self) -> None:
        now = self.engine.now_ns
        if not self._running or now < self._armed_for:
            return
        self._armed_for = _NEVER

        rep = self.repair_at_ns <= now
        n_rep = int(rep.sum())
        if n_rep:
            self.repairs += n_rep
            self.downtime_ns += n_rep * self.repair_ns
            self.down[rep] = False
            rtimes = self.repair_at_ns[rep]
            self.repair_at_ns[rep] = _NEVER
            ttf = self.model.draw_ttf_indexed(
                self.global_ids[rep], self.draw_count[rep]
            )
            self.draw_count[rep] += 1
            delta = np.minimum(ttf * NS_PER_S, _HORIZON_NS).astype(np.int64)
            # Anchor the next failure at the *exact* repair-complete
            # time, not the (possibly window-quantized) dispatch time,
            # so transition times are batch-window-invariant.
            self.fail_at_ns[rep] = rtimes + delta
            self.engine.count("fleet.repairs", n_rep)
            if self.on_repair is not None:
                self.on_repair(self.global_ids[rep])

        due = self.fail_at_ns <= now
        n_due = int(due.sum())
        if n_due:
            times = self.fail_at_ns[due]
            if self.first_failure_ns is None:
                self.first_failure_ns = int(times.min())
            self.failures += n_due
            self.down[due] = True
            self.fail_at_ns[due] = _NEVER
            self.repair_at_ns[due] = (
                np.minimum(times, _NEVER - self.repair_ns) + self.repair_ns
            )
            self.engine.count("fleet.failures", n_due)
            if self.on_fail is not None:
                self.on_fail(self.global_ids[due], times)

        self._arm()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardFleet [{self.lo},{self.hi}) up={self.up_count()} "
                f"failures={self.failures}>")
