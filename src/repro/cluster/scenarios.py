"""Shard-invariant scenario factories for the parallel runner.

A *scenario factory* builds one shard's slice of a cluster experiment
against a :class:`~repro.simkernel.parallel.ShardContext`::

    scenario = factory(ctx, params, seed)

and returns an object the window driver polls:

* ``stop()`` (optional) -- evaluated at window barriers; when any shard
  raises it, every shard parks at the same barrier instant;
* ``result()`` (optional) -- a small JSON-able summary the runner
  collects per shard (fold per-shard results with plain min/sum/xor;
  everything byte-identity-gated goes through the obs export instead).

Factories here are module-level functions so the process backend can
ship them to workers as ``"repro.cluster.scenarios:fleet_storm"``
dotted names -- nothing un-picklable crosses a pipe.

Every factory obeys the determinism contract of
:mod:`repro.simkernel.parallel`: state is built from per-node
counter-based RNG streams, partitioning follows
:func:`~repro.cluster.partition.shard_range`, and every cross-machine
interaction goes through ``ctx.send``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import ClusterError
from ..simkernel.parallel import ShardContext
from ..stablestore.shardsvc import ShardStorageService
from .failures import ExponentialFailures, WeibullFailures
from .partition import shard_of, shard_range
from .shardfleet import ShardFleet

__all__ = ["fleet_storm", "fleet_restart_traffic", "ring_traffic"]

_MASK64 = (1 << 64) - 1


def _build_model(params: Dict[str, Any], seed: int):
    kind = params.get("model", "exp")
    mtbf_s = float(params["mtbf_s"])
    if kind == "exp":
        return ExponentialFailures(mtbf_s, stream_seed=seed)
    if kind == "weibull":
        return WeibullFailures(
            mtbf_s, shape=float(params.get("shape", 0.7)), stream_seed=seed
        )
    raise ClusterError(f"unknown failure model {kind!r}")


class _FleetScenario:
    """Failure/repair churn over this shard's node range."""

    def __init__(self, ctx: ShardContext, params: Dict[str, Any], seed: int,
                 on_fail=None) -> None:
        self.ctx = ctx
        lo, hi = shard_range(ctx.shard_id, int(params["n_nodes"]),
                             ctx.n_shards)
        self.fleet = ShardFleet(
            ctx.engine,
            lo,
            hi,
            _build_model(params, seed),
            repair_s=float(params.get("repair_s", 300.0)),
            on_fail=on_fail,
            batch_window_ns=int(params.get("batch_window_ns", 0)),
        )
        self.stop_on_first_failure = bool(
            params.get("stop_on_first_failure", False))
        self.fleet.start()

    def stop(self) -> bool:
        return (self.stop_on_first_failure
                and self.fleet.first_failure_ns is not None)

    def result(self) -> Dict[str, Any]:
        return {
            "failures": self.fleet.failures,
            "repairs": self.fleet.repairs,
            "downtime_ns": self.fleet.downtime_ns,
            "first_failure_ns": self.fleet.first_failure_ns,
            "up": self.fleet.up_count(),
        }


def fleet_storm(ctx: ShardContext, params: Dict[str, Any],
                seed: int) -> _FleetScenario:
    """Pure failure/repair churn -- the E12 workhorse.

    ``params``: ``n_nodes``, ``mtbf_s``, optional ``repair_s``,
    ``model`` (``"exp"``/``"weibull"``), ``shape``, ``batch_window_ns``,
    ``stop_on_first_failure``.  No cross-shard channels: windows exist
    only to give the stop flag a deterministic sampling grid.
    """
    return _FleetScenario(ctx, params, seed)


class _RestartTrafficScenario(_FleetScenario):
    """Fleet churn where every failure triggers a restart-image fetch
    from the sharded stable-storage tier."""

    def __init__(self, ctx: ShardContext, params: Dict[str, Any],
                 seed: int) -> None:
        self.n_nodes = int(params["n_nodes"])
        self.image_bytes = int(params.get("image_bytes", 1 << 26))
        self.store = ShardStorageService(
            ctx,
            n_servers=int(params.get("n_servers", 8)),
            propagation_ns=int(params["propagation_ns"]),
            service_floor_ns=int(params.get("service_floor_ns", 0)),
            ns_per_byte=float(params.get("ns_per_byte", 0.0)),
        )
        super().__init__(ctx, params, seed, on_fail=self._on_fail)

    def _on_fail(self, global_ids, times) -> None:
        for node in global_ids.tolist():
            # Restart image placement is content-addressed elsewhere; for
            # the traffic model a deterministic spread over servers is all
            # that matters.
            self.store.request(
                server_id=node % self.store.n_servers,
                nbytes=self.image_bytes,
                client=node,
                client_shard=shard_of(node, self.n_nodes, self.ctx.n_shards),
            )

    def result(self) -> Dict[str, Any]:
        out = super().result()
        out["acked"] = self.store.acked()
        return out


def fleet_restart_traffic(ctx: ShardContext, params: Dict[str, Any],
                          seed: int) -> _RestartTrafficScenario:
    """Fleet churn plus storage restart traffic -- the E18 workhorse.

    Adds ``n_servers``, ``image_bytes``, ``propagation_ns`` (the
    lookahead source), ``service_floor_ns``, ``ns_per_byte`` to the
    :func:`fleet_storm` parameters.
    """
    return _RestartTrafficScenario(ctx, params, seed)


def _mix(value: int) -> int:
    """Scalar splitmix64 step for ring message payloads."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class _RingScenario:
    """Message ring over all ranks: each rank launches pings that hop
    around the ring, every hop crossing the barrier exchange.

    The order-invariant xor digest over received values is the
    exactly-once check: it matches between shard counts only when every
    message is delivered exactly once with an identical payload.
    """

    KIND = "ring.msg"

    def __init__(self, ctx: ShardContext, params: Dict[str, Any],
                 seed: int) -> None:
        self.ctx = ctx
        self.n_ranks = int(params["n_ranks"])
        self.hop_ns = int(params["hop_ns"])
        self.hops = int(params.get("hops", 4))
        self.msgs_per_rank = int(params.get("msgs_per_rank", 1))
        self.spacing_ns = int(params.get("spacing_ns", self.hop_ns))
        self.digest = 0
        self.sent = ctx.engine.metrics.counter("ring.sent")
        self.recv = ctx.engine.metrics.counter("ring.recv")
        ctx.on(self.KIND, self._on_msg)
        lo, hi = shard_range(ctx.shard_id, self.n_ranks, ctx.n_shards)
        for rank in range(lo, hi):
            for m in range(self.msgs_per_rank):
                at = (m * self.n_ranks + rank + 1) * self.spacing_ns
                value = _mix(seed & _MASK64 ^ _mix(rank) ^ _mix(m))
                ctx.engine.at_anon(
                    at,
                    lambda r=rank, v=value: self._launch(r, v),
                )

    def _forward(self, src_rank: int, value: int, hops_left: int) -> None:
        dst = (src_rank + 1) % self.n_ranks
        self.sent.inc()
        self.ctx.send(
            self.KIND,
            {"dst": dst, "value": value, "hops_left": hops_left},
            delay_ns=self.hop_ns,
            dst_shard=shard_of(dst, self.n_ranks, self.ctx.n_shards),
        )

    def _launch(self, rank: int, value: int) -> None:
        self._forward(rank, value, self.hops - 1)

    def _on_msg(self, payload: Dict[str, Any]) -> None:
        self.recv.inc()
        self.digest ^= payload["value"]
        self.ctx.engine.metrics.observe("ring.hop_ns", self.hop_ns)
        if payload["hops_left"] > 0:
            self._forward(payload["dst"], _mix(payload["value"]),
                          payload["hops_left"] - 1)

    def stop(self) -> bool:
        return False

    def result(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "sent": self.sent.value,
            "recv": self.recv.value,
        }


def ring_traffic(ctx: ShardContext, params: Dict[str, Any],
                 seed: int) -> _RingScenario:
    """All-cross-shard message ring -- the E22 stressor.

    ``params``: ``n_ranks``, ``hop_ns`` (the lookahead), optional
    ``hops``, ``msgs_per_rank``, ``spacing_ns``.  Fold per-shard
    digests with xor; ``sum(sent) == sum(recv)`` iff delivery was
    exactly-once and the horizon covered every hop.
    """
    return _RingScenario(ctx, params, seed)
