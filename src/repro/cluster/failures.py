"""Failure processes and MTBF arithmetic.

The paper's motivating arithmetic (Section 1): "because of the
extraordinarily large component count of such machines -- for instance,
the IBM BlueGene/L supercomputer currently under construction will have
65,536 nodes -- their mean time between failures (MTBF) may be orders of
magnitude shorter than the execution times of the applications they are
intended to run."  Experiment E12 reproduces exactly that scaling.

Failures are *fail-stop* [33]: a failed node halts detectably and takes
its processes (and local disk availability) with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..errors import ClusterError
from ..simkernel.costs import NS_PER_S

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "system_mtbf_s",
    "p_survive",
]


def system_mtbf_s(node_mtbf_s: float, n_nodes: int) -> float:
    """System MTBF when any of ``n_nodes`` failing is fatal.

    With independent exponential node lifetimes the system failure
    process is Poisson with rate ``n / node_mtbf``.
    """
    if n_nodes < 1:
        raise ClusterError("need at least one node")
    return node_mtbf_s / n_nodes


def p_survive(duration_s: float, node_mtbf_s: float, n_nodes: int) -> float:
    """Probability an ``n_nodes`` job runs ``duration_s`` with no failure."""
    lam = n_nodes / node_mtbf_s
    return math.exp(-lam * duration_s)


#: Splitmix64 constants for the counter-based per-node streams.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_NODE_SALT = np.uint64(0xD1B54A32D192ED03)
_DRAW_SALT = np.uint64(0x8CB92BA72F3D8DD7)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finisher (full avalanche on uint64)."""
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


def indexed_uniforms(
    stream_seed: int, node_ids: np.ndarray, draw_index: np.ndarray
) -> np.ndarray:
    """Counter-based uniforms: draw ``i`` of node ``j`` is a pure
    function of ``(stream_seed, j, i)``.

    This is the per-node RNG substream discipline the sharded fleet
    runs on: because a node's stream never depends on *which other
    nodes share its generator*, any partitioning of the cohort across
    shards reproduces the single-shard draws exactly -- no stream
    jumping, no draw-order coupling.  Values are in ``[0, 1)`` with 53
    bits of precision.
    """
    with np.errstate(over="ignore"):
        x = (
            np.uint64(stream_seed & 0xFFFFFFFFFFFFFFFF) * _GOLDEN
            ^ node_ids.astype(np.uint64) * _NODE_SALT
            ^ draw_index.astype(np.uint64) * _DRAW_SALT
        )
    return (_mix64(x) >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


class FailureModel:
    """Base class: draws per-node times-to-failure (seconds).

    ``stream_seed`` opts the model into the *indexed* (counter-based)
    per-node streams used by the sharded fleet path
    (:meth:`draw_ttf_indexed`); the sequential ``rng`` stream is
    untouched by indexed draws, so the two disciplines never perturb
    each other.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        stream_seed: Optional[int] = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stream_seed = stream_seed

    def draw_ttf_s(self) -> float:
        """Sample one time-to-failure, in seconds."""
        raise NotImplementedError

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """Sample ``n`` independent times-to-failure as a float array.

        Subclasses override this with a single vectorized draw.  For the
        NumPy distributions used here a size-``n`` draw consumes the
        generator stream exactly like ``n`` scalar draws, so scalar and
        vector paths produce identical samples from the same seed (the
        cohort/per-node agreement tests rely on this).
        """
        return np.array([self.draw_ttf_s() for _ in range(n)], dtype=np.float64)

    def _indexed_u(self, node_ids: np.ndarray, draw_index: np.ndarray) -> np.ndarray:
        if self.stream_seed is None:
            raise ClusterError(
                "indexed draws need a model built with stream_seed="
            )
        ids = np.asarray(node_ids, dtype=np.int64)
        idx = np.asarray(draw_index, dtype=np.int64)
        if idx.shape != ids.shape:
            idx = np.broadcast_to(idx, ids.shape)
        return indexed_uniforms(self.stream_seed, ids, idx)

    def draw_ttf_indexed(
        self, node_ids: np.ndarray, draw_index: np.ndarray
    ) -> np.ndarray:
        """Times-to-failure from the counter-based per-node streams.

        ``draw_index[k]`` selects which draw of node ``node_ids[k]``'s
        private stream to take (0 for the initial arming, 1 after the
        first repair, ...).  Shard-partitioning the ids in any way
        reproduces the exact same values, which is the property the
        1-vs-N-shard byte-identity gate rests on.
        """
        raise NotImplementedError

    def draws(self, n: int) -> Iterator[float]:
        """Sample ``n`` independent times-to-failure."""
        for _ in range(n):
            yield self.draw_ttf_s()


class ExponentialFailures(FailureModel):
    """Memoryless node failures with the given MTBF."""

    def __init__(
        self,
        mtbf_s: float,
        rng: Optional[np.random.Generator] = None,
        stream_seed: Optional[int] = None,
    ) -> None:
        super().__init__(rng, stream_seed=stream_seed)
        if mtbf_s <= 0:
            raise ClusterError("MTBF must be positive")
        self.mtbf_s = mtbf_s

    def draw_ttf_s(self) -> float:
        return float(self.rng.exponential(self.mtbf_s))

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """One vectorized draw for the whole cohort (same stream as
        ``n`` scalar draws)."""
        return self.rng.exponential(self.mtbf_s, size=n)

    def draw_ttf_indexed(
        self, node_ids: np.ndarray, draw_index: np.ndarray
    ) -> np.ndarray:
        """Inverse-CDF exponential on the per-node uniform streams."""
        u = self._indexed_u(node_ids, draw_index)
        # -log1p(-u): exact for u in [0, 1), never log(0).
        return -self.mtbf_s * np.log1p(-u)


class WeibullFailures(FailureModel):
    """Weibull node failures (shape < 1: infant mortality, the empirically
    observed regime on large clusters)."""

    def __init__(
        self,
        mtbf_s: float,
        shape: float = 0.7,
        rng: Optional[np.random.Generator] = None,
        stream_seed: Optional[int] = None,
    ) -> None:
        super().__init__(rng, stream_seed=stream_seed)
        if mtbf_s <= 0 or shape <= 0:
            raise ClusterError("MTBF and shape must be positive")
        self.shape = shape
        # Scale chosen so the mean equals mtbf_s.
        self.scale = mtbf_s / math.gamma(1.0 + 1.0 / shape)
        self.mtbf_s = mtbf_s

    def draw_ttf_s(self) -> float:
        return float(self.scale * self.rng.weibull(self.shape))

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """One vectorized draw for the whole cohort (same stream as
        ``n`` scalar draws)."""
        return self.scale * self.rng.weibull(self.shape, size=n)

    def draw_ttf_indexed(
        self, node_ids: np.ndarray, draw_index: np.ndarray
    ) -> np.ndarray:
        """Inverse-CDF Weibull on the per-node uniform streams."""
        u = self._indexed_u(node_ids, draw_index)
        return self.scale * (-np.log1p(-u)) ** (1.0 / self.shape)
