"""Failure processes and MTBF arithmetic.

The paper's motivating arithmetic (Section 1): "because of the
extraordinarily large component count of such machines -- for instance,
the IBM BlueGene/L supercomputer currently under construction will have
65,536 nodes -- their mean time between failures (MTBF) may be orders of
magnitude shorter than the execution times of the applications they are
intended to run."  Experiment E12 reproduces exactly that scaling.

Failures are *fail-stop* [33]: a failed node halts detectably and takes
its processes (and local disk availability) with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..errors import ClusterError
from ..simkernel.costs import NS_PER_S

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "system_mtbf_s",
    "p_survive",
]


def system_mtbf_s(node_mtbf_s: float, n_nodes: int) -> float:
    """System MTBF when any of ``n_nodes`` failing is fatal.

    With independent exponential node lifetimes the system failure
    process is Poisson with rate ``n / node_mtbf``.
    """
    if n_nodes < 1:
        raise ClusterError("need at least one node")
    return node_mtbf_s / n_nodes


def p_survive(duration_s: float, node_mtbf_s: float, n_nodes: int) -> float:
    """Probability an ``n_nodes`` job runs ``duration_s`` with no failure."""
    lam = n_nodes / node_mtbf_s
    return math.exp(-lam * duration_s)


class FailureModel:
    """Base class: draws per-node times-to-failure (seconds)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def draw_ttf_s(self) -> float:
        """Sample one time-to-failure, in seconds."""
        raise NotImplementedError

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """Sample ``n`` independent times-to-failure as a float array.

        Subclasses override this with a single vectorized draw.  For the
        NumPy distributions used here a size-``n`` draw consumes the
        generator stream exactly like ``n`` scalar draws, so scalar and
        vector paths produce identical samples from the same seed (the
        cohort/per-node agreement tests rely on this).
        """
        return np.array([self.draw_ttf_s() for _ in range(n)], dtype=np.float64)

    def draws(self, n: int) -> Iterator[float]:
        """Sample ``n`` independent times-to-failure."""
        for _ in range(n):
            yield self.draw_ttf_s()


class ExponentialFailures(FailureModel):
    """Memoryless node failures with the given MTBF."""

    def __init__(self, mtbf_s: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng)
        if mtbf_s <= 0:
            raise ClusterError("MTBF must be positive")
        self.mtbf_s = mtbf_s

    def draw_ttf_s(self) -> float:
        return float(self.rng.exponential(self.mtbf_s))

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """One vectorized draw for the whole cohort (same stream as
        ``n`` scalar draws)."""
        return self.rng.exponential(self.mtbf_s, size=n)


class WeibullFailures(FailureModel):
    """Weibull node failures (shape < 1: infant mortality, the empirically
    observed regime on large clusters)."""

    def __init__(
        self,
        mtbf_s: float,
        shape: float = 0.7,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng)
        if mtbf_s <= 0 or shape <= 0:
            raise ClusterError("MTBF and shape must be positive")
        self.shape = shape
        # Scale chosen so the mean equals mtbf_s.
        self.scale = mtbf_s / math.gamma(1.0 + 1.0 / shape)
        self.mtbf_s = mtbf_s

    def draw_ttf_s(self) -> float:
        return float(self.scale * self.rng.weibull(self.shape))

    def draw_ttf_array(self, n: int) -> np.ndarray:
        """One vectorized draw for the whole cohort (same stream as
        ``n`` scalar draws)."""
        return self.scale * self.rng.weibull(self.shape, size=n)
