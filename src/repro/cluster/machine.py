"""Multi-node cluster: nodes, shared clock, fail-stop injection.

Every node runs its own simulated kernel, all on one shared
:class:`~repro.simkernel.engine.Engine` so virtual time is global.  A
node failure halts its kernel (fail-stop), kills its processes, and
makes its local disk unreachable until repair -- exactly the storage
semantics behind Table 1's local-vs-remote distinction (E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..errors import ClusterError, NodeFailedError
from ..simkernel import Kernel, TaskState
from ..simkernel.costs import CostModel, DEFAULT_COSTS, NS_PER_MS, NS_PER_S
from ..simkernel.engine import Engine
from ..stablestore import (
    ContentStore,
    ErasureRepairer,
    ErasureStore,
    HierarchicalStore,
    ReplicatedStore,
    ReplicationRepairer,
    StorageCluster,
    StorageLevel,
)
from ..storage import LocalDiskStorage, RemoteStorage
from ..storage.backends import MemoryStorage, StorageBackend
from ..storage.devices import memory_device
from .failures import FailureModel
from .fleet import NodeFleet

__all__ = ["NodeState", "ClusterNode", "Cluster"]


class NodeState(str, Enum):
    """Fail-stop lifecycle of a node."""

    UP = "up"
    FAILED = "failed"
    REBOOTING = "rebooting"


class ClusterNode:
    """One machine: a kernel plus its local disk.

    The node's *remote* storage handle is injected by the cluster --
    remote stable storage is a shared service, not per-machine hardware,
    which is precisely what lets the replicated
    :mod:`repro.stablestore` service swap in behind every node at once.
    """

    def __init__(
        self,
        node_id: int,
        engine: Engine,
        ncpus: int = 2,
        costs: CostModel = DEFAULT_COSTS,
        remote_storage: Optional[StorageBackend] = None,
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.ncpus = ncpus
        self.costs = costs
        self.state = NodeState.UP
        self.kernel = Kernel(ncpus=ncpus, costs=costs, engine=engine, node_id=node_id)
        self.local_storage = LocalDiskStorage(node_id=node_id)
        self.remote_storage = remote_storage
        self.failed_at_ns: Optional[int] = None
        self.failures = 0

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop: halt the kernel, kill processes, lose disk access."""
        if self.state == NodeState.FAILED:
            return
        self.state = NodeState.FAILED
        self.failed_at_ns = self.engine.now_ns
        self.failures += 1
        self.kernel.halt()
        killed = 0
        for task in list(self.kernel.tasks.values()):
            if task.alive():
                task.state = TaskState.DEAD
                task.exit_code = -1
                killed += 1
        self.local_storage.mark_node_failed()
        self.engine.tracer.instant("node.fail", node=self.node_id, tasks_killed=killed)

    def repair(self, disk_survived: bool = True) -> None:
        """Reboot the node with a fresh kernel (old processes are gone)."""
        self.state = NodeState.UP
        self.kernel = Kernel(
            ncpus=self.ncpus, costs=self.costs, engine=self.engine, node_id=self.node_id
        )
        self.local_storage.mark_node_recovered(data_survived=disk_survived)
        self.failed_at_ns = None
        self.engine.count("node_repairs")
        self.engine.tracer.instant(
            "node.repair", node=self.node_id, disk_survived=disk_survived
        )

    @property
    def up(self) -> bool:
        """Whether the node is serving."""
        return self.state == NodeState.UP

    def require_up(self) -> "ClusterNode":
        """Raise unless the node is up."""
        if not self.up:
            raise NodeFailedError(f"node {self.node_id} is {self.state.value}")
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} {self.state.value}>"


class _NodeVector:
    """Lazy node storage for BlueGene/L-scale clusters.

    Behaves like the eager node list for indexing (``cluster.nodes[i]``
    materializes node ``i`` on first touch) but only ever *iterates*
    over materialized nodes -- a 65,536-node cluster where a job touches
    four nodes builds four kernels, not 65,536.  Unmaterialized nodes
    are implicitly UP; their failure churn belongs to a
    :class:`NodeFleet` cohort, not to per-node kernels.
    """

    def __init__(self, cluster: "Cluster", n_total: int) -> None:
        self._cluster = cluster
        self._n_total = n_total
        self._nodes: Dict[int, ClusterNode] = {}

    def __len__(self) -> int:
        return self._n_total

    def __getitem__(self, node_id: int) -> ClusterNode:
        if isinstance(node_id, slice):
            return [self[i] for i in range(*node_id.indices(self._n_total))]
        if node_id < 0:
            node_id += self._n_total
        if not 0 <= node_id < self._n_total:
            raise IndexError(node_id)
        node = self._nodes.get(node_id)
        if node is None:
            c = self._cluster
            node = ClusterNode(
                node_id,
                c.engine,
                ncpus=c.ncpus_per_node,
                costs=c.costs,
                remote_storage=c.remote_storage,
            )
            self._nodes[node_id] = node
            # Spares live beyond the fleet's compute cohort.
            if c.fleet is not None and node_id < c.fleet.n_nodes:
                c.fleet.detach([node_id])
        return node

    def __iter__(self):
        """Materialized nodes only, in id order."""
        return iter(sorted(self._nodes.values(), key=lambda n: n.node_id))

    def materialized(self, node_id: int) -> bool:
        return node_id in self._nodes

    def materialized_count(self) -> int:
        return len(self._nodes)


class Cluster:
    """A set of nodes sharing one virtual clock plus remote storage.

    Parameters
    ----------
    n_nodes:
        Compute nodes (allocatable to jobs).
    n_spares:
        Extra nodes kept idle for restart-after-failure placement.
    storage_servers:
        When > 0, the monolithic-infallible ``RemoteStorage`` default is
        replaced by the :mod:`repro.stablestore` service: that many
        fail-stop storage-server nodes on this cluster's clock behind a
        quorum-replicated client (experiment E19).
    replication / write_quorum / read_quorum:
        Replica placement and quorum sizes for the service (ignored
        without ``storage_servers``).
    storage_repair:
        Run the background re-replication repairer (service mode only).
    content_dedup:
        Wrap the replicated service in a content-addressed
        :class:`~repro.stablestore.ContentStore` so byte-identical page
        payloads cost one quorum write per *content*, not per generation
        (experiment E20; service mode only).
    storage_hierarchy:
        When set (service mode only), compose the stable-storage tiers
        into a :class:`~repro.stablestore.HierarchicalStore` and hand
        *that* to every node (experiment E23).  Spec keys, all optional:

        - ``scratch_bytes`` -- add a capacity-bound node-local RAM
          scratch level (fastest, not durable);
        - ``partner_rf`` -- add the quorum-replicated service as the
          partner level, overriding ``replication`` with this factor;
        - ``erasure`` -- a ``(k, m)`` tuple: add a Reed-Solomon
          erasure-coded level on its *own* ``k+m``-server group (a
          separate failure domain from the partner tier);
        - ``erasure_servers`` -- group size (default ``k + m``);
        - ``erasure_policy`` -- ``"through"`` or ``"back"`` (default);
        - ``writeback_delay_ns`` -- delay before write-back copies;
        - ``promote_on_access`` -- copy reads into faster levels;
        - ``delta_updates`` -- route dirty-delta stores through the
          erasure tier's O(dirty) partial-stripe update (default on).

        A degenerate ``{"partner_rf": N}`` spec is the plain replicated
        path behind a one-level hierarchy (charge-for-charge identical;
        only ``hierarchy.*`` metrics are added).
    lazy_nodes:
        Build :class:`ClusterNode` machines on first touch instead of
        up front, so a 65,536-node cluster only pays for the nodes a
        job or failure actually reaches.  Iteration over
        ``cluster.nodes`` then covers materialized nodes only;
        unmaterialized nodes are implicitly up, with their failure
        churn handled by an attached :class:`NodeFleet` cohort (see
        :meth:`attach_fleet`).
    """

    def __init__(
        self,
        n_nodes: int,
        n_spares: int = 0,
        ncpus_per_node: int = 2,
        seed: int = 0,
        costs: CostModel = DEFAULT_COSTS,
        storage_servers: int = 0,
        replication: int = 2,
        write_quorum: Optional[int] = None,
        read_quorum: int = 1,
        storage_repair: bool = True,
        content_dedup: bool = False,
        storage_hierarchy: Optional[Dict[str, Any]] = None,
        lazy_nodes: bool = False,
    ) -> None:
        if n_nodes < 1:
            raise ClusterError("cluster needs at least one node")
        self.engine = Engine(seed=seed)
        self.costs = costs
        self.ncpus_per_node = ncpus_per_node
        #: Vectorized background-churn cohort (see :meth:`attach_fleet`).
        self.fleet: Optional[NodeFleet] = None
        self._promote_on_failure = False
        self.storage_cluster: Optional[StorageCluster] = None
        self.storage_repairer: Optional[ReplicationRepairer] = None
        #: The bare quorum client when the service is on (repair and
        #: replication reporting always talk to this layer).
        self.replicated_store: Optional[ReplicatedStore] = None
        self.content_store: Optional[ContentStore] = None
        self.hierarchy_store: Optional[HierarchicalStore] = None
        self.erasure_cluster: Optional[StorageCluster] = None
        self.erasure_store: Optional[ErasureStore] = None
        self.erasure_repairer: Optional[ErasureRepairer] = None
        if storage_hierarchy is not None and storage_servers <= 0:
            raise ClusterError("storage_hierarchy requires storage_servers > 0")
        if storage_servers > 0:
            hier_spec = (
                dict(storage_hierarchy) if storage_hierarchy is not None else None
            )
            if hier_spec is not None and hier_spec.get("partner_rf"):
                replication = int(hier_spec["partner_rf"])
            self.storage_cluster = StorageCluster(self.engine, n_servers=storage_servers)
            self.replicated_store = ReplicatedStore(
                self.storage_cluster,
                replication=replication,
                write_quorum=write_quorum,
                read_quorum=read_quorum,
            )
            self.remote_storage: StorageBackend = self.replicated_store
            if hier_spec is not None:
                self._build_hierarchy(hier_spec, storage_repair)
            if content_dedup:
                self.content_store = ContentStore(
                    self.remote_storage, metrics=self.engine.metrics
                )
                self.remote_storage = self.content_store
            if storage_repair:
                self.storage_repairer = ReplicationRepairer(
                    self.replicated_store, self.engine
                )
        else:
            self.remote_storage = RemoteStorage()
        if lazy_nodes:
            self.nodes = _NodeVector(self, n_nodes + n_spares)
        else:
            self.nodes = [
                ClusterNode(
                    i,
                    self.engine,
                    ncpus=ncpus_per_node,
                    costs=costs,
                    remote_storage=self.remote_storage,
                )
                for i in range(n_nodes + n_spares)
            ]
        self.lazy_nodes = lazy_nodes
        self.n_compute = n_nodes
        self._spares: List[int] = list(range(n_nodes, n_nodes + n_spares))
        self._failure_watchers: List[Callable[[ClusterNode], None]] = []

    # ------------------------------------------------------------------
    def _build_hierarchy(self, spec: Dict[str, Any], storage_repair: bool) -> None:
        """Assemble the multi-level store from a ``storage_hierarchy`` spec."""
        scratch_bytes = spec.pop("scratch_bytes", None)
        partner_rf = spec.pop("partner_rf", None)
        erasure = spec.pop("erasure", None)
        erasure_servers = spec.pop("erasure_servers", None)
        erasure_policy = spec.pop("erasure_policy", "back")
        writeback_delay_ns = spec.pop("writeback_delay_ns", 2 * NS_PER_MS)
        promote_on_access = spec.pop("promote_on_access", True)
        delta_updates = spec.pop("delta_updates", True)
        if spec:
            raise ClusterError(
                f"unknown storage_hierarchy keys: {sorted(spec)}"
            )
        levels: List[StorageLevel] = []
        if scratch_bytes:
            levels.append(
                StorageLevel(
                    "scratch",
                    MemoryStorage(device=memory_device("ram[scratch]")),
                    capacity_bytes=int(scratch_bytes),
                )
            )
        if partner_rf:
            levels.append(StorageLevel("partner", self.replicated_store))
        if erasure is not None:
            k, m = (int(erasure[0]), int(erasure[1]))
            n_group = int(erasure_servers) if erasure_servers else k + m
            self.erasure_cluster = StorageCluster(self.engine, n_servers=n_group)
            self.erasure_store = ErasureStore(
                self.erasure_cluster, data_shards=k, parity_shards=m
            )
            levels.append(
                StorageLevel(
                    "erasure",
                    self.erasure_store,
                    write=erasure_policy,
                    writeback_delay_ns=writeback_delay_ns,
                )
            )
            if storage_repair:
                self.erasure_repairer = ErasureRepairer(
                    self.erasure_store, self.engine
                )
        if not levels:
            raise ClusterError(
                "storage_hierarchy spec built no levels (set scratch_bytes, "
                "partner_rf and/or erasure)"
            )
        self.hierarchy_store = HierarchicalStore(
            self.engine,
            levels,
            promote_on_access=promote_on_access,
            delta_updates=bool(delta_updates),
        )
        self.remote_storage = self.hierarchy_store

    def fail_erasure_server(self, server_id: int) -> None:
        """Inject a fail-stop on one erasure-group server, now."""
        if self.erasure_cluster is None:
            raise ClusterError("cluster was built without an erasure level")
        self.erasure_cluster.fail_server(server_id)

    def repair_erasure_server(self, server_id: int, data_survived: bool = True) -> None:
        """Bring a failed erasure-group server back."""
        if self.erasure_cluster is None:
            raise ClusterError("cluster was built without an erasure level")
        self.erasure_cluster.repair_server(server_id, data_survived=data_survived)

    def node(self, node_id: int) -> ClusterNode:
        """Node by id."""
        return self.nodes[node_id]

    def compute_nodes(self) -> List[ClusterNode]:
        """The non-spare nodes.

        On a lazy cluster this *materializes* every compute node --
        fine for small N, defeating the point at BlueGene/L scale.
        Large sweeps should place jobs with explicit ``node_ids`` and
        leave the rest of the cohort to the fleet.
        """
        return self.nodes[: self.n_compute]

    def up_nodes(self) -> List[ClusterNode]:
        """Every currently-serving node (materialized only, when lazy)."""
        return [n for n in self.nodes if n.up]

    def materialized_nodes(self) -> int:
        """How many nodes have been built as full machines."""
        if isinstance(self.nodes, _NodeVector):
            return self.nodes.materialized_count()
        return len(self.nodes)

    def _node_up(self, node_id: int) -> bool:
        """Up-check that does not materialize lazy nodes (an untouched
        node is implicitly up)."""
        if isinstance(self.nodes, _NodeVector) and not self.nodes.materialized(node_id):
            return True
        return self.nodes[node_id].up

    def claim_spare(self) -> ClusterNode:
        """Take a spare for restart placement."""
        while self._spares:
            nid = self._spares.pop(0)
            if self._node_up(nid):
                return self.nodes[nid]
        raise ClusterError("no spare nodes available")

    def spares_left(self) -> int:
        """Spare nodes still unclaimed and up."""
        return sum(1 for nid in self._spares if self._node_up(nid))

    # ------------------------------------------------------------------
    def on_failure(self, fn: Callable[[ClusterNode], None]) -> None:
        """Register a callback fired when any node fails."""
        self._failure_watchers.append(fn)

    def fail_node(self, node_id: int) -> None:
        """Inject a fail-stop on one node, now."""
        node = self.nodes[node_id]
        if not node.up:
            return
        node.fail()
        self.engine.count("node_failures")
        for fn in list(self._failure_watchers):
            fn(node)

    def fail_storage_server(self, server_id: int) -> None:
        """Inject a fail-stop on one storage-server node, now."""
        if self.storage_cluster is None:
            raise ClusterError("cluster was built without storage servers")
        self.storage_cluster.fail_server(server_id)

    def repair_storage_server(self, server_id: int, data_survived: bool = True) -> None:
        """Bring a failed storage server back."""
        if self.storage_cluster is None:
            raise ClusterError("cluster was built without storage servers")
        self.storage_cluster.repair_server(server_id, data_survived=data_survived)

    def schedule_failures(
        self,
        model: FailureModel,
        node_ids: Optional[List[int]] = None,
        horizon_s: Optional[float] = None,
    ) -> int:
        """Arm each listed node with a sampled time-to-failure.

        Returns how many failures were scheduled (those within the
        horizon).  Only the *first* failure per node is armed; repairs
        may re-arm explicitly.
        """
        ids = node_ids if node_ids is not None else list(range(self.n_compute))
        # One vectorized draw for the whole cohort: identical samples to
        # the historical per-node loop (the NumPy size-n draw consumes
        # the stream like n scalar draws), without touching -- or, on a
        # lazy cluster, materializing -- any node.
        ttf = model.draw_ttf_array(len(ids))
        scheduled = 0
        for nid, ttf_s in zip(ids, ttf.tolist()):
            if horizon_s is not None and ttf_s > horizon_s:
                continue
            delay_ns = int(ttf_s * NS_PER_S)
            self.engine.after(delay_ns, lambda n=nid: self.fail_node(n), label="node-fail")
            scheduled += 1
        return scheduled

    def attach_fleet(
        self,
        model: FailureModel,
        repair_s: float = 300.0,
        batch_window_ns: int = 0,
        promote_on_failure: bool = False,
    ) -> NodeFleet:
        """Drive compute-node failure churn through a vectorized
        :class:`NodeFleet` cohort instead of per-node events.

        Nodes already materialized as full machines are detached from
        the cohort (their failures stay per-node and exact); nodes
        materialized later detach automatically.  With
        ``promote_on_failure`` a cohort failure *promotes* the node --
        it is materialized and fail-stopped for real (watchers fire,
        ``node_failures`` counts), after which the fleet no longer
        drives it.  Otherwise cohort failures are statistical only:
        counted in the fleet's arrays, never building a kernel.
        """
        if self.fleet is not None:
            raise ClusterError("a fleet is already attached")
        self._promote_on_failure = promote_on_failure
        self.fleet = NodeFleet(
            self.engine,
            self.n_compute,
            model,
            repair_s=repair_s,
            on_fail=self._on_fleet_fail,
            batch_window_ns=batch_window_ns,
        )
        if isinstance(self.nodes, _NodeVector):
            built = [nid for nid in range(self.n_compute)
                     if self.nodes.materialized(nid)]
            if built:
                self.fleet.detach(built)
        else:
            # Eager cluster: every node is a real machine already, so a
            # fleet only makes sense as a promotion driver.
            if not promote_on_failure:
                self.fleet.detach(list(range(self.n_compute)))
        self.fleet.start()
        return self.fleet

    def _on_fleet_fail(self, ids, times) -> None:
        if self._promote_on_failure:
            for nid in ids.tolist():
                self.fail_node(nid)

    # ------------------------------------------------------------------
    def run_for(self, duration_ns: int) -> None:
        """Advance the shared clock (all kernels progress)."""
        for node in self.nodes:
            if node.up:
                node.kernel.start()
        self.engine.run(until_ns=self.engine.now_ns + int(duration_ns))

    def run_until(self, predicate: Callable[[], bool], limit_ns: int) -> None:
        """Run until ``predicate`` or the time limit."""
        for node in self.nodes:
            if node.up:
                node.kernel.start()
        self.engine.run(until_ns=self.engine.now_ns + int(limit_ns), until=predicate)
