"""An LSF-like batch manager layer.

The paper observes that in current practice "the common practice to
provide flexibility is by integrating the user-initiation operations
within a batch management software such as [] LSF that initiates the
checkpoint operations automatically.  This software resides in a layer
on top of the operating system."  It then argues this centralization
limits autonomic computing: (1) only systems running the special
software benefit, and (2) the management is centralized, hurting
scalability and fault tolerance.

:class:`BatchManager` is that layer: it owns job submission, triggers
user-initiated checkpoints through whatever mechanism is installed, and
implements administrator workflows (drain a node for maintenance by
checkpoint-then-kill).  Being *centralized*, it lives on a designated
head node; if that node fails, automatic initiation stops -- the
scenario experiment E15/E18 contrasts with in-kernel initiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.checkpointer import Checkpointer, CheckpointRequest
from ..errors import ClusterError
from .job import CheckpointCoordinator, ParallelJob
from .machine import Cluster, ClusterNode

__all__ = ["BatchManager"]


class BatchManager:
    """Centralized cluster management (the LSF analogue)."""

    def __init__(self, cluster: Cluster, head_node_id: int = 0) -> None:
        self.cluster = cluster
        self.head_node_id = head_node_id
        self.jobs: List[ParallelJob] = []
        self.coordinators: Dict[str, CheckpointCoordinator] = {}
        self._drained: List[int] = []

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """The manager functions only while its head node is up."""
        return self.cluster.node(self.head_node_id).up

    def _require_alive(self) -> None:
        if not self.alive:
            raise ClusterError(
                "batch manager head node is down; management unavailable "
                "(the centralization weakness the paper identifies)"
            )

    # ------------------------------------------------------------------
    def submit(
        self,
        workload_factory: Callable[[int], "object"],
        n_ranks: int,
        name: str,
        mechanisms: Optional[Dict[int, Checkpointer]] = None,
        checkpoint_interval_ns: Optional[int] = None,
    ) -> ParallelJob:
        """Submit a job; optionally protect it with periodic checkpoints."""
        self._require_alive()
        job = ParallelJob(self.cluster, workload_factory, n_ranks, name=name)
        self.jobs.append(job)
        if mechanisms is not None and checkpoint_interval_ns is not None:
            coord = CheckpointCoordinator(job, mechanisms, checkpoint_interval_ns)
            coord.start()
            self.coordinators[name] = coord
        return job

    def checkpoint_now(self, name: str) -> List[CheckpointRequest]:
        """Administrator-initiated checkpoint of a whole job."""
        self._require_alive()
        coord = self.coordinators.get(name)
        if coord is None:
            raise ClusterError(f"job {name!r} has no checkpoint coordinator")
        reqs = []
        for rank in coord.job.ranks:
            if rank.task.alive():
                mech = coord.mechanism_for(rank)
                mech.prepare_target(rank.task)
                reqs.append(mech.request_checkpoint(rank.task))
        return reqs

    # ------------------------------------------------------------------
    def drain_node_for_maintenance(self, node_id: int) -> List[CheckpointRequest]:
        """Planned-outage workflow: checkpoint everything on the node.

        The paper: the self-managing entity "should interact with the
        system administrator to carry out some user-initiated tasks such
        as temporary suspension of a long-running application for
        planned system outage or maintenance."  The node's ranks are
        checkpointed and frozen; :meth:`release_node` thaws them.
        """
        self._require_alive()
        node = self.cluster.node(node_id)
        reqs: List[CheckpointRequest] = []
        engine = self.cluster.engine
        for coord in self.coordinators.values():
            for rank in coord.job.ranks:
                if rank.node is node and rank.task.alive():
                    mech = coord.mechanism_for(rank)
                    mech.prepare_target(rank.task)
                    req = mech.request_checkpoint(rank.task)
                    reqs.append(req)

                    # Freeze once the image is durable (the capture path
                    # itself stops/resumes the task; we park it after).
                    def park(req=req, task=rank.task, kernel=node.kernel) -> None:
                        if req.completed_ns is not None:
                            if task.alive():
                                kernel.stop_task(task)
                        else:
                            engine.after(1_000_000, park)

                    engine.after(1_000_000, park)
        self._drained.append(node_id)
        return reqs

    def release_node(self, node_id: int) -> int:
        """End of maintenance: resume every frozen task on the node."""
        self._require_alive()
        node = self.cluster.node(node_id)
        resumed = 0
        for coord in self.coordinators.values():
            for rank in coord.job.ranks:
                if rank.node is node and rank.task.state.value == "stopped":
                    node.kernel.resume_task(rank.task)
                    resumed += 1
        if node_id in self._drained:
            self._drained.remove(node_id)
        return resumed
