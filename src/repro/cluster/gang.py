"""Gang scheduling via checkpoint-based time multiplexing.

The paper's opening sentence lists gang scheduling among the
functionalities checkpoint/restart enables.  On a capability machine,
two jobs that each want the whole machine can share it in alternating
*slots*: at each slot boundary the running gang is checkpointed and
parked (safe pre-emption at scale) and the other gang is resumed --
either thawed in place (its memory is still resident) or restored from
its images (if the machine was drained in between).

:class:`GangScheduler` implements the rotate-in-place flavour: park via
checkpoint-then-freeze, thaw the next gang.  The checkpoint guarantees
the park is *safe*: if a node dies while a gang is frozen, the gang is
recoverable from its images like any other failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.checkpointer import Checkpointer, RequestState
from ..errors import ClusterError
from ..simkernel import TaskState
from .job import ParallelJob
from .machine import Cluster

__all__ = ["GangScheduler"]


@dataclass
class _GangState:
    job: ParallelJob
    #: rank index -> last park image key (safety net for failures).
    park_images: Dict[int, str] = field(default_factory=dict)
    slots_run: int = 0


class GangScheduler:
    """Round-robin gangs over the whole machine in fixed time slots.

    Parameters
    ----------
    cluster:
        The machine; all gangs run on its compute nodes.
    mechanisms:
        node_id -> checkpointer used for safe parking.
    slot_ns:
        Slot length.  Real gang schedulers use seconds-to-minutes; the
        simulation defaults to tens of milliseconds for test speed.
    """

    def __init__(
        self,
        cluster: Cluster,
        mechanisms: Dict[int, Checkpointer],
        slot_ns: int = 50_000_000,
    ) -> None:
        self.cluster = cluster
        self.mechanisms = mechanisms
        self.slot_ns = int(slot_ns)
        self.gangs: List[_GangState] = []
        self._active: Optional[int] = None
        self._running = False
        self.rotations = 0

    # ------------------------------------------------------------------
    def add_gang(self, job: ParallelJob) -> None:
        """Register a gang.  Jobs added after start() begin parked."""
        state = _GangState(job=job)
        self.gangs.append(state)
        if self._running:
            self._freeze_now(state)

    def start(self) -> None:
        """Freeze everyone but gang 0, then begin rotating."""
        if not self.gangs:
            raise ClusterError("no gangs registered")
        self._running = True
        self._active = 0
        for i, gang in enumerate(self.gangs):
            if i != 0:
                self._freeze_now(gang)
        self.cluster.engine.after(self.slot_ns, self._rotate, label="gang-slot")

    def stop(self) -> None:
        """Stop rotating (the active gang keeps running)."""
        self._running = False

    @property
    def active_gang(self) -> Optional[ParallelJob]:
        """The gang currently holding the machine."""
        if self._active is None:
            return None
        return self.gangs[self._active].job

    # ------------------------------------------------------------------
    def _freeze_now(self, gang: _GangState) -> None:
        """Immediate freeze without a checkpoint (initial parking)."""
        for rank in gang.job.ranks:
            if rank.task.alive() and rank.task.state != TaskState.STOPPED:
                rank.node.kernel.stop_task(rank.task)

    def _park(self, gang: _GangState) -> None:
        """Safe park: checkpoint every rank, freeze when images are durable."""
        engine = self.cluster.engine
        for rank in gang.job.ranks:
            if not rank.task.alive():
                continue
            mech = self.mechanisms.get(rank.node.node_id)
            if mech is None:
                rank.node.kernel.stop_task(rank.task)
                continue
            mech.prepare_target(rank.task)
            req = mech.request_checkpoint(rank.task)

            def freeze(req=req, rank=rank, gang=gang) -> None:
                if req.state == RequestState.DONE:
                    gang.park_images[rank.index] = req.key
                    if rank.task.alive():
                        rank.node.kernel.stop_task(rank.task)
                elif req.state == RequestState.FAILED:
                    if rank.task.alive():
                        rank.node.kernel.stop_task(rank.task)
                else:
                    engine.after(1_000_000, freeze)

            engine.after(1_000_000, freeze)

    def _thaw(self, gang: _GangState) -> None:
        for rank in gang.job.ranks:
            if rank.task.alive() and rank.task.state == TaskState.STOPPED:
                rank.node.kernel.resume_task(rank.task)
        gang.slots_run += 1

    def _rotate(self) -> None:
        if not self._running:
            return
        alive = [g for g in self.gangs if not g.job.finished]
        if not alive:
            self._running = False
            return
        current = self.gangs[self._active]
        if len(alive) > 1 or current.job.finished:
            # Pick the next unfinished gang after the current index.
            n = len(self.gangs)
            nxt = None
            for off in range(1, n + 1):
                cand = (self._active + off) % n
                if not self.gangs[cand].job.finished:
                    nxt = cand
                    break
            if nxt is not None and nxt != self._active:
                if not current.job.finished:
                    self._park(current)
                self._active = nxt
                self._thaw(self.gangs[nxt])
                self.rotations += 1
        self.cluster.engine.after(self.slot_ns, self._rotate, label="gang-slot")
