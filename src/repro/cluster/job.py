"""Parallel jobs and fault-tolerance policies on the cluster.

A :class:`ParallelJob` is a gang of ranks (one workload instance per
rank) placed across nodes -- the capability-computing model the paper
motivates: the job only completes when *every* rank completes, and "in
the absence of some mechanism for fault tolerance a component failure is
catastrophic for the running application".

Two recovery policies bracket the design space:

* :class:`ScratchRestartPolicy` -- the paper's status quo ("it is
  all-too-common practice to run an application, or a part of it, many
  times to achieve one successful completion"): any failure restarts the
  whole job from iteration 0.
* :class:`CheckpointCoordinator` -- periodic coordinated checkpoint
  waves through a per-node mechanism; on failure, every rank restarts
  from the last complete wave, on the original node if it survived or on
  a spare otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.checkpointer import Checkpointer, CheckpointRequest, RequestState
from ..distsnap.channels import ChannelNetwork
from ..distsnap.protocols import (
    MarkerProtocol,
    SnapRank,
    SnapshotProtocol,
    StopTheWorldProtocol,
)
from ..distsnap.restart import JobRestoreResult, restore_snapshot
from ..errors import ClusterError, DistSnapError, StorageLostError
from ..simkernel import Task
from ..simkernel.costs import NS_PER_S
from ..storage.backends import StorageBackend
from ..workloads.base import Workload
from .machine import Cluster, ClusterNode

__all__ = [
    "Rank",
    "ParallelJob",
    "ScratchRestartPolicy",
    "CheckpointCoordinator",
    "CommunicatingJob",
]


@dataclass
class Rank:
    """One rank of a parallel job."""

    index: int
    node: ClusterNode
    task: Task
    workload: Workload

    @property
    def done(self) -> bool:
        """Completed successfully."""
        return (
            self.task.exit_code == 0
            and self.task.state.value in ("zombie", "dead")
        )

    @property
    def dead(self) -> bool:
        """Died without completing (node failure)."""
        return self.task.state.value == "dead" and self.task.exit_code != 0


class ParallelJob:
    """A gang of ranks, placed round-robin over the compute nodes.

    ``node_ids`` places the gang on an explicit set of nodes instead of
    every compute node -- on a lazy BlueGene/L-scale cluster this is
    what keeps a 4-rank job from materializing 65,536 kernels.
    """

    def __init__(
        self,
        cluster: Cluster,
        workload_factory: Callable[[int], Workload],
        n_ranks: int,
        name: str = "job",
        node_ids: Optional[List[int]] = None,
    ) -> None:
        if n_ranks < 1:
            raise ClusterError("job needs at least one rank")
        self.cluster = cluster
        self.name = name
        self.workload_factory = workload_factory
        self.ranks: List[Rank] = []
        if node_ids is not None:
            nodes = [cluster.node(i) for i in node_ids]
            nodes = [n for n in nodes if n.up]
        else:
            nodes = [n for n in cluster.compute_nodes() if n.up]
        if not nodes:
            raise ClusterError("no healthy compute nodes to place the job on")
        for r in range(n_ranks):
            node = nodes[r % len(nodes)]
            wl = workload_factory(r)
            task = wl.spawn(node.kernel, name=f"{name}/r{r}")
            self.ranks.append(Rank(index=r, node=node, task=task, workload=wl))
        self.started_ns = cluster.engine.now_ns
        self.completed_ns: Optional[int] = None
        self.restarts = 0

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """All ranks completed successfully."""
        done = all(r.done for r in self.ranks)
        if done and self.completed_ns is None:
            self.completed_ns = self.cluster.engine.now_ns
        return done

    @property
    def failed_ranks(self) -> List[Rank]:
        """Ranks whose task died uncompleted."""
        return [r for r in self.ranks if r.dead]

    def total_progress_steps(self) -> int:
        """Sum of current main-program steps across ranks."""
        return sum(r.task.main_steps for r in self.ranks)

    def makespan_s(self) -> Optional[float]:
        """Wall time to completion (None while running)."""
        if self.completed_ns is None:
            return None
        return (self.completed_ns - self.started_ns) / NS_PER_S

    def run_to_completion(self, limit_ns: int) -> bool:
        """Drive the cluster until the job finishes or the limit trips."""
        self.cluster.run_until(lambda: self.finished, limit_ns)
        return self.finished


class ScratchRestartPolicy:
    """No checkpointing: any failure restarts the whole job from zero."""

    def __init__(self, job: ParallelJob) -> None:
        self.job = job
        self.lost_steps = 0
        #: Set when the machine ran out of healthy nodes to place on.
        self.stuck = False
        job.cluster.on_failure(self._on_failure)

    def _on_failure(self, node: ClusterNode) -> None:
        job = self.job
        if job.finished or self.stuck:
            return
        affected = any(r.node is node for r in job.ranks)
        if not affected:
            return
        self.lost_steps += job.total_progress_steps()
        job.restarts += 1
        cluster = job.cluster
        try:
            for rank in job.ranks:
                # Kill survivors (gang semantics), then respawn everyone.
                if rank.task.alive():
                    rank.node.kernel.stop_task(rank.task)
                    rank.node.kernel._exit_task(rank.task, code=-1)
                    rank.task.state = rank.task.state.__class__.DEAD
                target = rank.node if rank.node.up else cluster.claim_spare()
                rank.node = target
                wl = job.workload_factory(rank.index)
                rank.workload = wl
                rank.task = wl.spawn(target.kernel, name=f"{job.name}/r{rank.index}")
        except ClusterError:
            # No healthy node to place a rank on: the job is stranded
            # until an operator repairs hardware.
            self.stuck = True


class CheckpointCoordinator:
    """Periodic coordinated checkpoint waves + restart-on-failure.

    Parameters
    ----------
    job:
        The gang to protect.
    mechanisms:
        node_id -> mechanism instance installed on that node's kernel
        (storage backends decide survivability, E13).
    interval_ns:
        Wall-clock period between wave starts.  May be changed on the
        fly (the autonomic controller does).
    """

    def __init__(
        self,
        job: ParallelJob,
        mechanisms: Dict[int, Checkpointer],
        interval_ns: int,
        keep_waves: int = 0,
        restore_prefetch: bool = False,
    ) -> None:
        """``keep_waves`` > 0 enables garbage collection: once a newer
        wave is durable, waves older than the last ``keep_waves`` are
        deleted from stable storage (checkpoints accumulate fast at
        short intervals; real systems keep one or two generations).
        ``restore_prefetch`` fetches each rank's delta chain in parallel
        at recovery instead of walking it serially."""
        self.job = job
        self.mechanisms = mechanisms
        self.interval_ns = int(interval_ns)
        self.keep_waves = int(keep_waves)
        self.restore_prefetch = bool(restore_prefetch)
        #: Complete waves: list of dicts rank_index -> (image key, step).
        self.waves: List[Dict[int, str]] = []
        self.waves_pruned = 0
        self._inflight: Optional[Dict[int, CheckpointRequest]] = None
        self.recoveries = 0
        self.unrecoverable = False
        self.lost_steps = 0
        #: Recoveries that had to reach past the newest wave because its
        #: images (or their delta ancestry) were unreadable -- storage-
        #: tier failures surfacing as lost checkpoint generations (E19).
        self.generation_fallbacks = 0
        #: Prefetch restores that lost their read quorum mid-chain and
        #: were retried through the serial walk instead of failing the
        #: whole recovery.
        self.prefetch_fallbacks = 0
        self._stopped = False
        job.cluster.on_failure(self._on_failure)

    # ------------------------------------------------------------------
    def mechanism_for(self, rank: Rank) -> Checkpointer:
        try:
            return self.mechanisms[rank.node.node_id]
        except KeyError:
            raise ClusterError(
                f"no mechanism installed on node {rank.node.node_id}"
            ) from None

    def start(self) -> None:
        """Arm the periodic wave timer."""
        self.job.cluster.engine.after(self.interval_ns, self._wave, label="ckpt-wave")

    def stop(self) -> None:
        """Stop scheduling further waves."""
        self._stopped = True

    def _wave(self) -> None:
        if self._stopped or self.job.finished or self.unrecoverable:
            return
        if self._inflight is None:  # do not overlap waves
            reqs: Dict[int, CheckpointRequest] = {}
            for rank in self.job.ranks:
                if not rank.task.alive():
                    continue
                # A parked rank (e.g. mid-restore, maintenance drain) has
                # produced no new state since its image; skip it rather
                # than waste a capture and delay its thaw.
                if rank.task.state.value == "stopped":
                    continue
                try:
                    mech = self.mechanism_for(rank)
                    mech.prepare_target(rank.task)
                    reqs[rank.index] = mech.request_checkpoint(rank.task)
                except Exception:
                    reqs = {}
                    break
            if reqs:
                self._inflight = reqs
                self._poll_wave()
        self.job.cluster.engine.after(self.interval_ns, self._wave, label="ckpt-wave")

    def _poll_wave(self) -> None:
        reqs = self._inflight
        if reqs is None:
            return
        states = [r.state for r in reqs.values()]
        if all(s == RequestState.DONE for s in states):
            self.waves.append(
                {idx: (r.key, r.image.step) for idx, r in reqs.items()}
            )
            self._inflight = None
            self._gc_old_waves()
            return
        if any(s == RequestState.FAILED for s in states):
            self._inflight = None  # aborted wave (failure mid-capture)
            return
        self.job.cluster.engine.after(1_000_000, self._poll_wave, label="wave-poll")

    def _gc_old_waves(self) -> None:
        """Drop waves beyond ``keep_waves`` and delete their blobs.

        Incremental mechanisms chain deltas back to a full base, so only
        keys that are no longer any retained image's ancestor are safe to
        delete; to stay conservative we only GC when every retained key
        is a *full* image or its whole chain lies within retained waves.
        In practice the direction-forward mechanism re-bases periodically
        (a stopped/restarted rank starts a fresh chain), so GC proceeds.
        """
        if self.keep_waves <= 0 or len(self.waves) <= self.keep_waves:
            return
        retained = self.waves[-self.keep_waves:]
        retained_keys = {key for wave in retained for key, _ in wave.values()}
        # Collect every ancestor of a retained image: those must survive.
        protected = set(retained_keys)
        for mech in set(self.mechanisms.values()):
            for key in list(retained_keys):
                try:
                    chain, _ = mech.image_chain(key)
                except Exception:
                    continue
                protected.update(img.key for img in chain)
        doomed = self.waves[: -self.keep_waves]
        self.waves = list(retained)
        for wave in doomed:
            for key, _ in wave.values():
                if key in protected:
                    continue
                for mech in set(self.mechanisms.values()):
                    mech.storage.delete(key)
            self.waves_pruned += 1

    # ------------------------------------------------------------------
    def _on_failure(self, node: ClusterNode) -> None:
        job = self.job
        if job.finished or self.unrecoverable:
            return
        if not any(r.node is node for r in job.ranks):
            return
        self._inflight = None  # any in-flight wave is void
        cluster = job.cluster
        if not self.waves:
            # Nothing to recover from: degenerate to scratch restart.
            self.lost_steps += job.total_progress_steps()
            job.restarts += 1
            self._restart_from_scratch()
            return
        # Progress snapshot before any task is stopped: lost work is
        # measured against whichever wave the recovery finally lands on.
        steps_before = {r.index: r.task.main_steps for r in job.ranks}
        recovered: Optional[Dict[int, str]] = None
        for wave in self._candidate_waves():
            try:
                self._recover_from(wave)
            except StorageLostError:
                # The availability probe passed but the actual fetch
                # lost its read quorum (a fan-out prefetch hitting a
                # mid-chain loss the serial retry also cannot cover):
                # fall back to the next older readable generation
                # instead of declaring the job unrecoverable.
                continue
            except ClusterError:
                # No spare node to place a rank on: storage fallback
                # cannot help.
                self.unrecoverable = True
                return
            recovered = wave
            break
        if recovered is None:
            # Waves were taken but no generation's images are readable
            # (local disks died with their node, or the storage tier
            # lost every replica): the E13/E19 failure mode.
            self.unrecoverable = True
            return
        if recovered is not self.waves[-1]:
            self.generation_fallbacks += 1
        # Rework: progress past the recovered wave is lost per rank.
        self.lost_steps += sum(
            max(0, steps_before[r.index] - recovered[r.index][1])
            for r in job.ranks
            if r.index in recovered
        )
        job.restarts += 1
        self.recoveries += 1

    def _recover_from(self, wave: Dict[int, str]) -> None:
        """Restore every rank from ``wave`` (raises on failure).

        A prefetch restore that loses its read quorum mid-chain is
        retried through the serial walk before the error propagates --
        the serial path re-walks holders one at a time and matches what
        :meth:`Checkpointer.chain_available` probed, so a transient
        fan-out loss must not fail a recovery the serial path survives.
        """
        job = self.job
        cluster = job.cluster
        for rank in job.ranks:
            if rank.task.alive():
                rank.node.kernel.stop_task(rank.task)
            target = rank.node if rank.node.up else cluster.claim_spare()
            mech = self.mechanisms.get(rank.node.node_id) or next(
                iter(self.mechanisms.values())
            )
            if rank.index in wave:
                key, _ = wave[rank.index]
            else:
                # The rank sat out the latest wave (it was parked,
                # e.g. mid-restore -- its state IS an older image).
                # Fall back to the most recent wave that covers it.
                key = None
                for older in reversed(self.waves):
                    if rank.index in older:
                        key = older[rank.index][0]
                        break
                if key is None:
                    raise ClusterError(f"no wave covers rank {rank.index}")
            try:
                res = mech.restart(
                    key,
                    target_kernel=target.kernel,
                    prefetch=self.restore_prefetch,
                )
            except StorageLostError:
                if not self.restore_prefetch:
                    raise
                self.prefetch_fallbacks += 1
                res = mech.restart(
                    key, target_kernel=target.kernel, prefetch=False
                )
            rank.node = target
            rank.task = res.task

    def _candidate_waves(self):
        """Waves whose every image chain is currently readable, newest
        first (the serial generation-fallback walk)."""
        for wave in reversed(self.waves):
            usable = True
            for rank in self.job.ranks:
                if rank.index not in wave:
                    continue
                mech = self.mechanisms.get(rank.node.node_id) or next(
                    iter(self.mechanisms.values())
                )
                if not mech.chain_available(wave[rank.index][0]):
                    usable = False
                    break
            if usable:
                yield wave

    def _usable_wave(self) -> Optional[Dict[int, str]]:
        """Newest wave whose every image chain is currently readable.

        Under an infallible storage tier this is always the latest wave
        (identical to the historical behaviour); when storage servers
        fail, restart falls back to the newest *surviving* generation
        instead of dying on the first unreadable image.
        """
        return next(self._candidate_waves(), None)

    def _restart_from_scratch(self) -> None:
        job = self.job
        cluster = job.cluster
        try:
            for rank in job.ranks:
                if rank.task.alive():
                    rank.node.kernel.stop_task(rank.task)
                    rank.node.kernel._exit_task(rank.task, code=-1)
                target = rank.node if rank.node.up else cluster.claim_spare()
                rank.node = target
                wl = job.workload_factory(rank.index)
                rank.workload = wl
                rank.task = wl.spawn(target.kernel, name=f"{job.name}/r{rank.index}")
        except ClusterError:
            self.unrecoverable = True


class CommunicatingJob(ParallelJob):
    """A gang whose ranks exchange messages over FIFO channels.

    The messaging substrate is a :class:`~repro.distsnap.channels
    .ChannelNetwork` on the cluster's engine, with one endpoint per
    rank (addressed by **rank index** -- stable across restarts and
    spare-node migration, unlike task pids).  This is the job shape the
    ``repro.distsnap`` protocols coordinate: per-rank checkpointers
    capture process state, the protocols capture the channel state
    between them.

    Parameters
    ----------
    topology:
        ``"ring"`` (rank i <-> i+1 mod n), ``"all"`` (full bisection),
        or an explicit list of ``(i, j)`` rank-index pairs, each made
        bidirectional (strong connectivity is what marker flooding
        needs; an undirected-connected edge list qualifies).
    channel_latency_ns:
        Per-channel propagation latency (default: the network's).
    """

    def __init__(
        self,
        cluster: Cluster,
        workload_factory: Callable[[int], Workload],
        n_ranks: int,
        name: str = "job",
        node_ids: Optional[List[int]] = None,
        topology: object = "ring",
        channel_latency_ns: Optional[int] = None,
    ) -> None:
        super().__init__(cluster, workload_factory, n_ranks, name, node_ids)
        self.net = ChannelNetwork(cluster.engine)
        for i, j in self._edges(topology, n_ranks):
            self.net.connect_bidirectional(i, j, channel_latency_ns)
        for rank in self.ranks:
            self.net.add_process(rank.index)

    @staticmethod
    def _edges(topology: object, n: int) -> List[tuple]:
        if topology == "ring":
            return [(i, (i + 1) % n) for i in range(n)] if n > 1 else []
        if topology == "all":
            return [(i, j) for i in range(n) for j in range(i + 1, n)]
        if isinstance(topology, (list, tuple)):
            edges = []
            for i, j in topology:
                if not (0 <= i < n and 0 <= j < n):
                    raise DistSnapError(
                        f"edge ({i}, {j}) references a rank outside 0..{n - 1}"
                    )
                edges.append((i, j))
            return edges
        raise DistSnapError(f"unknown topology {topology!r}")

    # ------------------------------------------------------------------
    def snap_ranks(
        self, mechanisms: Optional[Dict[int, Checkpointer]] = None
    ) -> List[SnapRank]:
        """The gang as the snapshot protocols see it.

        ``mechanisms`` is keyed by **node_id**, the
        :class:`CheckpointCoordinator` convention; omit it for
        lightweight (channel-state-only) snapshots.
        """
        out = []
        for rank in self.ranks:
            mech = None
            if mechanisms is not None:
                mech = mechanisms.get(rank.node.node_id) or next(
                    iter(mechanisms.values())
                )
            out.append(
                SnapRank(
                    pid=rank.index,
                    endpoint=self.net.endpoint(rank.index),
                    task=rank.task,
                    mechanism=mech,
                    node_id=rank.node.node_id,
                )
            )
        return out

    def snapshot(
        self,
        store: StorageBackend,
        mechanisms: Dict[int, Checkpointer],
        protocol: str = "marker",
        watch_failures: bool = True,
    ) -> SnapshotProtocol:
        """Build (without starting) a coordinated snapshot of this job."""
        cls = {"marker": MarkerProtocol, "stw": StopTheWorldProtocol}.get(
            protocol
        )
        if cls is None:
            raise DistSnapError(f"unknown protocol {protocol!r}")
        proto = cls(
            self.net, self.snap_ranks(mechanisms), store=store, job=self.name
        )
        if watch_failures:
            proto.attach_failure_watch(self.cluster)
        return proto

    def restore(
        self,
        store: StorageBackend,
        manifest_key: str,
        mechanisms: Dict[int, Checkpointer],
        prefetch: bool = True,
    ) -> JobRestoreResult:
        """Whole-job restart from a cut manifest.

        Each rank restores through its node's mechanism onto its
        original node, or a claimed spare if that node is down; the
        rank's task binding is updated to the restored process and the
        gang's in-flight messages are replayed onto the channels.
        """
        mech_by_rank: Dict[int, Checkpointer] = {}
        kernels: Dict[int, object] = {}
        for rank in self.ranks:
            if not rank.node.up:
                rank.node = self.cluster.claim_spare()
            mech_by_rank[rank.index] = mechanisms.get(
                rank.node.node_id
            ) or next(iter(mechanisms.values()))
            kernels[rank.index] = rank.node.kernel
        result = restore_snapshot(
            store,
            manifest_key,
            self.net,
            mechanisms=mech_by_rank,
            target_kernels=kernels,
            prefetch=prefetch,
        )
        for rank in self.ranks:
            res = result.rank_results.get(rank.index)
            if res is not None:
                rank.task = res.task
        self.restarts += 1
        return result
