"""Vectorized failure cohorts for BlueGene/L-scale fleets.

Simulating 65,536 nodes as individually scheduled failure callbacks
costs one Python closure plus one engine event per node up front -- the
exact overhead that capped the E12/E18 sweeps at a few hundred nodes.
A :class:`NodeFleet` keeps the whole cohort's failure/repair process in
NumPy arrays instead:

* per-node next-failure and repair times live in ``int64`` arrays,
  pre-sampled through :meth:`FailureModel.draw_ttf_array` (one
  vectorized draw for the cohort, same generator stream as the scalar
  path);
* one *dispatcher* event is scheduled at the earliest pending
  transition; when it fires, every node due at or before that instant
  is processed with vectorized masks and the dispatcher re-arms at the
  new minimum.  An optional batch window coalesces near-simultaneous
  transitions into one dispatch at the cost of (bounded, documented)
  timing quantization;
* nodes stay *statistical* -- counters in an array -- until something
  actually touches them.  A failure hitting a node the caller cares
  about (see ``on_fail``) can promote it to a fully simulated
  :class:`~repro.cluster.machine.ClusterNode`; everything else never
  pays for a kernel.

Accounting is exact regardless of batching: failure and repair *times*
are taken from the arrays, only the Python-visible processing moment is
quantized.  With ``batch_window_ns=0`` (the default) dispatch times are
exact too, and the fleet agrees with the per-node scheduling path in
distribution (see ``tests/cluster/test_fleet.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import ClusterError
from ..simkernel.costs import NS_PER_S
from ..simkernel.engine import Engine
from .failures import FailureModel

__all__ = ["NodeFleet"]

#: Sentinel for "no transition pending" (int64 max).
_NEVER = np.iinfo(np.int64).max

#: Saturation point for drawn/derived times (~146 simulated years).
#: Anything beyond it cannot fire inside a realistic sweep, and capping
#: here keeps every int64 add below the sentinel without overflow.
_HORIZON_NS = _NEVER // 2


def _abs_times(now_ns: int, ttf_s: np.ndarray) -> np.ndarray:
    """Absolute transition instants for drawn times-to-failure, with
    deltas saturated at :data:`_HORIZON_NS` so huge draws (or huge
    ``repair_s``) never overflow the int64 arrays."""
    delta = np.minimum(ttf_s * NS_PER_S, _HORIZON_NS).astype(np.int64)
    return now_ns + delta


class NodeFleet:
    """A cohort of statistically identical nodes under one dispatcher.

    Parameters
    ----------
    engine:
        The shared simulation engine (virtual clock).
    n_nodes:
        Cohort size.
    model:
        Failure model; times-to-failure are drawn vectorized.
    repair_s:
        Fixed repair (reboot) time; after it elapses a node is up again
        and re-armed with a freshly drawn time-to-failure.
    on_fail:
        Optional callback ``fn(node_ids, fail_times_ns)`` invoked from
        the dispatcher with the NumPy index array of nodes that just
        failed and their exact failure times.  This is the promotion
        hook: a cluster maps fleet indices to real nodes and fail-stops
        the materialized ones.
    on_repair:
        Optional callback ``fn(node_ids)`` when nodes come back up.
    batch_window_ns:
        Dispatch quantum.  0 (default) dispatches at exact transition
        times; a positive window coalesces all transitions inside the
        same window into one dispatch at the window's end.
    """

    def __init__(
        self,
        engine: Engine,
        n_nodes: int,
        model: FailureModel,
        repair_s: float = 300.0,
        on_fail: Optional[Callable[[np.ndarray, np.ndarray], None]] = None,
        on_repair: Optional[Callable[[np.ndarray], None]] = None,
        batch_window_ns: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ClusterError("fleet needs at least one node")
        if repair_s < 0:
            raise ClusterError("repair time cannot be negative")
        self.engine = engine
        self.n_nodes = n_nodes
        self.model = model
        self.repair_ns = min(int(repair_s * NS_PER_S), _HORIZON_NS)
        self.on_fail = on_fail
        self.on_repair = on_repair
        self.batch_window_ns = int(batch_window_ns)

        now = engine.now_ns
        ttf = model.draw_ttf_array(n_nodes)
        #: Next failure time per node; _NEVER while down or detached.
        self.fail_at_ns = _abs_times(now, ttf)
        #: Repair-complete time per node; _NEVER while up.
        self.repair_at_ns = np.full(n_nodes, _NEVER, dtype=np.int64)
        #: Down/up state per node.
        self.down = np.zeros(n_nodes, dtype=bool)
        #: Detached nodes are no longer driven by the fleet (they were
        #: promoted to real ClusterNodes, or retired).
        self.detached = np.zeros(n_nodes, dtype=bool)
        #: Failures observed per node.
        self.fail_counts = np.zeros(n_nodes, dtype=np.int64)

        self.failures = 0
        self.repairs = 0
        self.downtime_ns = 0
        self.first_failure_ns: Optional[int] = None
        self._armed_for = _NEVER
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the dispatcher (idempotent)."""
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop driving transitions (arrays keep their state)."""
        self._running = False

    def detach(self, node_ids) -> None:
        """Remove nodes from fleet management (promotion hand-off)."""
        ids = np.asarray(node_ids, dtype=np.int64)
        self.detached[ids] = True
        self.fail_at_ns[ids] = _NEVER
        self.repair_at_ns[ids] = _NEVER

    # ------------------------------------------------------------------
    def up_count(self) -> int:
        """Nodes currently up (attached and not in repair)."""
        return int((~self.down & ~self.detached).sum())

    def down_count(self) -> int:
        """Nodes currently down for repair."""
        return int(self.down.sum())

    def next_transition_ns(self) -> int:
        """Earliest pending failure or repair time (``_NEVER`` if none)."""
        return int(min(self.fail_at_ns.min(), self.repair_at_ns.min()))

    def time_to_first_failure_s(self) -> float:
        """Earliest *currently armed* failure, in seconds from now --
        the system time-to-interrupt for an any-node-fatal job, straight
        from the pre-sampled arrays (no events needed)."""
        t = int(self.fail_at_ns.min())
        if t == _NEVER:
            raise ClusterError("no armed failures in the fleet")
        return (t - self.engine.now_ns) / NS_PER_S

    # ------------------------------------------------------------------
    def _arm(self) -> None:
        """(Re)schedule the dispatcher for the next pending transition."""
        if not self._running:
            return
        t = self.next_transition_ns()
        if t == _NEVER:
            self._armed_for = _NEVER
            return
        if self.batch_window_ns:
            w = self.batch_window_ns
            t = (t // w + 1) * w
        # A repair may complete "in the past" of a batched dispatch;
        # process it now rather than scheduling backwards.
        now = self.engine.now_ns
        if t < now:
            t = now
        if t == self._armed_for:
            return  # an event for this instant is already in flight
        self._armed_for = t
        self.engine.at_anon(t, self._dispatch)

    def _dispatch(self) -> None:
        now = self.engine.now_ns
        if not self._running or now < self._armed_for:
            # Stale wake-up from a previously armed (earlier) dispatch
            # whose transitions were already handled, or a stop().
            return
        self._armed_for = _NEVER

        # Repairs due: node comes up, downtime accrues exactly, and a
        # fresh time-to-failure is drawn for the repaired cohort.
        rep = self.repair_at_ns <= now
        n_rep = int(rep.sum())
        if n_rep:
            self.repairs += n_rep
            self.downtime_ns += n_rep * self.repair_ns
            self.down[rep] = False
            self.repair_at_ns[rep] = _NEVER
            ttf = self.model.draw_ttf_array(n_rep)
            self.fail_at_ns[rep] = _abs_times(now, ttf)
            self.engine.count("fleet.repairs", n_rep)
            if self.on_repair is not None:
                self.on_repair(np.nonzero(rep)[0])

        # Failures due: exact times come from the array; the node goes
        # down and its repair completes repair_ns after the *failure*
        # (not the dispatch), so batching never stretches downtime.
        due = self.fail_at_ns <= now
        n_due = int(due.sum())
        if n_due:
            times = self.fail_at_ns[due]
            if self.first_failure_ns is None:
                self.first_failure_ns = int(times.min())
            self.failures += n_due
            self.fail_counts[due] += 1
            self.down[due] = True
            self.fail_at_ns[due] = _NEVER
            self.repair_at_ns[due] = (
                np.minimum(times, _NEVER - self.repair_ns) + self.repair_ns
            )
            self.engine.count("fleet.failures", n_due)
            if self.on_fail is not None:
                self.on_fail(np.nonzero(due)[0], times)

        self._arm()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodeFleet n={self.n_nodes} up={self.up_count()} "
                f"failures={self.failures}>")
