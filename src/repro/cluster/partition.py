"""Machine-to-shard partitioning for the conservative parallel engine.

The partition is contiguous and balanced: ``n_items`` machines split
into ``n_shards`` ranges whose sizes differ by at most one, with the
first ``n_items % n_shards`` shards taking the extra machine.  Two
properties matter:

* it is a pure function of ``(n_items, n_shards)`` -- every worker
  (and the single-shard reference run) computes the same mapping
  without coordination;
* ownership is O(1) to invert (:func:`shard_of`), so routing a
  failure-cohort notification or a storage ack to a machine's home
  shard never walks a table.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ClusterError

__all__ = ["shard_ranges", "shard_range", "shard_of"]


def shard_ranges(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges, one per shard, covering
    ``range(n_items)``."""
    if n_shards < 1:
        raise ClusterError("need at least one shard")
    if n_items < n_shards:
        raise ClusterError(
            f"cannot spread {n_items} machines over {n_shards} shards"
        )
    base, extra = divmod(n_items, n_shards)
    ranges = []
    lo = 0
    for k in range(n_shards):
        hi = lo + base + (1 if k < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def shard_range(shard_id: int, n_items: int, n_shards: int) -> Tuple[int, int]:
    """The ``[lo, hi)`` range shard ``shard_id`` owns."""
    if not 0 <= shard_id < n_shards:
        raise ClusterError(f"shard {shard_id} out of range")
    base, extra = divmod(n_items, n_shards)
    if n_items < n_shards:
        raise ClusterError(
            f"cannot spread {n_items} machines over {n_shards} shards"
        )
    if shard_id < extra:
        lo = shard_id * (base + 1)
        return (lo, lo + base + 1)
    lo = extra * (base + 1) + (shard_id - extra) * base
    return (lo, lo + base)


def shard_of(item_id: int, n_items: int, n_shards: int) -> int:
    """Home shard of machine ``item_id`` under the contiguous split."""
    if not 0 <= item_id < n_items:
        raise ClusterError(f"machine {item_id} out of range")
    base, extra = divmod(n_items, n_shards)
    if n_items < n_shards:
        raise ClusterError(
            f"cannot spread {n_items} machines over {n_shards} shards"
        )
    pivot = extra * (base + 1)
    if item_id < pivot:
        return item_id // (base + 1)
    return extra + (item_id - pivot) // base
