"""Multi-node cluster substrate: nodes, failures, jobs, coordination."""

from .batch import BatchManager
from .gang import GangScheduler
from .failures import (
    ExponentialFailures,
    FailureModel,
    WeibullFailures,
    indexed_uniforms,
    p_survive,
    system_mtbf_s,
)
from .fleet import NodeFleet
from .partition import shard_of, shard_range, shard_ranges
from .shardfleet import ShardFleet, trial_first_failure_s
from .job import (
    CheckpointCoordinator,
    CommunicatingJob,
    ParallelJob,
    Rank,
    ScratchRestartPolicy,
)
from .machine import Cluster, ClusterNode, NodeState

__all__ = [
    "GangScheduler",
    "Cluster",
    "ClusterNode",
    "NodeState",
    "NodeFleet",
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "system_mtbf_s",
    "p_survive",
    "ParallelJob",
    "Rank",
    "ScratchRestartPolicy",
    "CheckpointCoordinator",
    "CommunicatingJob",
    "BatchManager",
    "indexed_uniforms",
    "shard_ranges",
    "shard_range",
    "shard_of",
    "ShardFleet",
    "trial_first_failure_s",
]
