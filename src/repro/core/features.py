"""Feature vocabulary and the Table-1 feature matrix.

Table 1 of the paper summarizes each surveyed mechanism over five
columns: incremental checkpointing, transparency, stable storage,
initiation, and kernel-module packaging.  Here the columns are typed
(:class:`Features`) and the matrix is *derived from live mechanism
objects* (:func:`build_feature_matrix`), so any drift between the models
and the paper's table shows up as a failing benchmark (E2).

Beyond the paper's five columns, :class:`Features` records the extended
properties the prose discusses (multithread support, MPI support,
migration, resource virtualization, data filtering), used by the other
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Tuple

from ..storage.backends import StorageKind

__all__ = [
    "Initiation",
    "Features",
    "TABLE1_COLUMNS",
    "table1_row",
    "build_feature_matrix",
    "PAPER_TABLE1",
]


class Initiation(str, Enum):
    """Who triggers checkpoints (Table 1 vocabulary).

    The paper's usage: *automatic* means the application checkpoints
    itself (self-invoked calls / timers wired at build time); *user*
    means an external party (administrator, batch system) triggers it.
    """

    AUTOMATIC = "automatic"
    USER = "user"


@dataclass(frozen=True)
class Features:
    """Feature vector for one mechanism.

    The first five fields are exactly Table 1's columns; the rest encode
    properties the survey text discusses mechanism by mechanism.
    """

    incremental: bool
    transparent: bool
    stable_storage: Tuple[StorageKind, ...]
    initiation: Initiation
    kernel_module: bool
    # -- extended properties from the prose --
    multithreaded: bool = False
    parallel_mpi: bool = False
    migration: bool = False
    virtualization: bool = False
    #: Filters clean/code/library pages out of images (PsncR/C does not).
    data_filtering: bool = True
    #: Requires a launcher/registration phase before checkpoints work.
    requires_registration: bool = False

    def storage_label(self) -> str:
        """Table-1 cell text for the storage column.

        The table's vocabulary is local/remote/none; MEMORY staging
        (Software Suspend's standby mode, hardware epoch logs) is an
        extra capability the table does not enumerate, so it is omitted
        from the label unless it is the only kind.
        """
        visible = [
            k
            for k in self.stable_storage
            if k not in (StorageKind.NONE, StorageKind.MEMORY)
        ]
        if not visible:
            if StorageKind.MEMORY in self.stable_storage:
                return "memory"
            return "none"
        return ",".join(k.value for k in visible)


#: Table 1 column headers, in the paper's order.
TABLE1_COLUMNS = (
    "Name",
    "Incremental checkpointing",
    "Transparency",
    "Stable storage",
    "Initiation",
    "kernel module",
)


def table1_row(name: str, f: Features) -> Tuple[str, str, str, str, str, str]:
    """One mechanism's Table-1 row."""
    return (
        name,
        "yes" if f.incremental else "no",
        "yes" if f.transparent else "no",
        f.storage_label(),
        f.initiation.value,
        "yes" if f.kernel_module else "no",
    )


def build_feature_matrix(
    mechanisms: Iterable[Tuple[str, Features]]
) -> List[Tuple[str, str, str, str, str, str]]:
    """Rows (paper order preserved by the caller) for Table 1."""
    return [table1_row(name, f) for name, f in mechanisms]


#: The paper's Table 1, transcribed verbatim for the E2 cross-check.
#: (name, incremental, transparency, storage, initiation, module)
PAPER_TABLE1: Dict[str, Tuple[str, str, str, str, str]] = {
    "VMADump": ("no", "no", "local,remote", "automatic", "no"),
    "BPROC": ("no", "no", "none", "automatic", "no"),
    "EPCKPT": ("no", "yes", "local,remote", "user", "no"),
    "CRAK": ("no", "yes", "local,remote", "user", "yes"),
    "UCLik": ("no", "yes", "local", "user", "yes"),
    "CHPOX": ("no", "yes", "local", "user", "yes"),
    "ZAP": ("no", "yes", "none", "user", "yes"),
    "BLCR": ("no", "no", "local,remote", "user", "yes"),
    "LAM/MPI": ("no", "no", "local,remote", "user", "yes"),
    "PsncR/C": ("no", "yes", "local", "user", "yes"),
    "Software Suspend": ("no", "yes", "local", "user", "no"),
    "Checkpoint": ("no", "no", "local", "automatic", "no"),
}
