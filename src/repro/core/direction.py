"""The paper's "direction forward", built.

The survey's conclusion argues for a specific point in the taxonomy
no extant package occupied: *system-level*, via a *kernel thread*
(schedulable above everything, interrupt-deferring), packaged as a
*kernel module*, with *incremental* checkpointing ("there is no
implementation of incremental checkpointing for Linux up to now ... we
argue that this feature would be desirable"), *automatic initiation at
system level* ("using internal mechanisms to start the kernel thread",
no batch-software dependence), *remote stable storage* (so checkpoints
survive the node), full transparency, and restart-anywhere resource
handling.  :class:`AutonomicCheckpointer` is exactly that design,
assembled from the same substrate pieces the surveyed mechanisms use --
which is what makes the end-to-end comparison (E18) meaningful.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import CheckpointError
from ..mechanisms.systemlevel.base import SystemLevelCheckpointer
from ..simkernel import Kernel, SchedPolicy, Task
from ..simkernel.modules import KernelModule
from ..simkernel.vfs import DeviceNode, ProcEntry
from ..storage.backends import StorageKind
from .checkpointer import CheckpointRequest
from .features import Features, Initiation
from .registry import register
from .taxonomy import Agent, Context, TaxonomyPosition

__all__ = ["AutonomicCheckpointer"]


class _AutoCkptModule(KernelModule):
    name = "autockpt"

    def __init__(self, owner: "AutonomicCheckpointer") -> None:
        super().__init__()
        self.owner = owner

    def on_load(self) -> None:
        self.add_device(DeviceNode("/dev/autockpt", on_ioctl=self.owner._ioctl))
        self.add_proc_entry(
            ProcEntry(
                "/proc/autockpt",
                on_read=lambda: self.owner._proc_status(),
            )
        )


@register
class AutonomicCheckpointer(SystemLevelCheckpointer):
    """System-level, kernel-thread, incremental, automatic, remote C/R."""

    mech_name = "AutonomicCkpt"
    surveyed = False  # this repository's synthesis, not a surveyed package
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=(
            "kernel module",
            "SCHED_CKPT priority class",
            "interrupt deferral",
            "incremental (kernel dirty tracking)",
            "in-kernel timer initiation",
            "remote stable storage",
        ),
    )
    features = Features(
        incremental=True,
        transparent=True,
        stable_storage=(StorageKind.REMOTE, StorageKind.LOCAL),
        initiation=Initiation.AUTOMATIC,
        kernel_module=True,
        multithreaded=True,
        migration=True,
        virtualization=True,
    )
    description = "The survey's advocated design, synthesized"

    restores_pid = True
    virtualizes_resources = True
    rescues_deleted_files = True

    #: The paper's new scheduling class: nothing preempts the capture.
    kthread_policy = SchedPolicy.CKPT
    kthread_rt_prio = 99
    defer_irqs = True
    #: Take a fresh full checkpoint after this many deltas: restart must
    #: walk the whole base+delta chain, so unbounded chains trade a tiny
    #: capture saving for ever-slower recovery.
    rebase_every = 6
    #: > 1 switches captures to the fork/COW writeback pipeline: the app
    #: stalls only for the fork while extents drain asynchronously with
    #: this many quorum writes in flight (the direction-forward answer
    #: to "the app is frozen for the whole synchronous drain").
    pipeline_depth = 1

    def install(self) -> None:
        self._module = _AutoCkptModule(self).load(self.kernel)
        self._timers: Dict[int, object] = {}
        self._controller = None
        #: Automatic in-kernel retunes driven by the attached controller.
        self.retuned = 0

    def uninstall(self) -> None:
        self._module.unload()
        self.installed = False

    def attach_controller(self, controller) -> None:
        """Close the autonomic loop *inside the kernel module*.

        Every completed checkpoint feeds the controller (which folds
        both the measured application stall and the observed stable-
        storage commit latency into its Daly model), and the automatic
        timer is retuned to the fresh recommendation -- so when the
        storage tier slows down under contention, the interval visibly
        widens without any user-space management (E19).
        """
        self._controller = controller

    def _complete(self, req, image) -> None:
        super()._complete(req, image)
        if self._controller is None:
            return
        self._controller.observe_checkpoint(req)
        interval_ns = self._controller.recommended_interval_ns()
        timer = self._timers.get(req.target_pid)
        if timer is not None and timer["interval_ns"] != interval_ns:
            timer["interval_ns"] = interval_ns
            self.retuned += 1

    def _proc_status(self) -> bytes:
        lines = [
            f"checkpoints={len(self.completed_requests())}",
            f"timers={sorted(self._timers)}",
        ]
        return ("\n".join(lines) + "\n").encode()

    def _ioctl(self, requester: Optional[Task], cmd: str, arg) -> object:
        if cmd == "checkpoint":
            pid = arg["pid"] if isinstance(arg, dict) else int(arg)
            return self.request_checkpoint(self.kernel.task_by_pid(pid))
        raise CheckpointError(f"{self.mech_name}: unknown ioctl {cmd!r}")

    # ------------------------------------------------------------------
    def request_checkpoint(
        self, task: Task, incremental: bool = True
    ) -> CheckpointRequest:
        """Checkpoint ``task`` from the dedicated kernel thread.

        The first checkpoint of a process is full; later ones save only
        kernel-tracked dirty pages (tracking is re-armed each time), with
        a periodic full re-base every :attr:`rebase_every` deltas so the
        restart chain stays short.
        """
        armed = bool(task.annotations.get("autockpt_armed"))
        chain_len = int(task.annotations.get("autockpt_chain", 0))
        make_delta = incremental and armed and chain_len < self.rebase_every
        req = self._new_request(task, incremental=make_delta)
        task.annotations["autockpt_chain"] = chain_len + 1 if make_delta else 0
        if self.pipeline_depth > 1:
            self.kthread_capture_pipelined(
                task,
                req,
                pipeline_depth=self.pipeline_depth,
                policy=self.kthread_policy,
                rt_prio=self.kthread_rt_prio,
                defer_irqs=self.defer_irqs,
                rearm=True,
            )
        else:
            self.kthread_capture(
                task,
                req,
                stop_target=True,
                policy=self.kthread_policy,
                rt_prio=self.kthread_rt_prio,
                defer_irqs=self.defer_irqs,
                rearm=True,
            )
        task.annotations["autockpt_armed"] = True
        return req

    # ------------------------------------------------------------------
    def enable_automatic(
        self,
        task: Task,
        interval_ns: int,
        on_complete: Optional[Callable[[CheckpointRequest], None]] = None,
    ) -> None:
        """Automatic initiation *inside the kernel*: a timer wakes the
        checkpoint thread directly -- no signals, no user-space manager.

        The interval can be changed later with :meth:`set_interval`
        (the autonomic controller's knob).
        """
        self._timers[task.pid] = {"interval_ns": int(interval_ns)}

        def fire() -> None:
            timer = self._timers.get(task.pid)
            if timer is None or not task.alive():
                self._timers.pop(task.pid, None)
                return
            req = self.request_checkpoint(task)
            if on_complete is not None:
                def watch() -> None:
                    if req.completed_ns is not None:
                        on_complete(req)
                    else:
                        self.kernel.engine.after(1_000_000, watch)

                self.kernel.engine.after(1_000_000, watch)
            self.kernel.engine.after(timer["interval_ns"], fire, label="autockpt")

        self.kernel.engine.after(int(interval_ns), fire, label="autockpt")

    def set_interval(self, task: Task, interval_ns: int) -> None:
        """Adjust the automatic-checkpoint period for ``task``."""
        timer = self._timers.get(task.pid)
        if timer is None:
            raise CheckpointError(f"pid {task.pid} has no automatic timer")
        timer["interval_ns"] = int(interval_ns)

    def disable_automatic(self, task: Task) -> None:
        """Stop automatic checkpoints for ``task``."""
        self._timers.pop(task.pid, None)
