"""The Figure-1 taxonomy, as live, typed data.

The paper classifies checkpoint/restart implementations along three
dimensions: the **context** (user level vs system level), the **agent**
providing the functionality, and implementation **specifics**.  Every
mechanism in :mod:`repro.mechanisms` declares its
:class:`TaxonomyPosition`; :func:`render_figure1` regenerates the
figure's tree from whatever is registered, so the figure is derived from
the code rather than transcribed from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Context", "Agent", "TaxonomyPosition", "render_figure1", "AGENTS_BY_CONTEXT"]


class Context(str, Enum):
    """Coarsest dimension: where the implementation lives."""

    USER_LEVEL = "user-level"
    SYSTEM_LEVEL = "system-level"


class Agent(str, Enum):
    """Who provides the checkpoint/restart functionality."""

    # -- user-level agents --
    SOURCE_CODE = "source code"  # programmed directly by the user
    PRECOMPILER = "pre-compiler"  # inserted automatically
    USER_SIGNAL_HANDLER = "signal handler"  # user-level handlers
    LD_PRELOAD = "LD_PRELOAD"  # interposed library, no relink
    CHECKPOINT_LIBRARY = "checkpoint library"  # linked-in primitives
    # -- system-level / operating-system agents --
    OS_SYSTEM_CALL = "system call"
    OS_KERNEL_SIGNAL = "kernel-mode signal handler"
    OS_KERNEL_THREAD = "kernel thread"
    # -- system-level / hardware agents --
    HW_DIRECTORY_CONTROLLER = "directory controller"
    HW_CACHE = "processor cache"


#: Which agents belong under which context in the figure's tree, and how
#: the OS/hardware split is drawn at system level.
AGENTS_BY_CONTEXT: Dict[Context, Dict[str, Tuple[Agent, ...]]] = {
    Context.USER_LEVEL: {
        "application": (
            Agent.SOURCE_CODE,
            Agent.PRECOMPILER,
            Agent.CHECKPOINT_LIBRARY,
        ),
        "runtime": (Agent.USER_SIGNAL_HANDLER, Agent.LD_PRELOAD),
    },
    Context.SYSTEM_LEVEL: {
        "operating system": (
            Agent.OS_SYSTEM_CALL,
            Agent.OS_KERNEL_SIGNAL,
            Agent.OS_KERNEL_THREAD,
        ),
        "hardware": (Agent.HW_DIRECTORY_CONTROLLER, Agent.HW_CACHE),
    },
}


@dataclass(frozen=True)
class TaxonomyPosition:
    """One mechanism's coordinates in the classification space."""

    context: Context
    agent: Agent
    #: Implementation specifics: free-form, but conventional keys include
    #: the user interface ("/dev ioctl", "/proc", "new syscall"), the
    #: consistency scheme ("stop", "fork/COW"), and packaging.
    specifics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        groups = AGENTS_BY_CONTEXT[self.context]
        valid = {a for agents in groups.values() for a in agents}
        if self.agent not in valid:
            raise ValueError(
                f"agent {self.agent.value!r} is not valid under context "
                f"{self.context.value!r}"
            )

    @property
    def subsystem(self) -> str:
        """The middle tier of the figure ('operating system', 'hardware',
        'application', 'runtime')."""
        for group, agents in AGENTS_BY_CONTEXT[self.context].items():
            if self.agent in agents:
                return group
        raise AssertionError("unreachable: validated in __post_init__")


def render_figure1(
    positions: Iterable[Tuple[str, TaxonomyPosition]],
    title: str = "Figure 1. Classification of the checkpoint/restart implementations.",
) -> str:
    """Render the taxonomy tree with registered mechanisms as leaves.

    ``positions`` is an iterable of (mechanism name, position).
    """
    by_slot: Dict[Tuple[Context, str, Agent], List[str]] = {}
    for name, pos in positions:
        by_slot.setdefault((pos.context, pos.subsystem, pos.agent), []).append(name)
    lines: List[str] = [title, "", "checkpoint/restart implementations"]
    contexts = list(Context)
    for ci, ctx in enumerate(contexts):
        ctx_last = ci == len(contexts) - 1
        lines.append(f"{'`-- ' if ctx_last else '|-- '}{ctx.value}")
        ctx_pad = "    " if ctx_last else "|   "
        groups = AGENTS_BY_CONTEXT[ctx]
        group_names = list(groups)
        for gi, group in enumerate(group_names):
            g_last = gi == len(group_names) - 1
            lines.append(f"{ctx_pad}{'`-- ' if g_last else '|-- '}{group}")
            g_pad = ctx_pad + ("    " if g_last else "|   ")
            agents = groups[group]
            for ai, agent in enumerate(agents):
                a_last = ai == len(agents) - 1
                names = sorted(by_slot.get((ctx, group, agent), []))
                suffix = f"  [{', '.join(names)}]" if names else ""
                lines.append(
                    f"{g_pad}{'`-- ' if a_last else '|-- '}{agent.value}{suffix}"
                )
    return "\n".join(lines)
