"""Checkpoint image format: full and incremental process images.

An image holds everything needed to recreate a process "at the point of
progress represented by this state": identification, registers, the
restart cursor (completed main-program ops), VMA descriptors, file
descriptor snapshots, signal state, and the memory payload as a list of
:class:`Chunk` objects (whole pages for page-granularity mechanisms,
sub-page blocks for probabilistic/hardware granularities).

Incremental chains: a delta image records ``parent_key``; restore walks
the chain from the full base forward, later chunks overwriting earlier
ones (:func:`materialize_chain`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckpointError, RestartError
from ..simkernel.memory import VMAKind, page_checksum
from ..simkernel.process import Task

__all__ = ["Chunk", "VMADescriptor", "FDDescriptor", "CheckpointImage", "materialize_chain"]

#: Fixed metadata overhead accounted per image (headers, task struct).
METADATA_BYTES = 4096
#: Accounted bytes per VMA / per FD descriptor record.
VMA_RECORD_BYTES = 64
FD_RECORD_BYTES = 48


@dataclass
class Chunk:
    """One contiguous span of saved memory.

    ``offset``/``nbytes`` allow sub-page blocks; page-granularity
    mechanisms use offset 0 and nbytes == page_size.  ``npages > 1``
    marks an *extent*: ``data`` covers that many contiguous pages
    starting at ``page_index`` (offset must be 0).  Extents collapse
    thousands of per-page Chunk objects into a handful of array slices;
    everything that consumes chunks either handles extents natively or
    splits them with :meth:`split_pages`.
    """

    vma: str
    page_index: int
    offset: int
    data: np.ndarray  # uint8 copy of the saved bytes
    npages: int = 1
    #: Lazily computed on first access (many chunks are captured, sent
    #: and dropped without anyone reading the checksum).
    _checksum: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.npages > 1 and self.offset != 0:
            raise CheckpointError("multi-page extent must start at offset 0")

    @property
    def checksum(self) -> int:
        """Deterministic checksum of the payload, computed on demand."""
        if self._checksum is None:
            self._checksum = page_checksum(self.data)
        return self._checksum

    @property
    def nbytes(self) -> int:
        """Saved payload size."""
        return int(self.data.size)

    def split_pages(self) -> Iterator["Chunk"]:
        """Yield per-page chunks (self if not an extent; views, no copies)."""
        if self.npages == 1:
            yield self
            return
        ps = self.data.size // self.npages
        for i in range(self.npages):
            yield Chunk(
                vma=self.vma,
                page_index=self.page_index + i,
                offset=0,
                data=self.data[i * ps : (i + 1) * ps],
            )


@dataclass
class VMADescriptor:
    """Recreate-a-VMA record."""

    name: str
    nbytes: int
    prot: int
    kind: str
    shared: bool = False
    file_path: Optional[str] = None
    shm_key: Optional[int] = None


@dataclass
class FDDescriptor:
    """Recreate-a-descriptor record (plus rescue data for deleted files)."""

    fd: int
    path: str
    kind: str
    offset: int
    flags: int = 0
    #: UCLiK-style rescue: contents of a deleted-but-open file.
    rescued_content: Optional[bytes] = None
    #: Socket identity (kernel-persistent state).
    local_port: Optional[int] = None
    remote_addr: Optional[str] = None


@dataclass
class CheckpointImage:
    """A (full or incremental) checkpoint of one task."""

    key: str
    mechanism: str
    pid: int
    task_name: str
    node_id: int
    step: int
    registers: Dict[str, Any]
    vmas: List[VMADescriptor] = field(default_factory=list)
    fds: List[FDDescriptor] = field(default_factory=list)
    signals: Dict[str, Any] = field(default_factory=dict)
    chunks: List[Chunk] = field(default_factory=list)
    #: Full image (None) or delta whose base is ``parent_key``.
    parent_key: Optional[str] = None
    #: Virtual time the checkpoint completed.
    time_ns: int = 0
    #: Program-visible state that conceptually lives in restored memory
    #: (workload reference and user annotations survive via this).
    user_state: Dict[str, Any] = field(default_factory=dict)
    #: Pod/virtualization table (ZAP): virtual->physical resource ids.
    pod: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def is_incremental(self) -> bool:
        """Whether this image is a delta over ``parent_key``."""
        return self.parent_key is not None

    @property
    def payload_bytes(self) -> int:
        """Saved memory payload (the quantity experiments E5/E6 plot)."""
        return sum(c.nbytes for c in self.chunks)

    @property
    def size_bytes(self) -> int:
        """Total accounted image size including metadata records."""
        return (
            METADATA_BYTES
            + VMA_RECORD_BYTES * len(self.vmas)
            + FD_RECORD_BYTES * len(self.fds)
            + self.payload_bytes
            + sum(len(f.rescued_content or b"") for f in self.fds)
        )

    # ------------------------------------------------------------------
    def add_page(self, vma_name: str, page_index: int, data: np.ndarray) -> Chunk:
        """Append one whole-page chunk (copying ``data``)."""
        chunk = Chunk(vma=vma_name, page_index=page_index, offset=0, data=np.array(data, copy=True))
        self.chunks.append(chunk)
        return chunk

    def add_block(
        self, vma_name: str, page_index: int, offset: int, data: np.ndarray
    ) -> Chunk:
        """Append a sub-page block chunk (probabilistic/hardware modes)."""
        chunk = Chunk(
            vma=vma_name, page_index=page_index, offset=offset, data=np.array(data, copy=True)
        )
        self.chunks.append(chunk)
        return chunk

    def add_extent(
        self, vma_name: str, page_index: int, data: np.ndarray, npages: int
    ) -> Chunk:
        """Append a multi-page extent chunk (copying ``data``)."""
        chunk = Chunk(
            vma=vma_name,
            page_index=page_index,
            offset=0,
            data=np.array(data, copy=True).reshape(-1),
            npages=npages,
        )
        self.chunks.append(chunk)
        return chunk

    # ------------------------------------------------------------------
    def verify_against(self, task: Task) -> List[str]:
        """Compare every chunk with the task's live memory.

        Returns a list of mismatch descriptions -- empty means the image
        is consistent with the process (the test used to demonstrate torn
        captures when the application was not stopped, experiment E9).
        """
        problems: List[str] = []
        for chunk in self.chunks:
            try:
                vma = task.mm.vma(chunk.vma)
            except Exception:
                problems.append(f"vma {chunk.vma!r} missing")
                continue
            for c in chunk.split_pages():
                live = vma.read_page(c.page_index)[c.offset : c.offset + c.nbytes]
                if page_checksum(np.ascontiguousarray(live)) != c.checksum:
                    problems.append(f"{c.vma}[{c.page_index}]+{c.offset} differs")
        return problems

    def dirty_byte_extents(self, page_size: int) -> List[Tuple[int, int]]:
        """Chunk positions as merged byte extents of the flat image.

        VMAs are laid out back-to-back in descriptor order (the same
        canonical address space every flat image of one task shares, so
        extents from successive deltas compose), and each chunk maps to
        ``vma_base + page_index * page_size + offset``.  The result is
        sorted with overlapping/adjacent runs merged -- the dirty-extent
        form :meth:`ErasureStore.store_delta
        <repro.stablestore.ErasureStore.store_delta>` consumes when an
        incremental checkpoint re-protects a compacted image.
        """
        base: Dict[str, int] = {}
        running = 0
        for vd in self.vmas:
            base[vd.name] = running
            running += vd.nbytes
        extents: List[Tuple[int, int]] = []
        for chunk in self.chunks:
            if chunk.vma not in base:
                continue
            start = base[chunk.vma] + chunk.page_index * page_size + chunk.offset
            extents.append((start, chunk.nbytes))
        extents.sort()
        merged: List[List[int]] = []
        for off, length in extents:
            if merged and off <= merged[-1][0] + merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], off + length - merged[-1][0])
            else:
                merged.append([off, length])
        return [(off, length) for off, length in merged]

    def chunk_index(self) -> Dict[Any, Chunk]:
        """Last-writer-wins index of chunks by (vma, page, offset).

        Extents are split into per-page entries (data views, no copies)
        so callers see the same keys regardless of capture coalescing.
        """
        out: Dict[Any, Chunk] = {}
        for chunk in self.chunks:
            for c in chunk.split_pages():
                out[(c.vma, c.page_index, c.offset)] = c
        return out


def _covered_runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """(start, length) runs of True in a boolean byte mask."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [(int(idx[s]), int(idx[e] - idx[s] + 1)) for s, e in zip(starts, ends)]


def materialize_chain(
    images: Sequence[CheckpointImage], page_size: Optional[int] = None
) -> CheckpointImage:
    """Flatten a full-image + deltas chain into one restorable image.

    ``images`` must be ordered base-first; the base must be a full image
    and each subsequent delta's ``parent_key`` must name its predecessor.

    Chunks are merged through a per-page byte overlay: each chunk paints
    its span in chain order, so a later sub-page delta correctly patches
    *into* an earlier whole-page or extent chunk instead of replacing it
    wholesale.  When ``page_size`` is given, fully covered neighbouring
    pages are re-merged into extents in the flattened output.
    """
    if not images:
        raise RestartError("empty image chain")
    base = images[0]
    if base.is_incremental:
        raise RestartError(f"chain base {base.key!r} is itself incremental")
    prev_key = base.key
    for delta in images[1:]:
        if delta.parent_key != prev_key:
            raise RestartError(
                f"broken chain: {delta.key!r} has parent {delta.parent_key!r}, "
                f"expected {prev_key!r}"
            )
        prev_key = delta.key
    # ---- overlay pass: paint every chunk, chain order = write order ----
    overlays: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}
    for img in images:
        for chunk in img.chunks:
            for c in chunk.split_pages():
                key = (c.vma, c.page_index)
                end = c.offset + c.nbytes
                entry = overlays.get(key)
                if entry is None:
                    size = max(end, page_size or 0)
                    entry = (np.zeros(size, np.uint8), np.zeros(size, bool))
                    overlays[key] = entry
                elif end > entry[0].size:
                    buf = np.zeros(end, np.uint8)
                    msk = np.zeros(end, bool)
                    buf[: entry[0].size] = entry[0]
                    msk[: entry[1].size] = entry[1]
                    entry = (buf, msk)
                    overlays[key] = entry
                entry[0][c.offset : end] = c.data
                entry[1][c.offset : end] = True
    # ---- emit pass: covered runs per page, extents re-merged ----------
    merged: List[Chunk] = []
    pending: Optional[Tuple[str, int, List[np.ndarray]]] = None

    def flush() -> None:
        nonlocal pending
        if pending is None:
            return
        vma, first, bufs = pending
        pending = None
        if len(bufs) == 1:
            merged.append(Chunk(vma=vma, page_index=first, offset=0, data=bufs[0]))
        else:
            merged.append(
                Chunk(
                    vma=vma,
                    page_index=first,
                    offset=0,
                    data=np.concatenate(bufs),
                    npages=len(bufs),
                )
            )

    for (vma, pidx) in sorted(overlays):
        buf, mask = overlays[(vma, pidx)]
        if page_size is not None and buf.size == page_size and mask.all():
            if pending is not None and pending[0] == vma and pending[1] + len(pending[2]) == pidx:
                pending[2].append(buf)
            else:
                flush()
                pending = (vma, pidx, [buf])
            continue
        flush()
        for start, length in _covered_runs(mask):
            merged.append(
                Chunk(vma=vma, page_index=pidx, offset=start, data=buf[start : start + length])
            )
    flush()
    last = images[-1]
    flat = CheckpointImage(
        key=last.key + "+flat",
        mechanism=last.mechanism,
        pid=last.pid,
        task_name=last.task_name,
        node_id=last.node_id,
        step=last.step,
        registers=dict(last.registers),
        vmas=list(last.vmas),
        fds=list(last.fds),
        signals=dict(last.signals),
        chunks=merged,
        parent_key=None,
        time_ns=last.time_ns,
        user_state=dict(last.user_state),
        pod=dict(last.pod) if last.pod else None,
    )
    return flat
