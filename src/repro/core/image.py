"""Checkpoint image format: full and incremental process images.

An image holds everything needed to recreate a process "at the point of
progress represented by this state": identification, registers, the
restart cursor (completed main-program ops), VMA descriptors, file
descriptor snapshots, signal state, and the memory payload as a list of
:class:`Chunk` objects (whole pages for page-granularity mechanisms,
sub-page blocks for probabilistic/hardware granularities).

Incremental chains: a delta image records ``parent_key``; restore walks
the chain from the full base forward, later chunks overwriting earlier
ones (:func:`materialize_chain`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import CheckpointError, RestartError
from ..simkernel.memory import VMAKind, page_checksum
from ..simkernel.process import Task

__all__ = ["Chunk", "VMADescriptor", "FDDescriptor", "CheckpointImage", "materialize_chain"]

#: Fixed metadata overhead accounted per image (headers, task struct).
METADATA_BYTES = 4096
#: Accounted bytes per VMA / per FD descriptor record.
VMA_RECORD_BYTES = 64
FD_RECORD_BYTES = 48


@dataclass
class Chunk:
    """One contiguous span of saved memory within a page.

    ``offset``/``nbytes`` allow sub-page blocks; page-granularity
    mechanisms always use offset 0 and nbytes == page_size.
    """

    vma: str
    page_index: int
    offset: int
    data: np.ndarray  # uint8 copy of the saved bytes
    checksum: int = 0

    def __post_init__(self) -> None:
        if self.checksum == 0:
            self.checksum = page_checksum(self.data)

    @property
    def nbytes(self) -> int:
        """Saved payload size."""
        return int(self.data.size)


@dataclass
class VMADescriptor:
    """Recreate-a-VMA record."""

    name: str
    nbytes: int
    prot: int
    kind: str
    shared: bool = False
    file_path: Optional[str] = None
    shm_key: Optional[int] = None


@dataclass
class FDDescriptor:
    """Recreate-a-descriptor record (plus rescue data for deleted files)."""

    fd: int
    path: str
    kind: str
    offset: int
    flags: int = 0
    #: UCLiK-style rescue: contents of a deleted-but-open file.
    rescued_content: Optional[bytes] = None
    #: Socket identity (kernel-persistent state).
    local_port: Optional[int] = None
    remote_addr: Optional[str] = None


@dataclass
class CheckpointImage:
    """A (full or incremental) checkpoint of one task."""

    key: str
    mechanism: str
    pid: int
    task_name: str
    node_id: int
    step: int
    registers: Dict[str, Any]
    vmas: List[VMADescriptor] = field(default_factory=list)
    fds: List[FDDescriptor] = field(default_factory=list)
    signals: Dict[str, Any] = field(default_factory=dict)
    chunks: List[Chunk] = field(default_factory=list)
    #: Full image (None) or delta whose base is ``parent_key``.
    parent_key: Optional[str] = None
    #: Virtual time the checkpoint completed.
    time_ns: int = 0
    #: Program-visible state that conceptually lives in restored memory
    #: (workload reference and user annotations survive via this).
    user_state: Dict[str, Any] = field(default_factory=dict)
    #: Pod/virtualization table (ZAP): virtual->physical resource ids.
    pod: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def is_incremental(self) -> bool:
        """Whether this image is a delta over ``parent_key``."""
        return self.parent_key is not None

    @property
    def payload_bytes(self) -> int:
        """Saved memory payload (the quantity experiments E5/E6 plot)."""
        return sum(c.nbytes for c in self.chunks)

    @property
    def size_bytes(self) -> int:
        """Total accounted image size including metadata records."""
        return (
            METADATA_BYTES
            + VMA_RECORD_BYTES * len(self.vmas)
            + FD_RECORD_BYTES * len(self.fds)
            + self.payload_bytes
            + sum(len(f.rescued_content or b"") for f in self.fds)
        )

    # ------------------------------------------------------------------
    def add_page(self, vma_name: str, page_index: int, data: np.ndarray) -> Chunk:
        """Append one whole-page chunk (copying ``data``)."""
        chunk = Chunk(vma=vma_name, page_index=page_index, offset=0, data=np.array(data, copy=True))
        self.chunks.append(chunk)
        return chunk

    def add_block(
        self, vma_name: str, page_index: int, offset: int, data: np.ndarray
    ) -> Chunk:
        """Append a sub-page block chunk (probabilistic/hardware modes)."""
        chunk = Chunk(
            vma=vma_name, page_index=page_index, offset=offset, data=np.array(data, copy=True)
        )
        self.chunks.append(chunk)
        return chunk

    # ------------------------------------------------------------------
    def verify_against(self, task: Task) -> List[str]:
        """Compare every chunk with the task's live memory.

        Returns a list of mismatch descriptions -- empty means the image
        is consistent with the process (the test used to demonstrate torn
        captures when the application was not stopped, experiment E9).
        """
        problems: List[str] = []
        for c in self.chunks:
            try:
                vma = task.mm.vma(c.vma)
            except Exception:
                problems.append(f"vma {c.vma!r} missing")
                continue
            live = vma.read_page(c.page_index)[c.offset : c.offset + c.nbytes]
            if page_checksum(np.ascontiguousarray(live)) != c.checksum:
                problems.append(f"{c.vma}[{c.page_index}]+{c.offset} differs")
        return problems

    def chunk_index(self) -> Dict[Any, Chunk]:
        """Last-writer-wins index of chunks by (vma, page, offset)."""
        out: Dict[Any, Chunk] = {}
        for c in self.chunks:
            out[(c.vma, c.page_index, c.offset)] = c
        return out


def materialize_chain(images: Sequence[CheckpointImage]) -> CheckpointImage:
    """Flatten a full-image + deltas chain into one restorable image.

    ``images`` must be ordered base-first; the base must be a full image
    and each subsequent delta's ``parent_key`` must name its predecessor.
    """
    if not images:
        raise RestartError("empty image chain")
    base = images[0]
    if base.is_incremental:
        raise RestartError(f"chain base {base.key!r} is itself incremental")
    merged: Dict[Any, Chunk] = dict(base.chunk_index())
    prev_key = base.key
    for delta in images[1:]:
        if delta.parent_key != prev_key:
            raise RestartError(
                f"broken chain: {delta.key!r} has parent {delta.parent_key!r}, "
                f"expected {prev_key!r}"
            )
        merged.update(delta.chunk_index())
        prev_key = delta.key
    last = images[-1]
    flat = CheckpointImage(
        key=last.key + "+flat",
        mechanism=last.mechanism,
        pid=last.pid,
        task_name=last.task_name,
        node_id=last.node_id,
        step=last.step,
        registers=dict(last.registers),
        vmas=list(last.vmas),
        fds=list(last.fds),
        signals=dict(last.signals),
        chunks=list(merged.values()),
        parent_key=None,
        time_ns=last.time_ns,
        user_state=dict(last.user_state),
        pod=dict(last.pod) if last.pod else None,
    )
    return flat
