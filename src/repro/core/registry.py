"""Mechanism registry: name -> Checkpointer class + taxonomy position.

Figure 1 and Table 1 are *generated from this registry* (benchmarks E1
and E2), so registering a new mechanism automatically places it in the
figure and adds its row to the table.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..errors import RegistryError
from .checkpointer import Checkpointer
from .features import Features
from .taxonomy import TaxonomyPosition

__all__ = ["register", "get", "names", "all_mechanisms", "positions", "features", "clear"]

_REGISTRY: Dict[str, Type[Checkpointer]] = {}
#: Registration order, preserved so Table 1 prints in the paper's order.
_ORDER: List[str] = []


def register(cls: Type[Checkpointer]) -> Type[Checkpointer]:
    """Class decorator: add a Checkpointer subclass to the registry."""
    name = cls.mech_name
    if not name or name == "abstract":
        raise RegistryError(f"{cls.__name__} must define a mech_name")
    if not isinstance(getattr(cls, "position", None), TaxonomyPosition):
        raise RegistryError(f"{name}: missing TaxonomyPosition")
    if not isinstance(getattr(cls, "features", None), Features):
        raise RegistryError(f"{name}: missing Features")
    if name in _REGISTRY:
        raise RegistryError(f"mechanism {name!r} already registered")
    _REGISTRY[name] = cls
    _ORDER.append(name)
    return cls


def get(name: str) -> Type[Checkpointer]:
    """Look up a mechanism class by its Table-1 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown mechanism {name!r}; known: {', '.join(_ORDER)}"
        ) from None


def names() -> List[str]:
    """All registered names, in registration (paper) order."""
    return list(_ORDER)


def all_mechanisms() -> Iterator[Tuple[str, Type[Checkpointer]]]:
    """Iterate (name, class) in registration order."""
    for n in _ORDER:
        yield n, _REGISTRY[n]


def positions(surveyed_only: bool = False) -> List[Tuple[str, TaxonomyPosition]]:
    """(name, position) pairs for Figure 1.

    ``surveyed_only`` restricts to the mechanisms the paper itself
    covers, reproducing the figure exactly; the default includes designs
    this repository adds (marked ``surveyed = False``).
    """
    return [
        (n, _REGISTRY[n].position)
        for n in _ORDER
        if not surveyed_only or _REGISTRY[n].surveyed
    ]


def features() -> List[Tuple[str, Features]]:
    """(name, features) pairs for Table 1."""
    return [(n, _REGISTRY[n].features) for n in _ORDER]


def clear() -> None:
    """Empty the registry (test isolation only)."""
    _REGISTRY.clear()
    _ORDER.clear()
