"""Autonomic (self-managing) checkpoint policies.

The paper's autonomic-computing requirement: the checkpoint entity must
be "capable of managing their internal behavior in accordance with
policies that users or other elements have established", including
"adjustment of the checkpoint interval to the failure rate of the
system or *safe* pre-emption by another process".  Built here:

* :class:`FailureRateEstimator` -- online MTBF estimate from observed
  failures (exponentially weighted inter-arrival mean with a prior).
* :class:`AutonomicIntervalController` -- closes the loop: measured
  checkpoint cost + estimated MTBF -> Daly interval -> retune the
  coordinator/mechanism timers.  Experiment E15 scores it against fixed
  intervals and an oracle.
* :class:`SafePreemption` -- checkpoint-then-stop so a higher-priority
  job can take the resources, with a guaranteed resumable image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.interval import daly_interval_s
from ..errors import CheckpointError
from ..obs import MetricsRegistry
from ..simkernel import Task
from ..simkernel.costs import NS_PER_S
from .checkpointer import Checkpointer, CheckpointRequest, RequestState

__all__ = ["FailureRateEstimator", "AutonomicIntervalController", "SafePreemption"]


class FailureRateEstimator:
    """Online MTBF estimation from observed failure times.

    Uses an exponentially weighted mean of inter-failure gaps, seeded
    with a prior so the controller behaves sanely before the first
    failure.  ``alpha`` is the weight of the newest observation.
    """

    def __init__(
        self,
        prior_mtbf_s: float,
        alpha: float = 0.3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if prior_mtbf_s <= 0:
            raise CheckpointError("prior MTBF must be positive")
        if not 0.0 < alpha <= 1.0:
            raise CheckpointError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.metrics = metrics
        self._estimate_s = prior_mtbf_s
        self._last_failure_ns: Optional[int] = None
        self.observations = 0
        #: Observations discarded for arriving at or before the previous
        #: failure time (out-of-order delivery, duplicate reports).
        self.out_of_order = 0

    def observe_failure(self, time_ns: int) -> None:
        """Record a failure at virtual time ``time_ns``.

        Observations must be strictly monotonic in time: an out-of-order
        or duplicate report is *ignored* (and counted) rather than
        clamped to a 1 ns gap -- clamping would fold a near-zero
        inter-arrival sample into the EWMA and collapse the MTBF
        estimate, which then drives the Daly interval to its floor.
        """
        if self._last_failure_ns is not None and time_ns <= self._last_failure_ns:
            self.out_of_order += 1
            if self.metrics is not None:
                self.metrics.inc("autonomic.out_of_order_failures")
            return
        if self._last_failure_ns is not None:
            gap_s = (time_ns - self._last_failure_ns) / NS_PER_S
            self._estimate_s = (
                self.alpha * gap_s + (1.0 - self.alpha) * self._estimate_s
            )
        self._last_failure_ns = time_ns
        self.observations += 1
        if self.metrics is not None:
            self.metrics.inc("autonomic.failures_observed")

    @property
    def mtbf_s(self) -> float:
        """Current MTBF estimate in seconds."""
        return self._estimate_s


class AutonomicIntervalController:
    """Adaptive checkpoint-interval controller (Daly-driven).

    Parameters
    ----------
    estimator:
        Failure-rate source (wire it to ``cluster.on_failure``).
    min_interval_s / max_interval_s:
        Safety clamps on the chosen interval.
    cost_alpha:
        EWMA weight for the measured checkpoint cost.
    """

    def __init__(
        self,
        estimator: FailureRateEstimator,
        min_interval_s: float = 1e-3,
        max_interval_s: float = 86_400.0,
        cost_alpha: float = 0.3,
        storage_alpha: float = 0.3,
        storage_weight: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.estimator = estimator
        self.metrics = metrics
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        self.cost_alpha = cost_alpha
        self.storage_alpha = storage_alpha
        self.storage_weight = storage_weight
        self._cost_s: Optional[float] = None
        self._storage_s: Optional[float] = None
        self.retunes = 0

    def observe_checkpoint(self, req: CheckpointRequest) -> None:
        """Feed a completed request's measured cost into the model.

        The relevant cost for interval choice is the *application
        stall*, not the total capture time (a concurrent kernel thread
        writing to storage does not slow the job down).  The stable-
        storage commit latency is tracked separately: an image is no
        protection until it is durable, so the storage tier's observed
        latency bounds the useful checkpoint cadence and is folded into
        the Daly cost below.
        """
        if req.state != RequestState.DONE:
            return
        cost_s = max(1e-9, req.target_stall_ns / NS_PER_S)
        if self._cost_s is None:
            self._cost_s = cost_s
        else:
            self._cost_s = (
                self.cost_alpha * cost_s + (1.0 - self.cost_alpha) * self._cost_s
            )
        if req.storage_delay_ns > 0:
            self.observe_storage_latency(req.storage_delay_ns)

    def observe_storage_latency(self, latency_ns: int) -> None:
        """Feed one observed stable-storage write latency (EWMA).

        Under contention -- many compute nodes checkpointing through the
        shared storage service at once -- this rises, and the
        recommended interval widens with it (E19).
        """
        latency_s = max(0.0, latency_ns / NS_PER_S)
        if self._storage_s is None:
            self._storage_s = latency_s
        else:
            self._storage_s = (
                self.storage_alpha * latency_s
                + (1.0 - self.storage_alpha) * self._storage_s
            )

    @property
    def checkpoint_cost_s(self) -> Optional[float]:
        """Current checkpoint-cost estimate (None before any sample)."""
        return self._cost_s

    @property
    def storage_latency_s(self) -> Optional[float]:
        """Current stable-storage commit-latency estimate."""
        return self._storage_s

    def recommended_interval_s(self) -> float:
        """Daly interval from current estimates, clamped.

        The effective per-checkpoint cost is the application stall plus
        the (weighted) storage commit latency: the paper's Daly ``δ`` is
        the end-to-end price of one durable checkpoint, and with a
        remote replicated store the commit is usually the bigger term.
        """
        cost = self._cost_s if self._cost_s is not None else self.min_interval_s
        if self._storage_s is not None:
            cost = cost + self.storage_weight * self._storage_s
        tau = daly_interval_s(cost, self.estimator.mtbf_s)
        return min(self.max_interval_s, max(self.min_interval_s, tau))

    def recommended_interval_ns(self) -> int:
        """The same, in engine units."""
        return int(self.recommended_interval_s() * NS_PER_S)

    def retune(self, coordinator) -> int:
        """Push the recommendation into a CheckpointCoordinator (or any
        object with an ``interval_ns`` attribute); returns the value."""
        iv = self.recommended_interval_ns()
        coordinator.interval_ns = iv
        self.retunes += 1
        if self.metrics is not None:
            self.metrics.inc("autonomic.retunes")
            self.metrics.set_gauge("autonomic.interval_ns", iv)
        return iv


class SafePreemption:
    """Checkpoint-then-yield: free resources without losing work.

    The paper lists "safe pre-emption by another process" among the
    self-managing functions.  :meth:`preempt` checkpoints the victim and
    freezes it once the image is durable; :meth:`resume_in_place` thaws
    it, and :meth:`resume_from_image` rebuilds it elsewhere (e.g. if the
    node was reclaimed entirely).
    """

    #: How often the parking watcher re-checks the request.
    poll_interval_ns: int = 1_000_000
    #: How long a preemption may stay in flight before parking is
    #: abandoned.  Bounds the watcher: without it, a request stuck in
    #: PENDING/RUNNING (capture generator abandoned, storage hung)
    #: rescheduled the 1 ms poll forever.
    park_deadline_ns: int = 300 * NS_PER_S

    def __init__(
        self,
        mechanism: Checkpointer,
        poll_interval_ns: Optional[int] = None,
        park_deadline_ns: Optional[int] = None,
    ) -> None:
        self.mechanism = mechanism
        self.parked: dict = {}
        #: pid -> reason for preemptions whose parking never happened.
        self.park_failures: Dict[int, str] = {}
        if poll_interval_ns is not None:
            self.poll_interval_ns = int(poll_interval_ns)
        if park_deadline_ns is not None:
            self.park_deadline_ns = int(park_deadline_ns)

    def preempt(self, task: Task) -> CheckpointRequest:
        """Checkpoint ``task`` and freeze it when the image is durable.

        The parking watcher is *bounded*: it stops (and surfaces a
        ``preempt.park_failed`` metric) when the request fails or when
        :attr:`park_deadline_ns` of virtual time passes without the
        image becoming durable, instead of polling forever.
        """
        kernel = self.mechanism.kernel
        engine = kernel.engine
        self.mechanism.prepare_target(task)
        req = self.mechanism.request_checkpoint(task)
        engine.metrics.inc("preempt.requests")
        deadline_ns = engine.now_ns + self.park_deadline_ns

        def give_up(reason: str) -> None:
            self.park_failures[task.pid] = reason
            engine.metrics.inc("preempt.park_failed")
            engine.tracer.instant(
                "preempt.park_failed", pid=task.pid, key=req.key, reason=reason
            )

        def park_when_done() -> None:
            if req.state == RequestState.DONE:
                if task.alive():
                    kernel.stop_task(task)
                self.parked[task.pid] = req.key
                self.park_failures.pop(task.pid, None)
                engine.metrics.inc("preempt.parked")
            elif req.state == RequestState.FAILED:
                give_up("checkpoint failed; nothing durable, task left running")
            elif engine.now_ns >= deadline_ns:
                give_up(
                    f"checkpoint still {req.state.value} after "
                    f"{self.park_deadline_ns} ns; abandoning park"
                )
            else:
                engine.after(self.poll_interval_ns, park_when_done, label="park-poll")

        engine.after(self.poll_interval_ns, park_when_done, label="park-poll")
        return req

    def resume_in_place(self, task: Task) -> None:
        """Thaw a parked task on its original node."""
        if task.pid not in self.parked:
            raise CheckpointError(f"pid {task.pid} is not parked")
        self.mechanism.kernel.resume_task(task)
        del self.parked[task.pid]

    def resume_from_image(self, pid: int, target_kernel=None):
        """Rebuild a parked task from its durable image (any node)."""
        key = self.parked.pop(pid, None)
        if key is None:
            raise CheckpointError(f"pid {pid} is not parked")
        return self.mechanism.restart(key, target_kernel=target_kernel)
