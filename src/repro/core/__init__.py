"""Core checkpoint/restart framework.

Images, the Checkpointer API, the taxonomy (Figure 1), the feature
matrix (Table 1), the mechanism registry, the paper's advocated
"direction forward" design, and the autonomic policies built on it.
"""

from . import capture, registry
from .checkpointer import Checkpointer, CheckpointRequest, RequestState
from .features import (
    Features,
    Initiation,
    PAPER_TABLE1,
    TABLE1_COLUMNS,
    build_feature_matrix,
    table1_row,
)
from .image import (
    CheckpointImage,
    Chunk,
    FDDescriptor,
    VMADescriptor,
    materialize_chain,
)
from .taxonomy import Agent, Context, TaxonomyPosition, render_figure1

__all__ = [
    "capture",
    "registry",
    "Checkpointer",
    "CheckpointRequest",
    "RequestState",
    "Features",
    "Initiation",
    "PAPER_TABLE1",
    "TABLE1_COLUMNS",
    "build_feature_matrix",
    "table1_row",
    "CheckpointImage",
    "Chunk",
    "FDDescriptor",
    "VMADescriptor",
    "materialize_chain",
    "Agent",
    "Context",
    "TaxonomyPosition",
    "render_figure1",
]
