"""The abstract Checkpointer API.

A :class:`Checkpointer` is one point in the paper's taxonomy made
executable: it installs itself into a simulated kernel through the same
interface its real counterpart uses (new syscalls, a new kernel signal, a
kernel thread behind a /dev or /proc node, user-level signal handlers
plus preloaded wrappers), accepts checkpoint requests, produces
:class:`~repro.core.image.CheckpointImage` objects on stable storage, and
restarts tasks from them.

The request lifecycle is asynchronous in virtual time: initiation returns
a :class:`CheckpointRequest` immediately; the capture work is executed by
the simulation (inside whatever context the mechanism uses), and the
request records initiation latency, capture duration, stall time and
image key for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..errors import CheckpointError, RestartError, StorageError
from ..simkernel import Kernel, Task
from ..storage.backends import StorageBackend
from .capture import RestoreResult, load_image, restore_image
from .features import Features
from .image import CheckpointImage, materialize_chain
from .taxonomy import TaxonomyPosition

__all__ = ["RequestState", "CheckpointRequest", "Checkpointer"]


class RequestState(str, Enum):
    """Lifecycle of a checkpoint request."""

    PENDING = "pending"  # initiated, capture not yet started
    RUNNING = "running"  # capture in progress
    DONE = "done"
    FAILED = "failed"


@dataclass
class CheckpointRequest:
    """Tracking record for one checkpoint operation."""

    key: str
    target_pid: int
    mechanism: str
    initiated_ns: int
    state: RequestState = RequestState.PENDING
    started_ns: Optional[int] = None
    completed_ns: Optional[int] = None
    image: Optional[CheckpointImage] = None
    error: Optional[str] = None
    #: Virtual time the target spent frozen for this checkpoint.
    target_stall_ns: int = 0
    #: Client-visible stable-storage write latency for the image (the
    #: autonomic controller folds this into its interval retuning).
    storage_delay_ns: int = 0
    incremental: bool = False
    #: Tracing span covering initiation -> completion (closed by
    #: ``_complete``/``_fail``; stays open if the capture is abandoned).
    span: Optional[Any] = field(default=None, repr=False)
    #: Watchers invoked (with the request) when the request reaches DONE
    #: or FAILED.  Event-driven consumers -- the distributed-snapshot
    #: protocols collecting a whole gang's captures -- subscribe here
    #: instead of polling the state on an engine timer.
    _watchers: List[Callable[["CheckpointRequest"], None]] = field(
        default_factory=list, repr=False
    )

    def add_done_callback(self, fn: Callable[["CheckpointRequest"], None]) -> None:
        """Run ``fn(self)`` once the request completes or fails (now, if
        it already has)."""
        if self.state in (RequestState.DONE, RequestState.FAILED):
            fn(self)
        else:
            self._watchers.append(fn)

    def _notify(self) -> None:
        watchers, self._watchers = self._watchers, []
        for fn in watchers:
            fn(self)

    @property
    def initiation_latency_ns(self) -> Optional[int]:
        """Initiation -> capture start (the E7 metric)."""
        if self.started_ns is None:
            return None
        return self.started_ns - self.initiated_ns

    @property
    def capture_duration_ns(self) -> Optional[int]:
        """Capture start -> image on stable storage."""
        if self.completed_ns is None or self.started_ns is None:
            return None
        return self.completed_ns - self.started_ns

    @property
    def total_latency_ns(self) -> Optional[int]:
        """Initiation -> completion."""
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.initiated_ns


class Checkpointer:
    """Base class for every mechanism model.

    Subclasses must set the class attributes ``mech_name``, ``position``
    and ``features``, implement :meth:`request_checkpoint`, and may
    override :meth:`prepare_target` (registration/launcher phases),
    :meth:`install`/:meth:`uninstall` hooks and the restore knobs.

    Parameters
    ----------
    kernel:
        The node this mechanism instance is installed on.
    storage:
        Stable-storage backend checkpoints are written to.  Must be one
        of the kinds the mechanism supports (Table 1 storage column).
    """

    #: Mechanism name exactly as Table 1 spells it.
    mech_name: str = "abstract"
    position: TaxonomyPosition
    features: Features
    description: str = ""
    #: True for mechanisms the paper surveys (Figure 1 / Table 1 members);
    #: False for designs this repository adds (the "direction forward").
    surveyed: bool = True

    def __init__(self, kernel: Kernel, storage: StorageBackend) -> None:
        supported = self.features.stable_storage
        if supported and storage.kind not in supported:
            raise CheckpointError(
                f"{self.mech_name} does not support {storage.kind.value} "
                f"storage (supports: {[k.value for k in supported]})"
            )
        self.kernel = kernel
        self.storage = storage
        self.requests: List[CheckpointRequest] = []
        #: key -> image for chain bookkeeping (images live in storage too).
        self._last_key_for_pid: Dict[int, str] = {}
        #: chain tip key -> materialized flat image (memo: multi-rank
        #: restart_job re-flattens the identical chain per rank otherwise;
        #: wall-clock only, I/O is still charged per restart).
        self._flat_cache: Dict[str, CheckpointImage] = {}
        #: chain tip key -> key of its compacted flat image on storage.
        self._flat_alias: Dict[str, str] = {}
        self.installed = False
        self.install()
        self.installed = True

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Hook the mechanism into the kernel (module load, new syscalls,
        new signals, device nodes).  Default: nothing."""

    def uninstall(self) -> None:
        """Remove kernel hooks (only possible for kernel modules)."""
        if not self.features.kernel_module:
            raise CheckpointError(
                f"{self.mech_name} is compiled into the static kernel and "
                f"cannot be unloaded"
            )
        self.installed = False

    def prepare_target(self, task: Task) -> None:
        """Per-process setup before checkpoints work.

        Default: none (fully transparent mechanisms).  BLCR's library
        registration, EPCKPT's launcher, and every user-level package
        override this -- it is what costs them Table 1's transparency
        "no" (experiment E16).
        """

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """Initiate a checkpoint of ``task`` via this mechanism's interface.

        Returns immediately; run the engine to let the capture proceed.
        """
        raise NotImplementedError

    def _new_request(self, task: Task, incremental: bool = False) -> CheckpointRequest:
        # The generation counter is engine-scoped: unique across every
        # mechanism instance sharing the clock (nodes allocate
        # overlapping pids), yet reset with the engine so same-seed runs
        # produce identical key sequences.
        key = (
            f"{self.mech_name}/{task.pid}/"
            f"{self.kernel.engine.next_id('checkpoint.key')}"
        )
        req = CheckpointRequest(
            key=key,
            target_pid=task.pid,
            mechanism=self.mech_name,
            initiated_ns=self.kernel.engine.now_ns,
            incremental=incremental and self.features.incremental,
        )
        if incremental and not self.features.incremental:
            raise CheckpointError(
                f"{self.mech_name} does not implement incremental checkpointing"
            )
        engine = self.kernel.engine
        engine.metrics.inc("checkpoint.requests")
        req.span = engine.tracer.start_span(
            "checkpoint",
            mechanism=self.mech_name,
            pid=task.pid,
            key=key,
            incremental=req.incremental,
        )
        self.requests.append(req)
        return req

    def _new_image(self, req: CheckpointRequest, task: Task) -> CheckpointImage:
        parent = self._last_key_for_pid.get(task.pid) if req.incremental else None
        return CheckpointImage(
            key=req.key,
            mechanism=self.mech_name,
            pid=task.pid,
            task_name=task.name,
            node_id=self.kernel.node_id,
            step=task.main_steps,
            registers=task.registers.snapshot(),
            parent_key=parent,
        )

    def _complete(self, req: CheckpointRequest, image: CheckpointImage) -> None:
        req.image = image
        req.state = RequestState.DONE
        req.completed_ns = self.kernel.engine.now_ns
        self._last_key_for_pid[req.target_pid] = image.key
        metrics = self.kernel.engine.metrics
        metrics.inc("checkpoint.completed")
        metrics.observe("checkpoint.stall_ns", req.target_stall_ns)
        metrics.observe("checkpoint.capture_bytes", image.size_bytes)
        if req.storage_delay_ns > 0:
            metrics.observe("storage.commit_ns", req.storage_delay_ns)
        if req.span is not None:
            req.span.end(state="done", image_bytes=image.size_bytes)
        if self.compaction_threshold is not None:
            self.maybe_compact(image)
        req._notify()

    def _fail(self, req: CheckpointRequest, message: str) -> None:
        req.state = RequestState.FAILED
        req.error = message
        req.completed_ns = self.kernel.engine.now_ns
        self.kernel.engine.metrics.inc("checkpoint.failed")
        if req.span is not None:
            req.span.end(state="failed", error=message)
        req._notify()

    # ------------------------------------------------------------------
    # Restart
    # ------------------------------------------------------------------
    #: Restore capability knobs subclasses override.
    restores_pid: bool = False
    virtualizes_resources: bool = False
    rescues_deleted_files: bool = False
    #: Flatten delta chains once they reach this many images into a
    #: cached flat blob beside the tip (bounding restart latency and
    #: chain_chunks); None disables compaction.
    compaction_threshold: Optional[int] = None
    #: Entries kept in the materialize memo before the oldest is evicted.
    _FLAT_CACHE_MAX = 16

    def chain_available(self, key: str) -> bool:
        """Whether ``key`` and its whole base+delta ancestry are readable.

        A pure availability probe (no I/O is charged): restart policies
        use it to pick the newest checkpoint *generation* whose chain
        survives the current storage failures before committing to a
        restore.  A surviving compacted flat image also satisfies the
        probe -- restart will read it instead of the chain.
        """
        alias = self._flat_alias.get(key)
        if alias is not None and self.storage.exists(alias):
            return True
        k: Optional[str] = key
        while k is not None:
            if not self.storage.exists(k):
                return False
            try:
                image = self.storage.peek(k)
            except StorageError:
                return False
            k = getattr(image, "parent_key", None)
        return True

    def _chain_keys(self, key: str) -> List[str]:
        """Tip-first key list of ``key``'s ancestry (I/O-free peek walk)."""
        keys: List[str] = []
        k: Optional[str] = key
        while k is not None:
            keys.append(k)
            k = getattr(self.storage.peek(k), "parent_key", None)
        return keys

    def image_chain(
        self,
        key: str,
        target_kernel: Optional[Kernel] = None,
        prefetch: bool = False,
    ):
        """Fetch the full-image + delta chain ending at ``key``.

        ``prefetch`` fans the fetches out at one virtual instant through
        the backend's :meth:`load_parallel` (total delay = slowest fetch
        instead of the serial walk's sum).  When a compacted flat image
        of this tip survives on storage, both modes read that single
        blob instead of the chain.
        """
        kernel = target_kernel or self.kernel
        alias = self._flat_alias.get(key)
        if alias is not None and self.storage.exists(alias):
            image, delay = load_image(kernel, self.storage, alias)
            kernel.engine.metrics.inc("restart.compacted_hits")
            return [image], delay
        if prefetch and hasattr(self.storage, "load_parallel"):
            keys = self._chain_keys(key)
            objs, total_delay = self.storage.load_parallel(
                keys, kernel.engine.now_ns
            )
            chain = []
            for k in keys:
                img = objs[k]
                if not isinstance(img, CheckpointImage):
                    raise RestartError(f"blob {k!r} is not a checkpoint image")
                chain.append(img)
            chain.reverse()
            kernel.engine.metrics.inc("restart.prefetched_chains")
            return chain, total_delay
        chain: List[CheckpointImage] = []
        total_delay = 0
        k: Optional[str] = key
        while k is not None:
            image, delay = load_image(kernel, self.storage, k)
            total_delay += delay
            chain.append(image)
            k = image.parent_key
        chain.reverse()
        return chain, total_delay

    def _materialize(self, key: str, chain: List[CheckpointImage]) -> CheckpointImage:
        """Memoized chain flatten: one overlay pass per chain tip.

        Multi-rank ``restart_job`` restores the same generation once per
        rank; the chain behind one tip key is immutable, so the flatten
        result is reused (virtual-time I/O is still charged per restart
        by :meth:`image_chain` -- the memo saves wall-clock only).
        """
        flat = self._flat_cache.get(key)
        if flat is None:
            flat = materialize_chain(chain, page_size=self.kernel.costs.page_size)
            if len(self._flat_cache) >= self._FLAT_CACHE_MAX:
                self._flat_cache.pop(next(iter(self._flat_cache)))
            self._flat_cache[key] = flat
        return flat

    def maybe_compact(self, image: CheckpointImage) -> Optional[str]:
        """Flatten ``image``'s chain into a stored flat blob if too deep.

        Runs after a delta completes when :attr:`compaction_threshold`
        is set: the chain is prefetched in parallel, flattened, and the
        flat image stored under ``<tip>+flat`` (a key shape generation
        GC never parses, so only this policy manages it).  Future
        restarts of the tip read the single flat blob.  Returns the flat
        key, or None when no compaction happened.
        """
        if self.compaction_threshold is None or not image.is_incremental:
            return None
        try:
            keys = self._chain_keys(image.key)
        except StorageError:
            return None
        if len(keys) < self.compaction_threshold:
            return None
        engine = self.kernel.engine
        span = engine.tracer.start_span(
            "compaction", key=image.key, depth=len(keys)
        )
        try:
            chain, _ = self.image_chain(image.key, prefetch=True)
            flat = self._materialize(image.key, chain)
            old_tip = next((t for t in keys[1:] if t in self._flat_alias), None)
            delta_fn = getattr(self.storage, "store_delta", None)
            if old_tip is not None and delta_fn is not None:
                # Re-compaction: the new flat differs from the previous
                # chain's flat only where the deltas newer than that tip
                # wrote, so re-protect just those byte extents (and let
                # the store rebase the old flat's stripe to the new key).
                newer = set(keys[: keys.index(old_tip)])
                page_size = self.kernel.costs.page_size
                extents = [
                    ext
                    for img in chain
                    if img.key in newer
                    for ext in img.dirty_byte_extents(page_size)
                ]
                delta_fn(
                    flat.key,
                    flat,
                    flat.size_bytes,
                    extents,
                    engine.now_ns,
                    base_key=self._flat_alias[old_tip],
                )
                engine.metrics.inc("compaction.delta_runs")
            else:
                self.storage.store(flat.key, flat, flat.size_bytes, engine.now_ns)
        except (StorageError, RestartError) as exc:
            span.end(state="failed", error=str(exc))
            return None
        # Hygiene: drop flats whose tips are gone (pruned generations)
        # and flats for ancestors of this tip -- the newest flat on a
        # chain subsumes the older ones, which no restart will pick.
        ancestors = set(keys[1:])
        stale = [
            t for t in self._flat_alias
            if t in ancestors or not self.storage.exists(t)
        ]
        for tip in stale:
            self.storage.delete(self._flat_alias.pop(tip))
        self._flat_alias[image.key] = flat.key
        engine.metrics.inc("compaction.runs")
        engine.metrics.observe("compaction.chunks", len(flat.chunks))
        span.end(state="done", flat_key=flat.key, chunks=len(flat.chunks))
        return flat.key

    def restart(
        self,
        key: str,
        target_kernel: Optional[Kernel] = None,
        strict_kernel_state: bool = True,
        prefetch: bool = False,
    ) -> RestoreResult:
        """Restart the process checkpointed under ``key``.

        ``target_kernel`` may be a different node -- that is the whole
        point of remote stable storage.  ``prefetch`` fetches the parent
        chain in parallel instead of walking it serially.  Raises
        :class:`~repro.errors.IncompatibleStateError` when the image
        needs kernel-persistent state this mechanism cannot recreate.
        """
        kernel = target_kernel or self.kernel
        engine = kernel.engine
        span = engine.tracer.start_span(
            "restart", mechanism=self.mech_name, key=key, node=kernel.node_id
        )
        try:
            chain, io_delay = self.image_chain(key, kernel, prefetch=prefetch)
            image = (
                chain[0]
                if len(chain) == 1
                else self._materialize(key, chain)
            )
            result = restore_image(
                kernel,
                image,
                io_delay_ns=io_delay,
                restore_pid=self.restores_pid,
                virtualize=self.virtualizes_resources,
                rescue_deleted_files=self.rescues_deleted_files,
                strict_kernel_state=strict_kernel_state,
                name_suffix=":r",
            )
        except Exception as exc:
            engine.metrics.inc("restart.failed")
            span.end(state="failed", error=str(exc))
            raise
        engine.metrics.inc("restart.count")
        engine.metrics.observe(
            "restart.total_ns", result.io_delay_ns + result.install_delay_ns
        )
        span.end(
            state="done",
            pid=result.task.pid,
            chain_len=len(chain),
            ready_at_ns=result.ready_at_ns,
        )
        return result

    # ------------------------------------------------------------------
    def completed_requests(self) -> List[CheckpointRequest]:
        """All successfully completed requests."""
        return [r for r in self.requests if r.state == RequestState.DONE]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.mech_name!r} on node {self.kernel.node_id}>"
