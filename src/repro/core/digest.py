"""Vectorized content digests for block scanning and deduplication.

Two consumers share these helpers:

* :class:`~repro.mechanisms.incremental.BlockHashTracker` digests every
  ``block_size``-byte block of every candidate page each interval -- the
  scan cost Agarwal-style adaptive blocks exist to amortize.  The seed
  implementation hashed one block at a time in Python (``zlib.adler32``
  per slice plus a dict lookup per block); here the whole scan is a
  handful of NumPy passes.
* :class:`~repro.stablestore.ContentStore` keys chunk payloads by
  content so byte-identical pages are written to the replicated service
  once per *content*, not once per generation.

The digest is a position-weighted word sum finished with the splitmix64
avalanche: each 8-byte word of a block is multiplied by a per-position
odd constant (so permutations hash differently), summed mod 2**64, salted
with the block length, and mixed.  It is *not* cryptographic -- it is a
fast, deterministic 64-bit fingerprint whose collision behaviour is
uniform enough both for the probabilistic-checkpointing experiments
(which deliberately truncate it to provoke collisions) and for
content-addressing (64-bit birthday bound dwarfs any simulated image
count; the store additionally keys by payload length).

Everything here is pure NumPy ``uint64`` arithmetic with wraparound --
no Python-int hashing on the hot path.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["block_digests", "payload_digest"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

#: Per-length weight vectors, cached (few distinct block sizes per run).
_WEIGHTS: Dict[int, np.ndarray] = {}


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finisher (full avalanche on uint64)."""
    # Wraparound is the point; silence the scalar-overflow warning NumPy
    # emits for 0-d inputs (arrays wrap silently anyway).
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


def _weights(nwords: int) -> np.ndarray:
    w = _WEIGHTS.get(nwords)
    if w is None:
        # Mixed counters, forced odd: distinct, full-width multipliers.
        w = _mix64(np.arange(1, nwords + 1, dtype=np.uint64) * _GOLDEN)
        w |= np.uint64(1)
        w.setflags(write=False)
        _WEIGHTS[nwords] = w
    return w


def block_digests(data: np.ndarray, block_size: int) -> np.ndarray:
    """Digest every ``block_size``-byte block of ``data`` in one pass.

    ``data`` is a contiguous uint8 array whose size is a multiple of
    ``block_size`` (one page, or a whole stack of pages).  Returns one
    ``uint64`` digest per block.
    """
    data = np.ascontiguousarray(data)
    if block_size % 8 == 0:
        # Reinterpret bytes as native uint64 words: 8x fewer multiplies
        # and no astype blow-up.
        words = data.view(np.uint64).reshape(-1, block_size // 8)
    else:
        words = data.reshape(-1, block_size).astype(np.uint64)
    with np.errstate(over="ignore"):
        acc = words @ _weights(words.shape[1])
        return _mix64(acc + np.uint64(block_size))


def payload_digest(data: np.ndarray) -> int:
    """64-bit content fingerprint of an arbitrary-length uint8 payload.

    Digests fixed 4096-byte blocks (padding the tail with zeros) and
    combines the per-block digests with a second weighted sum, salted
    with the true byte length so a zero-padded tail cannot alias a
    longer payload.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    n = int(data.size)
    if n == 0:
        return int(_mix64(np.uint64(1)))
    pad = -n % 4096
    if pad:
        data = np.concatenate([data, np.zeros(pad, dtype=np.uint8)])
    per_block = block_digests(data, 4096)
    with np.errstate(over="ignore"):
        acc = per_block @ _weights(per_block.size)
        return int(_mix64(acc + np.uint64(n)))
