"""Shared capture and restore machinery.

Every mechanism ultimately does the same physical work -- walk the
target's state, copy the selected memory, push bytes at stable storage,
and on restart rebuild a task from the image -- but *where* that work
runs (target context vs kernel thread vs user handler), *what* it can
see (task struct vs syscall-extracted shadows), and *which* pages it
selects (full, page-dirty, blocks, lines) differ per taxonomy position.

This module provides the building blocks as op generators so mechanisms
compose them inside whatever execution context they own:

* :func:`snapshot_metadata` -- kernel-side task-struct walk (free reads).
* :func:`user_extract_metadata` -- the user-level equivalent: one syscall
  per datum (``sbrk``, ``lseek`` per fd, ``sigpending`` ...), the cost
  asymmetry of experiment E3.
* :func:`select_pages` -- full / incremental page selection with
  per-mechanism VMA-kind filtering (PsncR/C filters nothing -- E17).
* :func:`copy_pages` -- the memcpy loop, preemptible per chunk.
* :func:`store_image` -- synchronous write to a storage backend.
* :func:`restore_image` -- rebuild a task from a (materialized) image,
  enforcing kernel-persistent-state semantics (sockets, SysV shm, PIDs,
  deleted files) according to the restoring mechanism's capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from ..errors import CheckpointError, IncompatibleStateError, RestartError
from ..simkernel import Kernel, Task, ops
from ..simkernel.memory import PageFlag, Prot, VMAKind
from ..simkernel.process import FileDescriptor, Registers, SchedPolicy
from ..simkernel.signals import Sig
from ..simkernel.vfs import RegularFile, SocketFile
from ..storage.backends import StorageBackend
from .image import CheckpointImage, FDDescriptor, VMADescriptor

__all__ = [
    "snapshot_metadata",
    "user_extract_metadata",
    "select_pages",
    "copy_pages",
    "capture_extents",
    "store_image",
    "load_image",
    "RestoreResult",
    "restore_image",
    "DEFAULT_SKIP_KINDS",
]

#: VMA kinds most mechanisms exclude from images when the pages are clean
#: (code and shared libraries are re-creatable from their files).
DEFAULT_SKIP_KINDS = (VMAKind.CODE, VMAKind.SHLIB)


# ----------------------------------------------------------------------
# Metadata capture
# ----------------------------------------------------------------------
def snapshot_metadata(
    kernel: Kernel, target: Task, image: CheckpointImage
) -> None:
    """Fill image metadata from the task struct (kernel-side, free reads)."""
    ts = kernel.read_task_struct(target)
    image.pid = ts["pid"]
    image.task_name = ts["name"]
    image.node_id = kernel.node_id
    image.step = ts["main_steps"]
    image.registers = ts["registers"]
    image.signals = ts["signals"]
    image.vmas = [
        VMADescriptor(
            name=v["name"],
            nbytes=v["npages"] * kernel.costs.page_size,
            prot=v["prot"],
            kind=v["kind"],
            shared=v["shared"],
            file_path=v["file_path"],
            shm_key=v["shm_key"],
        )
        for v in ts["vmas"]
    ]
    image.fds = []
    for fd in target.fds.values():
        rescued = None
        if fd.file.deleted and isinstance(fd.file, RegularFile):
            # UCLiK-style rescue is *optional*: the mechanism decides
            # later whether to keep this payload (see its flag).
            rescued = bytes(fd.file.content)
        image.fds.append(
            FDDescriptor(
                fd=fd.fd,
                path=fd.file.path,
                kind=fd.file.kind,
                offset=fd.offset,
                flags=fd.flags,
                rescued_content=rescued,
                local_port=getattr(fd.file, "local_port", None),
                remote_addr=getattr(fd.file, "remote_addr", None),
            )
        )
    wl = target.annotations.get("workload")
    image.user_state = {
        "workload": wl,
        "annotations": {
            k: v
            for k, v in target.annotations.items()
            if k
            not in (
                "workload",
                "interpose",
                "dirty_log",
                "tracking_mode",
                "fault_info",
                "stop_time_ns",
                "thread_group",
                "tgid",
            )
        },
        "handlers": dict(target.signals.handlers),
        "blocked": set(target.signals.blocked),
        "policy": target.policy,
        "static_prio": target.static_prio,
    }


def user_extract_metadata(
    kernel: Kernel, task: Task, image: CheckpointImage
) -> Generator:
    """User-level metadata extraction: one syscall per kernel-held datum.

    Runs *inside the target* (signal-handler frame).  Yields the syscalls
    the paper enumerates; the resulting image metadata is equivalent to
    :func:`snapshot_metadata` except for state user space cannot see.
    """
    pid = yield ops.Syscall(name="getpid")
    # Heap boundary via sbrk(0) -- "the sbrk(0) system call is used to
    # extract the heap boundaries".
    yield ops.Syscall(name="sbrk", args=(0,))
    # One lseek per descriptor -- "lseek() is used to extract the
    # positioning offset for files".
    for fd in list(task.fds.values()):
        yield ops.Syscall(name="lseek", args=(fd.fd, 0, "cur"))
    # Pending signals -- "sigispending() is used to extract the signals
    # pending on the process".
    yield ops.Syscall(name="sigpending")
    # The user-level library now assembles the same metadata from what it
    # could observe (it sees its own mm layout through its allocator and
    # any interposition shadows; it cannot see kernel-side socket/shm
    # internals, recorded here only as opaque fd kinds).
    snapshot_metadata(kernel, task, image)
    image.user_state["visibility"] = "user"


# ----------------------------------------------------------------------
# Page selection and copying
# ----------------------------------------------------------------------
def select_pages(
    kernel: Kernel,
    target: Task,
    incremental: bool = False,
    skip_kinds: Sequence[VMAKind] = DEFAULT_SKIP_KINDS,
    data_filtering: bool = True,
) -> List[Tuple[str, int]]:
    """Choose the (vma, page) pairs this checkpoint must save.

    Full checkpoints save every resident page (minus filtered kinds);
    incremental ones save only pages dirtied since tracking was last
    armed.  ``data_filtering=False`` (PsncR/C) saves everything resident
    including code and shared libraries.
    """
    skip = set() if not data_filtering else set(skip_kinds)
    pages: List[Tuple[str, int]] = []
    for vma in target.mm.vmas:
        if vma.kind in skip:
            continue
        idxs = vma.dirty_pages() if incremental else vma.present_pages()
        pages.extend((vma.name, int(p)) for p in idxs)
    return pages


#: Longest extent a single capture step will coalesce.  Bounds the work
#: done between preemption points so a time-sharing capture can still be
#: suspended mid-checkpoint (E10) and a torn capture stays observable (E9).
MAX_EXTENT_PAGES = 64


def _extent_runs(
    pages: Sequence[Tuple[str, int]], cap: int = MAX_EXTENT_PAGES
) -> Generator[Tuple[str, int, int], None, None]:
    """Group an ordered (vma, page) list into (vma, first_page, npages) runs."""
    cur_vma: Optional[str] = None
    start = 0
    n = 0
    for vma_name, pidx in pages:
        if vma_name == cur_vma and pidx == start + n and n < cap:
            n += 1
        else:
            if cur_vma is not None:
                yield cur_vma, start, n
            cur_vma, start, n = vma_name, pidx, 1
    if cur_vma is not None:
        yield cur_vma, start, n


def copy_pages(
    kernel: Kernel,
    target: Task,
    image: CheckpointImage,
    pages: Sequence[Tuple[str, int]],
    user_mode: bool = False,
) -> Generator:
    """Copy the selected pages into the image, one cost op per page.

    Contiguous runs of selected pages within a VMA coalesce into one
    extent chunk (one array slice + one Chunk object instead of one per
    page), capped at :data:`MAX_EXTENT_PAGES`.  The virtual cost is
    unchanged -- still one Compute per page, so the capture stays
    preemptible at page granularity (E10) and ``user_mode`` still pays
    its per-page write() syscall.
    """
    page_size = kernel.costs.page_size
    per_page_ns = kernel.costs.memcpy_ns(page_size)
    if user_mode:
        per_page_ns += kernel.costs.syscall_ns(0)  # write() per page buffer
    if pages:
        metrics = kernel.engine.metrics
        metrics.inc("capture.pages", len(pages))
        metrics.inc("capture.bytes", len(pages) * page_size)
    for vma_name, start, npages in _extent_runs(pages):
        vma = target.mm.vma(vma_name)
        if npages == 1:
            image.add_page(vma_name, start, vma.read_page(start))
        else:
            image.add_extent(vma_name, start, vma.read_pages(start, npages), npages)
        for _ in range(npages):
            yield ops.Compute(ns=per_page_ns)


def capture_extents(
    kernel: Kernel,
    target: Task,
    image: CheckpointImage,
    pages: Sequence[Tuple[str, int]],
) -> Generator:
    """Like :func:`copy_pages`, but yields ``(chunk, copy_cost_ns)``.

    The pipelined COW drain needs the chunk *object* as soon as its
    memcpy finishes so it can hand the extent to the writeback pipeline
    and copy the next one while the bytes are on the wire.  The virtual
    cost is identical to :func:`copy_pages` (one page-memcpy per page,
    charged per extent); the caller yields the Compute op itself, then
    submits the chunk.
    """
    page_size = kernel.costs.page_size
    per_page_ns = kernel.costs.memcpy_ns(page_size)
    if pages:
        metrics = kernel.engine.metrics
        metrics.inc("capture.pages", len(pages))
        metrics.inc("capture.bytes", len(pages) * page_size)
    for vma_name, start, npages in _extent_runs(pages):
        vma = target.mm.vma(vma_name)
        if npages == 1:
            chunk = image.add_page(vma_name, start, vma.read_page(start))
        else:
            chunk = image.add_extent(
                vma_name, start, vma.read_pages(start, npages), npages
            )
        yield chunk, per_page_ns * npages


#: Stores are issued in slices of roughly this much virtual time so the
#: writing context can be preempted between write() calls, exactly like a
#: real synchronous write loop (experiment E10 depends on this).
STORE_SLICE_NS = 500_000


def store_image(
    kernel: Kernel,
    storage: StorageBackend,
    image: CheckpointImage,
    dirty_extents=None,
    base_key=None,
) -> Generator:
    """Write the finished image to stable storage (synchronous).

    The total device time is charged in :data:`STORE_SLICE_NS` pieces:
    a time-sharing context doing the writing can lose the CPU between
    slices, while a real-time kernel thread runs them back to back.

    When the caller knows the image's dirty byte extents (an
    incremental tracker's scan, or a re-compacted flat) and the backend
    supports delta updates (``store_delta``), only the dirty bytes are
    re-protected; ``base_key`` names the previous generation's blob
    when the update rebases rather than refreshes in place.
    """
    image.time_ns = kernel.engine.now_ns
    delta_fn = getattr(storage, "store_delta", None)
    if dirty_extents is not None and delta_fn is not None:
        delay = delta_fn(
            image.key,
            image,
            image.size_bytes,
            dirty_extents,
            kernel.engine.now_ns,
            base_key=base_key,
        )
    else:
        delay = storage.store(image.key, image, image.size_bytes, kernel.engine.now_ns)
    metrics = kernel.engine.metrics
    metrics.inc("storage.images_stored")
    metrics.observe("storage.store_ns", delay)
    while delay > 0:
        slice_ns = min(delay, STORE_SLICE_NS)
        delay -= slice_ns
        yield ops.Compute(ns=slice_ns)


def load_image(
    kernel: Kernel, storage: StorageBackend, key: str
) -> Tuple[CheckpointImage, int]:
    """Fetch an image; returns (image, io_delay_ns)."""
    obj, delay = storage.load(key, kernel.engine.now_ns)
    if not isinstance(obj, CheckpointImage):
        raise RestartError(f"blob {key!r} is not a checkpoint image")
    return obj, delay


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
@dataclass
class RestoreResult:
    """Outcome of a restore: the new task and when it becomes runnable."""

    task: Task
    ready_at_ns: int
    io_delay_ns: int
    install_delay_ns: int
    restored_pid: bool


def restore_image(
    kernel: Kernel,
    image: CheckpointImage,
    io_delay_ns: int = 0,
    restore_pid: bool = False,
    virtualize: bool = False,
    rescue_deleted_files: bool = False,
    strict_kernel_state: bool = True,
    name_suffix: str = "",
) -> RestoreResult:
    """Recreate a task from a *materialized* (non-delta) image.

    Enforces the paper's kernel-persistent-state semantics:

    * **Sockets** -- restored only if ``virtualize`` (ZAP pod) or if the
      image is restored on its origin node with the port free; otherwise
      :class:`IncompatibleStateError` when ``strict_kernel_state``.
    * **SysV shm** -- segment must exist (same node) or be re-creatable
      under virtualization.
    * **PID** -- restored only when ``restore_pid`` (UCLiK) and free.
    * **Deleted files** -- recreated from rescued contents only when
      ``rescue_deleted_files`` (UCLiK).

    The task is created STOPPED and scheduled to resume after the restore
    work (I/O already charged via ``io_delay_ns`` plus page installs).
    """
    if image.is_incremental:
        raise RestartError(
            f"image {image.key!r} is a delta; materialize the chain first"
        )
    costs = kernel.costs

    # ---- address space -------------------------------------------------
    mm = kernel.make_address_space(layout=[])
    for vd in image.vmas:
        kind = VMAKind(vd.kind)
        if kind == VMAKind.SHM:
            _restore_shm(kernel, vd, virtualize, strict_kernel_state)
        mm.map(
            vd.name,
            vd.nbytes,
            prot=vd.prot,
            kind=kind,
            shared=vd.shared,
            file_path=vd.file_path,
            shm_key=vd.shm_key,
        )
    install_ns = 0
    for chunk in image.chunks:
        vma = mm.vma(chunk.vma)
        if chunk.npages > 1:
            ps = vma.page_size
            for i in range(chunk.npages):
                vma.install_page(chunk.page_index + i, chunk.data[i * ps : (i + 1) * ps])
            install_ns += costs.memcpy_ns(ps) * chunk.npages
            continue
        if chunk.offset == 0 and chunk.nbytes == vma.page_size:
            vma.install_page(chunk.page_index, chunk.data)
        else:
            arr, _ = vma.ensure_page(chunk.page_index)
            arr[chunk.offset : chunk.offset + chunk.nbytes] = chunk.data
        install_ns += costs.memcpy_ns(chunk.nbytes)

    # ---- program --------------------------------------------------------
    workload = image.user_state.get("workload")
    if workload is None:
        raise RestartError(
            f"image {image.key!r} carries no workload; cannot rebuild program"
        )
    aligned = workload.align_step(image.step)
    factory = workload.program_factory

    wanted_pid = image.pid if restore_pid else None
    restored_pid = False
    if wanted_pid is not None and wanted_pid in kernel.tasks:
        wanted_pid = None  # occupied: fall back to a fresh pid
    task = kernel.spawn_process(
        image.task_name + name_suffix,
        program_factory=factory,
        mm=mm,
        start=False,
        start_step=aligned,
        pid=wanted_pid,
        policy=image.user_state.get("policy", SchedPolicy.OTHER),
        static_prio=image.user_state.get("static_prio", 120),
    )
    restored_pid = task.pid == image.pid

    # ---- registers / signals / annotations ------------------------------
    task.registers = Registers.from_snapshot(image.registers)
    task.signals.handlers = dict(image.user_state.get("handlers", {}))
    task.signals.blocked = set(image.user_state.get("blocked", set()))
    for s in image.signals.get("pending", []):
        task.signals.post(Sig(s))
    task.annotations.update(image.user_state.get("annotations", {}))
    task.annotations["workload"] = workload
    task.annotations["restored_from"] = image.key

    # ---- file descriptors ------------------------------------------------
    for fdd in image.fds:
        _restore_fd(
            kernel,
            task,
            fdd,
            image,
            virtualize=virtualize,
            rescue_deleted_files=rescue_deleted_files,
            strict=strict_kernel_state,
        )

    kernel.engine.metrics.inc("restart.chunks_installed", len(image.chunks))
    ready_at = kernel.engine.now_ns + io_delay_ns + install_ns
    kernel.engine.after(
        io_delay_ns + install_ns, lambda: kernel.resume_task(task), label="restore-resume"
    )
    return RestoreResult(
        task=task,
        ready_at_ns=ready_at,
        io_delay_ns=io_delay_ns,
        install_delay_ns=install_ns,
        restored_pid=restored_pid,
    )


def _restore_shm(
    kernel: Kernel, vd: VMADescriptor, virtualize: bool, strict: bool
) -> None:
    """Ensure the SysV segment behind a shm VMA exists on this kernel."""
    key = vd.shm_key
    if key is not None and key in kernel.shm_segments:
        return
    if virtualize:
        # The pod recreates the segment transparently on the new machine.
        kernel.shm_segments[int(key)] = {
            "size": vd.nbytes,
            "id": 0x5000 + len(kernel.shm_segments),
            "attached": set(),
        }
        return
    if strict:
        raise IncompatibleStateError(
            f"SysV shm segment key={key} does not exist on node "
            f"{kernel.node_id}; mechanism lacks resource virtualization"
        )


def _restore_fd(
    kernel: Kernel,
    task: Task,
    fdd: FDDescriptor,
    image: CheckpointImage,
    virtualize: bool,
    rescue_deleted_files: bool,
    strict: bool,
) -> None:
    """Recreate one descriptor, honouring kernel-persistent-state rules."""
    if fdd.kind == "socket":
        same_node = image.node_id == kernel.node_id
        port_free = fdd.local_port not in kernel.ports_in_use
        if virtualize or (same_node and port_free):
            kernel.ports_in_use.add(fdd.local_port)
            sock = SocketFile(fdd.path, fdd.local_port, fdd.remote_addr or "")
            task.install_fd(FileDescriptor(fd=fdd.fd, file=sock, offset=0))
            sock.refcount += 1
            return
        if strict:
            raise IncompatibleStateError(
                f"socket {fdd.path} (port {fdd.local_port}) cannot be "
                f"recreated on node {kernel.node_id} without virtualization"
            )
        return
    if fdd.kind in ("regular", "device", "proc"):
        if kernel.vfs.exists(fdd.path):
            f = kernel.vfs.lookup(fdd.path)
        elif fdd.rescued_content is not None and rescue_deleted_files:
            f = kernel.vfs.create(fdd.path, fdd.rescued_content)
        elif strict and fdd.kind == "regular":
            raise IncompatibleStateError(
                f"open file {fdd.path!r} missing on node {kernel.node_id} "
                f"and mechanism does not rescue deleted files"
            )
        else:
            return
        task.install_fd(
            FileDescriptor(fd=fdd.fd, file=f, offset=fdd.offset, flags=fdd.flags)
        )
        f.refcount += 1
