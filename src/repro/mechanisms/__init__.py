"""Checkpoint/restart mechanism models.

Importing this package registers every surveyed mechanism with
:mod:`repro.core.registry`, which is what Figure 1 and Table 1 are
generated from.
"""

from . import incremental
from .hardware import CacheLineTracker, HardwareCheckpointer, Revive, SafetyNet
from .systemlevel import (
    BLCR,
    BProc,
    CheckpointMT,
    CHPOX,
    CRAK,
    EPCKPT,
    LamMpi,
    PsncRC,
    SoftwareSuspend,
    SystemLevelCheckpointer,
    UCLiK,
    VMADump,
    ZAP,
)
from .userlevel import (
    CCIFT,
    CLIP,
    CoCheck,
    Condor,
    Esky,
    Libckp,
    Libckpt,
    Libtckpt,
    PreloadCkpt,
    PscCR,
    Thckpt,
    UserLevelCheckpointer,
)

__all__ = [
    "incremental",
    # system level
    "SystemLevelCheckpointer",
    "VMADump",
    "BProc",
    "EPCKPT",
    "CHPOX",
    "SoftwareSuspend",
    "CRAK",
    "ZAP",
    "UCLiK",
    "BLCR",
    "LamMpi",
    "PsncRC",
    "CheckpointMT",
    # user level
    "UserLevelCheckpointer",
    "Libckpt",
    "Libckp",
    "Thckpt",
    "Esky",
    "Condor",
    "Libtckpt",
    "PscCR",
    "PreloadCkpt",
    "CoCheck",
    "CLIP",
    "CCIFT",
    # hardware
    "CacheLineTracker",
    "HardwareCheckpointer",
    "Revive",
    "SafetyNet",
]
