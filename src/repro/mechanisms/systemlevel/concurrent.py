"""The concurrent "Checkpoint" mechanism (Carothers & Szymanski [5]).

"Checkpoint/restart operations are provided through system calls
implemented in the kernel static part.  The innovation of this approach
is that the checkpoint operations are performed by a thread running
concurrently with the application.  The *fork* mechanism is used to
guarantee the consistency of data between the thread and the
application process.  However, this approach is not transparent -- it
requires direct invocation of system calls."

The application's stall is just the fork (plus COW faults it takes on
pages it rewrites while the saver runs), instead of being frozen for the
whole capture -- experiment E9 measures that trade.
"""

from __future__ import annotations

from ...core.checkpointer import CheckpointRequest
from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...simkernel import Kernel, Task
from ...simkernel.modules import install_static
from ...simkernel.syscalls import SyscallResult
from ...storage.backends import StorageKind
from .base import SystemLevelCheckpointer

__all__ = ["CheckpointMT"]


@register
class CheckpointMT(SystemLevelCheckpointer):
    """Fork/COW concurrent checkpointing via a new system call."""

    mech_name = "Checkpoint"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_SYSTEM_CALL,
        specifics=("static kernel", "fork/COW consistency", "concurrent saver thread"),
    )
    features = Features(
        incremental=False,
        transparent=False,  # direct syscall invocation required
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        multithreaded=True,
    )
    description = "Checkpointing of multithreaded programs (Dr. Dobbs 2002)"

    syscall_name = "checkpoint_mt"

    def install(self) -> None:
        def setup(kernel: Kernel) -> None:
            kernel.syscalls.register(self.syscall_name, self._sys_checkpoint)

        install_static(self.kernel, f"{self.mech_name}:{id(self)}", setup)

    def _sys_checkpoint(self, kernel: Kernel, task: Task) -> SyscallResult:
        """The new syscall: fork, then save the frozen child concurrently.

        The syscall's cost to the caller is the fork (task structures +
        COW page-table sweep); the page copying happens in a kernel
        thread against the child's frozen image while the caller runs.
        """
        req = self._new_request(task)
        child, fork_cost = kernel.do_fork(task, stopped=True)
        self.kthread_capture(
            task,
            req,
            stop_target=False,  # the whole point: the app keeps running
            capture_mm_of=child,
            destroy_capture_source=True,
        )
        return SyscallResult(req.key, fork_cost)

    def checkpoint_op(self):
        """Op a cooperating application yields to checkpoint itself."""
        from ...simkernel import ops

        return ops.Syscall(name=self.syscall_name)

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """Model the application invoking the syscall now (see VMADump)."""
        req = self._new_request(task, incremental)
        if self.pipeline_depth > 1:
            # The pipelined capture performs the fork itself and drains
            # the frozen child through the writeback pipeline.
            self.kthread_capture_pipelined(
                task, req, pipeline_depth=self.pipeline_depth
            )
            return req
        child, fork_cost = self.kernel.do_fork(task, stopped=True)
        # Charge the fork to the target as a stall (it executed the call).
        req.target_stall_ns = fork_cost
        self.kthread_capture(
            task,
            req,
            stop_target=False,
            capture_mm_of=child,
            destroy_capture_source=True,
        )
        return req
