"""System-level (operating-system) checkpoint mechanisms."""

from .base import SystemLevelCheckpointer
from .concurrent import CheckpointMT
from .ksignal import CHPOX, SoftwareSuspend
from .kthread_based import BLCR, CRAK, LamMpi, PsncRC, UCLiK, ZAP
from .syscall_based import BProc, EPCKPT, VMADump

__all__ = [
    "SystemLevelCheckpointer",
    "VMADump",
    "BProc",
    "EPCKPT",
    "CHPOX",
    "SoftwareSuspend",
    "CRAK",
    "ZAP",
    "UCLiK",
    "BLCR",
    "LamMpi",
    "PsncRC",
    "CheckpointMT",
]
