"""Kernel-mode-signal checkpointers: CHPOX and Software Suspend.

Both add a new signal whose *default action runs inside the kernel*:
no user stack frame, no relinking, full transparency -- but delivery is
still deferred to the target's next kernel->user transition, so the
initiation latency depends on what the system is doing (E7).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ...core.capture import restore_image
from ...core.checkpointer import CheckpointRequest, RequestState
from ...core.features import Features, Initiation
from ...core.image import CheckpointImage
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError, RestartError
from ...simkernel import Kernel, Task, TaskState, ops
from ...simkernel.modules import KernelModule, install_static
from ...simkernel.signals import Sig
from ...simkernel.vfs import ProcEntry
from ...storage.backends import StorageKind
from .base import SystemLevelCheckpointer

__all__ = ["CHPOX", "SoftwareSuspend"]


class _ChpoxModule(KernelModule):
    """The loadable module CHPOX ships as."""

    name = "chpox"

    def __init__(self, owner: "CHPOX") -> None:
        super().__init__()
        self.owner = owner

    def on_load(self) -> None:
        self.add_proc_entry(
            ProcEntry(
                "/proc/chpox",
                on_read=lambda: (
                    ",".join(str(p) for p in sorted(self.owner.registered)) + "\n"
                ).encode(),
                on_write=self.owner._proc_write,
            )
        )
        self.add_kernel_signal(Sig.SIGSYS, self.owner._signal_action, label="chpox")


@register
class CHPOX(SystemLevelCheckpointer):
    """CHPOX: /proc registration + the SIGSYS kernel signal, as a module.

    "It creates a new entry in the /proc pseudo file system and also a
    new kernel signal (SIGSYS).  Prior to checkpoint applications must
    be registered sending the pid to the new created entry in /proc.
    Then, checkpoints are initiated by sending the new signal to the
    process."  Storage is node-local only.
    """

    mech_name = "CHPOX"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_SIGNAL,
        specifics=("kernel module", "/proc registration", "SIGSYS", "MOSIX-tested"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.USER,
        kernel_module=True,
        requires_registration=True,
    )
    description = "Checkpointing and restart of processes for Linux (Kiev)"

    def install(self) -> None:
        self.registered: set = set()
        self._module = _ChpoxModule(self).load(self.kernel)
        self._pending: Dict[int, CheckpointRequest] = {}

    def uninstall(self) -> None:
        self._module.unload()
        self.installed = False

    def _proc_write(self, data: bytes) -> int:
        """Register a pid by writing it to /proc/chpox."""
        pid = int(data.decode().strip())
        self.kernel.task_by_pid(pid)  # validate
        self.registered.add(pid)
        return len(data)

    def prepare_target(self, task: Task) -> None:
        """Registration step: echo the pid into /proc/chpox."""
        self._proc_write(str(task.pid).encode())

    def _signal_action(self, task: Task) -> None:
        if task.pid not in self.registered:
            return  # unregistered processes ignore the signal
        req = self._pending.pop(task.pid, None)
        if req is None:
            req = self._new_request(task)
        self.capture_frame(task, req)

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """User initiation: ``kill -SIGSYS <pid>``."""
        if task.pid not in self.registered:
            raise CheckpointError(
                f"pid {task.pid} not registered with CHPOX (/proc/chpox)"
            )
        req = self._new_request(task, incremental)
        self._pending[task.pid] = req
        self.kernel.post_signal(task.pid, Sig.SIGSYS)
        return req


@register
class SoftwareSuspend(SystemLevelCheckpointer):
    """Software Suspend: whole-machine hibernation via a freeze signal.

    "A new default kernel signal is implemented to initiate[] the
    hibernation which is delivered to every process in the system to
    freeze their execution.  When all processes are stopped the image of
    the RAM is saved on the swap partition in the local disk.  After
    that it powers down the system."  Standby mode keeps the image in
    memory instead.
    """

    mech_name = "Software Suspend"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_SIGNAL,
        specifics=("static kernel", "freeze all processes", "RAM image to swap"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.LOCAL, StorageKind.MEMORY),
        initiation=Initiation.USER,
        kernel_module=False,
    )
    description = "Hibernation in the official kernel (swsusp)"

    SYSTEM_KEY = "swsusp/system-image"

    def install(self) -> None:
        def setup(kernel: Kernel) -> None:
            # SIGFREEZE's default action already stops processes; the
            # static patch simply makes the signal exist + the suspend
            # orchestration below.
            pass

        install_static(self.kernel, f"{self.mech_name}:{id(self)}", setup)
        self._suspend_req: Optional[CheckpointRequest] = None

    # ------------------------------------------------------------------
    def suspend(self, power_down: bool = True) -> CheckpointRequest:
        """Freeze every process, save the RAM image, power down.

        Returns a request tracking the whole-system image.
        """
        kernel = self.kernel
        victims = [
            t
            for t in kernel.tasks.values()
            if not t.is_kthread and t.alive()
        ]
        if not victims:
            raise CheckpointError("nothing to suspend")
        rep = victims[0]
        req = self._new_request(rep)
        self._suspend_req = req
        for t in victims:
            kernel.post_signal(t.pid, Sig.SIGFREEZE)

        def suspender(kt: Task, step: int) -> Generator:
            def gen():
                req.state = RequestState.RUNNING
                req.started_ns = kernel.engine.now_ns
                # Wait until every process is frozen.
                while any(
                    v.alive() and v.state != TaskState.STOPPED for v in victims
                ):
                    yield ops.Sleep(ns=200_000)
                images: List[CheckpointImage] = []
                total = 0
                for v in victims:
                    if not v.alive():
                        continue
                    sub = self._new_image(req, v)
                    sub.key = f"{req.key}/pid{v.pid}"
                    from ...core.capture import copy_pages, snapshot_metadata

                    snapshot_metadata(kernel, v, sub)
                    yield ops.Compute(ns=2_000)
                    # The RAM image is everything -- no filtering.
                    pages = [
                        (vma.name, int(p))
                        for vma in v.mm.vmas
                        for p in vma.present_pages()
                    ]
                    for op in copy_pages(kernel, v, sub, pages):
                        yield op
                    total += sub.size_bytes
                    images.append(sub)
                system_image = {"images": images, "victim_pids": [v.pid for v in victims]}
                delay = self.storage.store(
                    self.SYSTEM_KEY, system_image, total, kernel.engine.now_ns
                )
                yield ops.Compute(ns=delay)
                # Represent the system image by its first process image so
                # the generic bookkeeping has something to point at.
                self._complete(req, images[0])
                if power_down:
                    kernel.halt()

            return gen()

        kernel.spawn_kthread("swsusp", suspender, rt_prio=80)
        return req

    def resume_system(self, new_kernel: Kernel) -> List:
        """Boot-time restore: bring every frozen process back."""
        blob, delay = self.storage.load(self.SYSTEM_KEY, new_kernel.engine.now_ns)
        results = []
        for image in blob["images"]:
            results.append(
                restore_image(
                    new_kernel,
                    image,
                    io_delay_ns=delay // max(1, len(blob["images"])),
                    strict_kernel_state=False,
                )
            )
        return results

    def unfreeze(self) -> int:
        """Thaw every stopped process (suspend cancelled / standby wake)."""
        n = 0
        for t in list(self.kernel.tasks.values()):
            if t.state == TaskState.STOPPED and not t.is_kthread:
                self.kernel.resume_task(t)
                n += 1
        return n

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """Suspend is system-wide; a per-task request suspends everything
        (without powering down, so the caller can keep simulating)."""
        if incremental:
            raise CheckpointError("Software Suspend has no incremental mode")
        return self.suspend(power_down=False)
