"""System-call-based checkpointers: VMADump, BProc, EPCKPT.

These are "implemented in the static part of the kernel": new system
calls invoke the checkpoint, so the application (or a launcher tool)
must cooperate -- the transparency/flexibility weakness the paper pins
on this corner of the taxonomy.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...core.checkpointer import CheckpointRequest
from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError
from ...simkernel import Kernel, Mode, Task, ops
from ...simkernel.modules import install_static
from ...simkernel.signals import Sig
from ...simkernel.syscalls import SyscallResult, SyscallTable
from ...storage.backends import StorageKind
from .base import SystemLevelCheckpointer

__all__ = ["VMADump", "BProc", "EPCKPT"]


@register
class VMADump(SystemLevelCheckpointer):
    """VMADump: self-checkpoint via a new system call.

    "Applications directly invoke these system calls to checkpoint
    themselves by writing the process state to a file descriptor ...
    the relevant data of the process can be directly accessed through
    the *current* kernel macro because VMADump is called by the process
    to be checkpointed."
    """

    mech_name = "VMADump"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_SYSTEM_CALL,
        specifics=("static kernel", "self-invoked via current", "writes to fd"),
    )
    features = Features(
        incremental=False,
        transparent=False,  # the application must call the syscall
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.AUTOMATIC,  # the app checkpoints itself
        kernel_module=False,
    )
    description = "Virtual Memory Area Dumper (BProc project)"

    #: Name of the system call this mechanism adds to the kernel.
    syscall_name = "vmadump_dump"

    def install(self) -> None:
        def setup(kernel: Kernel) -> None:
            kernel.syscalls.register(self.syscall_name, self._sys_dump)

        install_static(self.kernel, f"{self.mech_name}:{id(self)}", setup)

    def _sys_dump(self, kernel: Kernel, task: Task) -> SyscallResult:
        """The new syscall: checkpoint the *calling* process (current)."""
        req = self._new_request(task)
        self.capture_frame(task, req)
        return SyscallResult(req.key, 800)

    def checkpoint_op(self) -> ops.Syscall:
        """The op a cooperating application yields to checkpoint itself."""
        return ops.Syscall(name=self.syscall_name)

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """Model the application reaching its own checkpoint call *now*.

        There is no external initiation path -- that is exactly the
        flexibility problem; this helper exists so experiments can place
        the call without rewriting each workload.
        """
        req = self._new_request(task, incremental)
        self.capture_frame(task, req)
        return req


@register
class BProc(VMADump):
    """BProc: VMADump plus the Beowulf distributed process space.

    Adds process *migration*: the state is streamed to a peer node and
    the process recreated there; nothing is kept on stable storage
    (Table 1: storage "none").
    """

    mech_name = "BPROC"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_SYSTEM_CALL,
        specifics=("static kernel", "single system image", "migration stream"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.NONE,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        migration=True,
    )
    description = "Beowulf distributed process space (bproc_move)"

    syscall_name = "bproc_move"

    def migrate(self, task: Task, dest_kernel: Kernel) -> CheckpointRequest:
        """Move ``task`` to ``dest_kernel`` (the process calls bproc_move).

        The capture runs in the caller's context, streams through the
        migration pipe, is restored on the destination, and the source
        process exits.
        """
        req = self._new_request(task)
        kernel = self.kernel

        def frame() -> Generator:
            from ...core.capture import copy_pages, snapshot_metadata, store_image
            from ...core.checkpointer import RequestState

            req.state = RequestState.RUNNING
            req.started_ns = kernel.engine.now_ns
            image = self._new_image(req, task)
            snapshot_metadata(kernel, task, image)
            yield ops.Compute(ns=2_000)
            pages = self._page_set(task, False)
            for op in copy_pages(kernel, task, image, pages):
                yield op
            for op in store_image(kernel, self.storage, image):
                yield op
            self._complete(req, image)
            # Recreate on the destination, then vanish locally.
            self.restart(req.key, target_kernel=dest_kernel, strict_kernel_state=True)
            yield ops.Exit(code=0)

        task.push_frame(frame(), Mode.KERNEL)
        return req


@register
class EPCKPT(SystemLevelCheckpointer):
    """EPCKPT: syscalls + a dedicated kernel signal + a launcher tool.

    "EPCKPT provides more transparency than VMADump because the process
    to be checkpointed is identified by the process ID ... A new default
    kernel signal is created to invoke the checkpoint operation.
    Application must be launch[ed] via one of [its] tool[s] ... thus
    incurring undesirable overhead."
    """

    mech_name = "EPCKPT"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_SYSTEM_CALL,
        specifics=("static kernel", "by pid", "new kernel signal", "launcher tool"),
    )
    features = Features(
        incremental=False,
        transparent=True,  # no source change/recompile/relink
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=False,
        requires_registration=True,  # must be started under the launcher
    )
    description = "Eduardo Pinheiro's checkpoint (Rutgers)"

    #: Per-syscall tracing overhead imposed by the launcher's run-time
    #: bookkeeping ("trace some information about the application's
    #: execution during run time").
    TRACE_OVERHEAD_NS = 450
    _TRACED_CALLS = ["open", "close", "dup", "mmap", "munmap", "fork", "sbrk"]

    def install(self) -> None:
        def setup(kernel: Kernel) -> None:
            kernel.syscalls.register("epckpt_checkpoint", self._sys_checkpoint)
            kernel.add_kernel_signal(Sig.SIGCKPT, self._sigckpt_action, label="epckpt")

        install_static(self.kernel, f"{self.mech_name}:{id(self)}", setup)

    def prepare_target(self, task: Task) -> None:
        """Launching under the EPCKPT tool arms run-time tracing."""
        task.annotations["epckpt_traced"] = True

        def trace_hook(kernel, t, name, args) -> int:
            return self.TRACE_OVERHEAD_NS

        SyscallTable.interpose(task, self._TRACED_CALLS, trace_hook)

    def _require_traced(self, task: Task) -> None:
        if not task.annotations.get("epckpt_traced"):
            raise CheckpointError(
                "EPCKPT can only checkpoint processes launched via its tool"
            )

    def _sys_checkpoint(self, kernel: Kernel, task: Task, pid: int) -> SyscallResult:
        """Tool-invoked syscall: checkpoint the process named by pid."""
        target = kernel.task_by_pid(int(pid))
        self._require_traced(target)
        req = self._new_request(target)
        self.capture_frame(target, req)
        return SyscallResult(req.key, 900)

    def _sigckpt_action(self, task: Task) -> None:
        """Kernel-mode default action of the new checkpoint signal."""
        if not task.annotations.get("epckpt_traced"):
            return  # not initialized: signal is a no-op for this process
        req = self._new_request(task)
        self.capture_frame(task, req)

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """User initiation: the command-line tool sends the new signal."""
        self._require_traced(task)
        req = self._new_request(task, incremental)
        # The signal action will reuse this request when delivered, so
        # initiation latency spans post -> delivery (the E7 metric).
        self._pending_external = req
        # The tool posts the kernel signal; capture starts when the
        # signal is delivered at the target's next kernel->user return.
        self.kernel.post_signal(task.pid, Sig.SIGCKPT)
        return req

    def _new_request(self, task: Task, incremental: bool = False):
        # Reuse an externally created request (signal-delivery path) so
        # initiation latency spans post -> delivery.
        pending = getattr(self, "_pending_external", None)
        if pending is not None and pending.target_pid == task.pid:
            self._pending_external = None
            return pending
        return super()._new_request(task, incremental)
