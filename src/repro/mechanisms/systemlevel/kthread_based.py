"""Kernel-thread checkpointers: CRAK, ZAP, UCLiK, BLCR, LAM/MPI, PsncR/C.

These mechanisms run the checkpoint in a separate kernel thread reached
through a device file (CRAK/BLCR: ``/dev`` + ``ioctl``) or a /proc entry
(PsncR/C).  The thread can run at real-time priority (it is not tied to
the target's time-sharing priority), but it must stop the target for
consistency and may pay an address-space switch + TLB flush to reach the
target's memory (Section 4.1; experiments E7/E8/E10).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from ...core.capture import copy_pages, restore_image, snapshot_metadata, store_image
from ...core.checkpointer import CheckpointRequest, RequestState
from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError, RestartError
from ...simkernel import Kernel, SchedPolicy, Task, TaskState, ops
from ...simkernel.memory import VMAKind
from ...simkernel.modules import KernelModule
from ...simkernel.process import Registers
from ...simkernel.syscalls import SyscallTable
from ...simkernel.vfs import DeviceNode, ProcEntry
from ...storage.backends import StorageKind
from .base import SystemLevelCheckpointer

__all__ = ["CRAK", "ZAP", "UCLiK", "BLCR", "LamMpi", "PsncRC"]


class _DeviceModule(KernelModule):
    """Generic module exposing a checkpointer through a /dev ioctl node."""

    def __init__(self, owner: "CRAK", dev_path: str, name: str) -> None:
        super().__init__()
        self.owner = owner
        self.dev_path = dev_path
        self.name = name

    def on_load(self) -> None:
        self.add_device(DeviceNode(self.dev_path, on_ioctl=self.owner._ioctl))


@register
class CRAK(SystemLevelCheckpointer):
    """CRAK: checkpoint/restart as a kernel module, via /dev ioctl.

    "CRAK is a kernel module, hence provides more portability.  To
    communicate with the kernel thread CRAK creates a new device in /dev
    and the ioctl device-file interface is used.  The pid of the
    application to be checkpointed is passed as parameter."
    """

    mech_name = "CRAK"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "/dev ioctl by pid", "stop target", "migration"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=True,
        migration=True,
    )
    description = "Linux Checkpoint/Restart as a Kernel Module (Columbia)"

    dev_path = "/dev/crak"
    module_name = "crak"
    #: Scheduling class of the capture kernel thread.
    kthread_policy = SchedPolicy.FIFO
    kthread_rt_prio = 50
    defer_irqs = False

    def install(self) -> None:
        self._module = _DeviceModule(self, self.dev_path, self.module_name).load(
            self.kernel
        )

    def uninstall(self) -> None:
        self._module.unload()
        self.installed = False

    def _ioctl(self, requester: Optional[Task], cmd: str, arg) -> object:
        """Device control: ``checkpoint`` with the target pid."""
        if cmd == "checkpoint":
            pid = arg["pid"] if isinstance(arg, dict) else int(arg)
            incremental = bool(arg.get("incremental", False)) if isinstance(arg, dict) else False
            target = self.kernel.task_by_pid(pid)
            req = self._new_request(target, incremental)
            if self.pipeline_depth > 1:
                self.kthread_capture_pipelined(
                    target,
                    req,
                    pipeline_depth=self.pipeline_depth,
                    policy=self.kthread_policy,
                    rt_prio=self.kthread_rt_prio,
                    defer_irqs=self.defer_irqs,
                    rearm=incremental or self.features.incremental,
                )
            else:
                self.kthread_capture(
                    target,
                    req,
                    stop_target=True,
                    policy=self.kthread_policy,
                    rt_prio=self.kthread_rt_prio,
                    defer_irqs=self.defer_irqs,
                    rearm=incremental or self.features.incremental,
                )
            return req
        raise CheckpointError(f"{self.mech_name}: unknown ioctl {cmd!r}")

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """User initiation path: ioctl on the device node (performed here
        directly -- the administrator's utility is out of frame)."""
        return self._ioctl(None, "checkpoint", {"pid": task.pid, "incremental": incremental})

    def migrate(self, task: Task, dest_kernel: Kernel) -> CheckpointRequest:
        """Checkpoint, restore on ``dest_kernel``, kill the original."""
        req = self.request_checkpoint(task)
        kernel = self.kernel

        def on_done() -> None:
            if req.state != RequestState.DONE:
                kernel.engine.after(500_000, on_done)
                return
            self.restart(req.key, target_kernel=dest_kernel)
            if task.alive():
                kernel.stop_task(task)
                kernel._exit_task(task, code=0)

        kernel.engine.after(500_000, on_done)
        return req


@register
class ZAP(CRAK):
    """ZAP: CRAK plus pod virtualization of kernel-persistent state.

    "ZAP improves on CRAK by providing a virtualization mechanism called
    Pod to cope with the resource consistency, resource conflicts, and
    resource dependencies that arise when migrating processes between
    machines ...  However, that virtualization introduces some run-time
    overhead because system calls must be intercepted."
    """

    mech_name = "ZAP"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "pod virtualization", "syscall interception"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.NONE,),
        initiation=Initiation.USER,
        kernel_module=True,
        migration=True,
        virtualization=True,
    )
    description = "Zap: migrating computing environments (Columbia)"

    dev_path = "/dev/zap"
    module_name = "zap"
    virtualizes_resources = True

    #: Per-intercepted-syscall pod translation overhead.
    POD_OVERHEAD_NS = 600
    _POD_CALLS = [
        "getpid",
        "kill",
        "socket_connect",
        "shmget",
        "shmat",
        "open",
        "fork",
    ]
    _pod_ids = itertools.count(1)

    def prepare_target(self, task: Task) -> None:
        """Place the process in a pod: virtual ids + syscall interception."""
        pod = {
            "pod_id": next(self._pod_ids),
            "virtual_pid": 1,
            "origin_node": self.kernel.node_id,
        }
        task.annotations["pod"] = pod

        def pod_hook(kernel, t, name, args) -> int:
            return self.POD_OVERHEAD_NS

        SyscallTable.interpose(task, self._POD_CALLS, pod_hook)


@register
class UCLiK(CRAK):
    """UCLiK: CRAK lineage with PID restore and deleted-file rescue.

    "[UCLiK] inherits much of the framework of CRAK, but additionally
    introduces some improvements like restoring the original process ID
    and file contents, and identifies deleted files during restart.
    Process states are saved only locally."
    """

    mech_name = "UCLik"  # Table 1 spells it this way
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "PID restore", "deleted-file rescue", "local only"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.USER,
        kernel_module=True,
    )
    description = "Pursuing the AP's to Checkpointing with UCLiK"

    dev_path = "/dev/uclik"
    module_name = "uclik"
    restores_pid = True
    rescues_deleted_files = True


@register
class BLCR(CRAK):
    """BLCR: Berkeley Lab's Linux Checkpoint/Restart.

    Kernel module + kernel threads + /dev ioctl, "unlike prior schemes,
    also checkpoints multithreaded processes.  But BLCR needs a[n]
    initialization phase to register a signal handler ... and also
    requires to load a shared library, hence it is not totally
    transparent."
    """

    mech_name = "BLCR"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "/dev ioctl", "libcr registration", "multithreaded"),
    )
    features = Features(
        incremental=False,
        transparent=False,  # registration phase + shared library
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=True,
        multithreaded=True,
        requires_registration=True,
    )
    description = "Berkeley Lab Checkpoint/Restart"

    dev_path = "/dev/blcr"
    module_name = "blcr"

    #: One-time registration cost the target pays (library load + handler
    #: registration + opening the control device) -- experiment E16.
    REGISTRATION_NS = 350_000

    def prepare_target(self, task: Task) -> None:
        """libcr initialization inside the target process."""
        if task.annotations.get("blcr_registered"):
            return
        if not task.mm.has_vma("libcr.so"):
            task.mm.map("libcr.so", 128 * 1024, kind=VMAKind.SHLIB)
        task.annotations["blcr_registered"] = True
        task.annotations["blcr_registration_ns"] = self.REGISTRATION_NS

    def _require_registered(self, task: Task) -> None:
        if not task.annotations.get("blcr_registered"):
            raise CheckpointError(
                f"pid {task.pid}: BLCR requires the libcr registration phase"
            )

    def _ioctl(self, requester: Optional[Task], cmd: str, arg) -> object:
        if cmd == "checkpoint":
            pid = arg["pid"] if isinstance(arg, dict) else int(arg)
            target = self.kernel.task_by_pid(pid)
            self._require_registered(target)
            group = target.annotations.get("thread_group")
            if group and len(group) > 1:
                return self._checkpoint_group(target, group)
        return super()._ioctl(requester, cmd, arg)

    # -- multithreaded support -------------------------------------------
    def _checkpoint_group(self, leader: Task, group: List[int]) -> CheckpointRequest:
        """Stop and capture every thread of a group; one shared image."""
        kernel = self.kernel
        threads = [kernel.task_by_pid(p) for p in group if p in kernel.tasks]
        req = self._new_request(leader)

        def prog(kt: Task, step: int) -> Generator:
            def gen():
                req.state = RequestState.RUNNING
                req.started_ns = kernel.engine.now_ns
                for t in threads:
                    if t.alive():
                        kernel.stop_task(t)
                while any(
                    t.alive() and t.state != TaskState.STOPPED for t in threads
                ):
                    yield ops.Sleep(ns=50_000)
                attach = kernel.kthread_attach_mm(kt, leader)
                if attach:
                    yield ops.Compute(ns=attach)
                image = self._new_image(req, leader)
                snapshot_metadata(kernel, leader, image)
                yield ops.Compute(ns=2_000 * len(threads))
                image.user_state["threads"] = [
                    {
                        "name": t.name,
                        "registers": t.registers.snapshot(),
                        "step": t.main_steps,
                        "thread_index": t.annotations.get("thread_index", i),
                    }
                    for i, t in enumerate(threads)
                    if t.alive()
                ]
                pages = self._page_set(leader, False)
                for op in copy_pages(kernel, leader, image, pages):
                    yield op
                for t in threads:
                    if t.alive():
                        kernel.resume_task(t)
                req.target_stall_ns = kernel.engine.now_ns - req.started_ns
                for op in store_image(kernel, self.storage, image):
                    yield op
                self._complete(req, image)

            return gen()

        kernel.spawn_kthread(f"kblcr/{req.key.rsplit('/', 1)[-1]}", prog, rt_prio=50)
        return req

    def restart_group(self, key: str, target_kernel: Optional[Kernel] = None):
        """Restore a multithreaded image: all threads share one mm."""
        kernel = target_kernel or self.kernel
        chain, io_delay = self.image_chain(key, kernel)
        image = chain[-1]
        threads_meta = image.user_state.get("threads")
        if not threads_meta:
            raise RestartError(f"{key!r} is not a thread-group image")
        workload = image.user_state.get("workload")
        results = []
        shared_mm = None
        for meta in threads_meta:
            factory = workload.thread_factory(meta["thread_index"])
            aligned = workload.align_step(meta["step"])
            if shared_mm is None:
                res = restore_image(
                    kernel, image, io_delay_ns=io_delay, name_suffix=":r",
                    strict_kernel_state=False,
                )
                # restore_image built the mm and one task from the group
                # leader's metadata; retarget that task to this thread.
                res.task.program_factory = factory
                res.task.rebuild_program(aligned)
                res.task.registers = Registers.from_snapshot(meta["registers"])
                shared_mm = res.task.mm
                results.append(res)
            else:
                t = kernel.spawn_process(
                    meta["name"] + ":r",
                    program_factory=factory,
                    mm=shared_mm,
                    start=False,
                    start_step=aligned,
                )
                t.registers = Registers.from_snapshot(meta["registers"])
                t.annotations["workload"] = workload
                t.annotations["thread_index"] = meta["thread_index"]
                kernel.engine.after(
                    results[0].io_delay_ns + results[0].install_delay_ns,
                    lambda tt=t: kernel.resume_task(tt),
                )
                results.append(t)
        pids = [r.task.pid if hasattr(r, "task") else r.pid for r in results]
        for r in results:
            t = r.task if hasattr(r, "task") else r
            t.annotations["thread_group"] = pids
            t.annotations["tgid"] = pids[0]
        return results


@register
class LamMpi(BLCR):
    """LAM/MPI: coordinated parallel checkpointing over BLCR.

    "A further development of this tool, LAM/MPI, allows checkpointing
    of MPI parallel applications.  But, although it is completely
    transparent to the application, is not transparent to the MPI
    library because some MPI functions must be modified."
    """

    mech_name = "LAM/MPI"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "BLCR per rank", "coordinated drain", "modified MPI lib"),
    )
    features = Features(
        incremental=False,
        transparent=False,  # the MPI library is modified
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=True,
        multithreaded=True,
        parallel_mpi=True,
        requires_registration=True,
    )
    description = "LAM/MPI checkpoint/restart framework (system-initiated)"

    dev_path = "/dev/lam-blcr"
    module_name = "lam_blcr"

    #: Per-rank message-drain cost at the coordination barrier.
    DRAIN_NS_PER_RANK = 250_000

    def checkpoint_job(self, ranks: List[Task]) -> List[CheckpointRequest]:
        """Coordinated checkpoint of all ranks of a parallel job.

        Runs the LAM coordination protocol: quiesce the network (drain
        in-flight messages; cost grows with job size), then checkpoint
        every rank via the BLCR machinery.
        """
        if not ranks:
            raise CheckpointError("empty rank list")
        for r in ranks:
            self._require_registered(r)
        drain_ns = self.DRAIN_NS_PER_RANK * len(ranks)
        reqs: List[CheckpointRequest] = []
        for r in ranks:
            req = self._new_request(r)
            reqs.append(req)

        def start_captures() -> None:
            for r, req in zip(ranks, reqs):
                if r.alive():
                    self.kthread_capture(r, req, stop_target=True)
                else:
                    self._fail(req, f"rank pid {r.pid} dead at checkpoint")

        # The drain happens first; captures start when it completes.
        self.kernel.engine.after(drain_ns, start_captures, label="lam-drain")
        return reqs

    def restart_job(self, keys: List[str], target_kernel: Optional[Kernel] = None):
        """Restore every rank (possibly on a different node)."""
        return [self.restart(k, target_kernel=target_kernel) for k in keys]


@register
class PsncRC(SystemLevelCheckpointer):
    """PsncR/C: kernel thread via /proc + ioctl, *no data filtering*.

    "It is a kernel thread implemented as a kernel module which saves
    process state to local disk ... Unlike other packages it does not
    perform any data optimization to reduce the checkpoint data size, so
    all of the code, shared libraries, and open files are always
    included in the checkpoints."  (Experiment E17.)
    """

    mech_name = "PsncR/C"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.OS_KERNEL_THREAD,
        specifics=("kernel module", "/proc + ioctl", "no data filtering", "SUN platforms"),
    )
    features = Features(
        incremental=False,
        transparent=True,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.USER,
        kernel_module=True,
        data_filtering=False,
    )
    description = "PSNC user and kernel level checkpointing"

    skip_kinds = ()  # saves code + shared libraries too

    class _Module(KernelModule):
        name = "psncrc"

        def __init__(self, owner: "PsncRC") -> None:
            super().__init__()
            self.owner = owner

        def on_load(self) -> None:
            self.add_proc_entry(
                ProcEntry("/proc/psncrc", on_read=lambda: b"psnc checkpoint\n")
            )
            self.add_device(
                DeviceNode("/dev/psncrc", on_ioctl=self.owner._ioctl)
            )

    def install(self) -> None:
        self._module = PsncRC._Module(self).load(self.kernel)

    def uninstall(self) -> None:
        self._module.unload()
        self.installed = False

    def _ioctl(self, requester: Optional[Task], cmd: str, arg) -> object:
        if cmd != "checkpoint":
            raise CheckpointError(f"PsncR/C: unknown ioctl {cmd!r}")
        pid = arg["pid"] if isinstance(arg, dict) else int(arg)
        target = self.kernel.task_by_pid(pid)
        req = self._new_request(target)
        self.kthread_capture(target, req, stop_target=True)
        return req

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        if incremental:
            raise CheckpointError("PsncR/C does not support incremental mode")
        return self._ioctl(None, "checkpoint", task.pid)
