"""Shared machinery for system-level (in-kernel) checkpointers.

Two execution shapes cover all surveyed OS-level mechanisms:

* **In-context capture** (:meth:`SystemLevelCheckpointer.capture_frame`):
  the target itself executes the checkpoint code in kernel mode -- this
  is both the *system call* shape (the application invoked it) and the
  *kernel-mode signal handler* shape (the kernel runs the default action
  in the process context).  Data is automatically consistent ("the
  application is executing the checkpointing code ... so data do not
  change during the checkpoint"), but the work runs at the application's
  scheduling priority and can be preempted or interrupted (E10).

* **Kernel-thread capture** (:meth:`SystemLevelCheckpointer.kthread_capture`):
  a separate kernel thread does the work.  It must stop the target (or
  fork it) for consistency, may pay an address-space switch + TLB flush
  to reach the target's memory (E8), but can run at SCHED_FIFO or the
  paper's dedicated checkpoint priority and can defer interrupts.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from ...core.capture import (
    DEFAULT_SKIP_KINDS,
    STORE_SLICE_NS,
    capture_extents,
    copy_pages,
    select_pages,
    snapshot_metadata,
    store_image,
)
from ...core.checkpointer import Checkpointer, CheckpointRequest, RequestState
from ...errors import CheckpointError, StorageError
from ...simkernel import Kernel, Mode, SchedPolicy, Task, TaskState, ops
from .. import incremental as incr

__all__ = ["SystemLevelCheckpointer"]


class SystemLevelCheckpointer(Checkpointer):
    """Base class for OS-level mechanisms."""

    #: VMA kinds excluded from images when ``features.data_filtering``.
    skip_kinds = DEFAULT_SKIP_KINDS

    #: In-flight window of the asynchronous COW writeback pipeline.
    #: 1 (the default) keeps the surveyed synchronous capture shapes
    #: bit-for-bit; > 1 switches kernel-thread captures to
    #: :meth:`kthread_capture_pipelined`.
    pipeline_depth: int = 1

    # ------------------------------------------------------------------
    def arm_incremental(self, task: Task) -> int:
        """Arm kernel-side dirty tracking for the next interval."""
        if not self.features.incremental:
            raise CheckpointError(
                f"{self.mech_name} does not support incremental checkpointing"
            )
        return incr.arm_system_tracking(self.kernel, task)

    def _page_set(self, task: Task, incremental: bool) -> List[Tuple[str, int]]:
        return select_pages(
            self.kernel,
            task,
            incremental=incremental,
            skip_kinds=self.skip_kinds,
            data_filtering=self.features.data_filtering,
        )

    # ------------------------------------------------------------------
    def capture_frame(
        self,
        task: Task,
        req: CheckpointRequest,
        rearm: bool = False,
    ) -> None:
        """Push an in-context (kernel-mode) capture frame onto ``task``.

        The frame runs when the task is next scheduled; the application
        makes no progress meanwhile (its ops resume after the frame).
        """
        kernel = self.kernel

        def frame() -> Generator:
            req.state = RequestState.RUNNING
            req.started_ns = kernel.engine.now_ns
            kernel.engine.metrics.inc("capture.frame_captures")
            image = self._new_image(req, task)
            snapshot_metadata(kernel, task, image)
            # Walking the task struct is nearly free in kernel mode.
            yield ops.Compute(ns=2_000)
            pages = self._page_set(task, req.incremental)
            for op in copy_pages(kernel, task, image, pages):
                yield op
            store_start_ns = kernel.engine.now_ns
            try:
                for op in store_image(kernel, self.storage, image):
                    yield op
            except StorageError as exc:
                # Stable storage refused the image (lost backend, write
                # quorum unreachable): this checkpoint fails, the
                # application continues.
                req.target_stall_ns = kernel.engine.now_ns - req.started_ns
                self._fail(req, f"stable-storage write failed: {exc}")
                return
            req.storage_delay_ns = kernel.engine.now_ns - store_start_ns
            if rearm and self.features.incremental:
                self.arm_incremental(task)
                yield ops.Compute(ns=30 * len(pages) + 1_000)
            req.target_stall_ns = kernel.engine.now_ns - req.started_ns
            self._complete(req, image)

        task.push_frame(frame(), Mode.KERNEL)

    # ------------------------------------------------------------------
    def kthread_capture(
        self,
        target: Task,
        req: CheckpointRequest,
        stop_target: bool = True,
        policy: SchedPolicy = SchedPolicy.FIFO,
        rt_prio: int = 50,
        defer_irqs: bool = False,
        rearm: bool = False,
        capture_mm_of: Optional[Task] = None,
        destroy_capture_source: bool = False,
    ) -> Task:
        """Spawn a kernel thread that captures ``target``.

        ``capture_mm_of`` redirects the memory walk to another task (the
        forked child in the Checkpoint [5] scheme) while metadata still
        describes ``target``; ``destroy_capture_source`` reaps that task
        afterwards.
        """
        kernel = self.kernel

        def prog(kt: Task, step: int) -> Generator:
            def gen():
                req.state = RequestState.RUNNING
                req.started_ns = kernel.engine.now_ns
                kernel.engine.metrics.inc("capture.kthread_captures")
                if defer_irqs:
                    kernel.disable_irqs_for(kt)
                stopped_by_us = False
                if stop_target and target.alive():
                    # Only resume afterwards if WE froze it -- a task
                    # parked by someone else (drain, safe pre-emption)
                    # must stay frozen after the capture.
                    already_stopped = target.state == TaskState.STOPPED
                    kernel.stop_task(target)
                    stopped_by_us = not already_stopped
                    # Wait for the target to reach an op boundary (it may
                    # be mid-op on another CPU).
                    while target.alive() and target.state != TaskState.STOPPED:
                        yield ops.Sleep(ns=50_000)
                if not target.alive() and capture_mm_of is None:
                    # With a forked capture source the frozen child still
                    # holds the state even if the parent has since exited.
                    if defer_irqs:
                        kernel.enable_irqs_for(kt)
                    self._fail(req, f"target pid {target.pid} exited before capture")
                    return
                source = capture_mm_of if capture_mm_of is not None else target
                # Borrow the source's page tables (E8: free only if this
                # CPU already holds them).
                attach_ns = kernel.kthread_attach_mm(kt, source)
                if attach_ns:
                    yield ops.Compute(ns=attach_ns)
                image = self._new_image(req, target)
                snapshot_metadata(kernel, target, image)
                yield ops.Compute(ns=2_000)
                pages = self._page_set(source, req.incremental)
                for op in copy_pages(kernel, source, image, pages):
                    yield op
                if rearm and self.features.incremental:
                    self.arm_incremental(target)
                    yield ops.Compute(ns=30 * len(pages) + 1_000)
                if stopped_by_us:
                    kernel.resume_task(target)
                    req.target_stall_ns = kernel.engine.now_ns - req.started_ns
                    # The freeze window is the application-visible cost
                    # of this capture shape; record it as its own span.
                    kernel.engine.tracer.record(
                        "checkpoint.freeze",
                        req.started_ns,
                        kernel.engine.now_ns,
                        pid=target.pid,
                        key=req.key,
                    )
                # Storage write happens after the app resumes (copy-out
                # already isolated the data in the image buffers).
                store_start_ns = kernel.engine.now_ns
                store_error: Optional[str] = None
                try:
                    for op in store_image(kernel, self.storage, image):
                        yield op
                except StorageError as exc:
                    # Lost backend / write quorum unreachable: the
                    # checkpoint fails but the target keeps running.
                    store_error = str(exc)
                else:
                    req.storage_delay_ns = kernel.engine.now_ns - store_start_ns
                if defer_irqs:
                    kernel.enable_irqs_for(kt)
                if destroy_capture_source and capture_mm_of is not None:
                    kernel._exit_task(capture_mm_of, code=0)
                    kernel.reap(capture_mm_of)
                if store_error is not None:
                    self._fail(req, f"stable-storage write failed: {store_error}")
                    return
                self._complete(req, image)

            return gen()

        return kernel.spawn_kthread(
            f"k{self.mech_name.lower()}/{req.key.rsplit('/', 1)[-1]}",
            prog,
            policy=policy,
            rt_prio=rt_prio,
        )

    # ------------------------------------------------------------------
    def kthread_capture_pipelined(
        self,
        target: Task,
        req: CheckpointRequest,
        pipeline_depth: int = 4,
        policy: SchedPolicy = SchedPolicy.FIFO,
        rt_prio: int = 50,
        defer_irqs: bool = False,
        rearm: bool = False,
    ) -> Task:
        """Fork/COW capture draining through the writeback pipeline.

        The application's stall is the fork (plus the incremental
        re-arm) instead of the whole frozen copy: a COW child snapshots
        the address space, the target resumes immediately, and the
        kernel thread drains the child's extents through a bounded
        :class:`~repro.stablestore.WritebackPipeline` -- each extent's
        memcpy overlaps the quorum write of the previous ones, so the
        only storage waits on the drain's critical path are window
        backpressure and the commit barrier.

        ``pipeline_depth <= 1`` delegates to :meth:`kthread_capture`
        verbatim, so the synchronous seed path stays bit-compatible.
        """
        if pipeline_depth <= 1:
            return self.kthread_capture(
                target,
                req,
                stop_target=True,
                policy=policy,
                rt_prio=rt_prio,
                defer_irqs=defer_irqs,
                rearm=rearm,
            )
        from ...stablestore.pipeline import WritebackPipeline

        kernel = self.kernel

        def prog(kt: Task, step: int) -> Generator:
            def gen():
                req.state = RequestState.RUNNING
                req.started_ns = kernel.engine.now_ns
                kernel.engine.metrics.inc("capture.pipelined_captures")
                if defer_irqs:
                    kernel.disable_irqs_for(kt)
                if not target.alive():
                    if defer_irqs:
                        kernel.enable_irqs_for(kt)
                    self._fail(req, f"target pid {target.pid} exited before capture")
                    return
                # Freeze window: the COW fork snapshots the address
                # space atomically; the target is runnable again the
                # moment the fork cost has been paid.
                child, fork_cost = kernel.do_fork(target, stopped=True)
                pages = self._page_set(child, req.incremental)
                rearm_now = rearm and self.features.incremental
                if rearm_now:
                    # Re-arm dirty tracking at the fork instant (the
                    # child holds this interval's dirty set), so pages
                    # the target touches during the drain land in the
                    # *next* delta instead of being lost.
                    self.arm_incremental(target)
                yield ops.Compute(ns=fork_cost)
                if rearm_now:
                    yield ops.Compute(ns=30 * len(pages) + 1_000)
                req.target_stall_ns = kernel.engine.now_ns - req.started_ns
                kernel.engine.tracer.record(
                    "checkpoint.freeze",
                    req.started_ns,
                    kernel.engine.now_ns,
                    pid=target.pid,
                    key=req.key,
                )
                attach_ns = kernel.kthread_attach_mm(kt, child)
                if attach_ns:
                    yield ops.Compute(ns=attach_ns)
                image = self._new_image(req, target)
                snapshot_metadata(kernel, target, image)
                yield ops.Compute(ns=2_000)
                store_error: Optional[str] = None
                pipe = None
                try:
                    pipe = WritebackPipeline(
                        self.storage, kernel.engine, req.key, depth=pipeline_depth
                    )
                    for chunk, copy_ns in capture_extents(kernel, child, image, pages):
                        yield ops.Compute(ns=copy_ns)
                        stall = pipe.ns_until_slot()
                        if stall > 0:
                            yield ops.Sleep(ns=stall)
                        pipe.submit(chunk)
                    barrier = pipe.barrier_ns()
                    if barrier > 0:
                        yield ops.Sleep(ns=barrier)
                    image.time_ns = kernel.engine.now_ns
                    commit_delay = pipe.commit(image, image.size_bytes)
                    kernel.engine.metrics.inc("storage.images_stored")
                    kernel.engine.metrics.observe("storage.store_ns", commit_delay)
                    # Client-visible storage wait: backpressure stalls +
                    # the commit barrier + the manifest write -- the
                    # part the pipeline could NOT hide behind copying.
                    req.storage_delay_ns = pipe.stall_ns + barrier + commit_delay
                    while commit_delay > 0:
                        slice_ns = min(commit_delay, STORE_SLICE_NS)
                        commit_delay -= slice_ns
                        yield ops.Compute(ns=slice_ns)
                except StorageError as exc:
                    store_error = str(exc)
                    if pipe is not None:
                        pipe.abort(store_error)
                if defer_irqs:
                    kernel.enable_irqs_for(kt)
                kernel._exit_task(child, code=0)
                kernel.reap(child)
                if store_error is not None:
                    self._fail(req, f"stable-storage write failed: {store_error}")
                    return
                self._complete(req, image)

            return gen()

        return kernel.spawn_kthread(
            f"k{self.mech_name.lower()}/{req.key.rsplit('/', 1)[-1]}",
            prog,
            policy=policy,
            rt_prio=rt_prio,
        )
