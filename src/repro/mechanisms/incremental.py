"""Incremental checkpointing engines at three granularities.

The paper discusses three ways to find "the delta -- the subset of the
application's memory that changed since the last checkpoint":

* **Page protection** (Section 3/4): write-protect everything at the
  start of the interval; a write faults; the fault handler records the
  page.  At *user level* the kernel reflects the fault as SIGSEGV to a
  handler that records the page in its shadow bitmap and ``mprotect``\\ s
  it writable again (:func:`arm_user_tracking`); at *system level* the
  kernel's own fault handler records and unprotects directly
  (:func:`arm_system_tracking`) -- same information, very different cost.

* **Probabilistic block hashing** (Nam et al. [23],
  :class:`BlockHashTracker`): no protection faults at all; at checkpoint
  time every candidate block is hashed and compared against the previous
  interval's digest.  Finer than a page, costs hash bandwidth, and is
  *probabilistic*: a hash collision silently drops a changed block.

* **Adaptive multi-size blocks** (Agarwal et al. [1],
  :class:`AdaptiveBlockTracker`): chooses per-page between whole-page
  saving and block hashing based on the page's observed write density,
  "an attractive compromise between performance and efficiency".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import CheckpointError
from ..simkernel import Kernel, Task, ops
from ..simkernel.memory import PageFlag, Prot, VMA
from ..simkernel.signals import HandlerKind, Sig, SignalHandler
from ..core.image import CheckpointImage

__all__ = [
    "DirtyLog",
    "arm_system_tracking",
    "arm_user_tracking",
    "user_arm_ops",
    "BlockHashTracker",
    "AdaptiveBlockTracker",
]


class DirtyLog:
    """System-level dirty-page log filled by the kernel's fault handler."""

    def __init__(self) -> None:
        self.pages: Set[Tuple[str, int]] = set()

    def record(self, vma_name: str, page_index: int) -> None:
        """Called from the (simulated) fault handler."""
        self.pages.add((vma_name, page_index))

    def drain(self) -> Set[Tuple[str, int]]:
        """Return and clear the accumulated dirty set."""
        out = self.pages
        self.pages = set()
        return out


def arm_system_tracking(kernel: Kernel, task: Task) -> int:
    """Arm kernel-side incremental tracking on ``task``.

    Write-protects all present writable pages and attaches a
    :class:`DirtyLog`; subsequent first-writes cost one in-kernel fault
    each (no signal, no user frame).  Returns pages armed.
    """
    log = task.annotations.get("dirty_log")
    if not isinstance(log, DirtyLog):
        log = DirtyLog()
        task.annotations["dirty_log"] = log
    task.annotations.pop("tracking_mode", None)  # kernel handles faults
    return task.mm.protect_for_tracking()


def arm_user_tracking(kernel: Kernel, task: Task) -> None:
    """Install the user-level SIGSEGV tracking handler on ``task``.

    The handler is the classic libckpt loop: read the fault address,
    record the page in the user-space shadow set, ``mprotect`` the page
    writable, return (the kernel then retries the faulting write).
    """
    task.annotations["tracking_mode"] = "user"
    shadow: Set[Tuple[str, int]] = task.annotations.setdefault("shadow_dirty", set())

    def handler_factory(t: Task) -> Generator:
        def handler():
            info = t.annotations.get("fault_info")
            if info is None:  # spurious SIGSEGV: a real library would die
                raise CheckpointError("SIGSEGV without fault info")
            shadow_set = t.annotations["shadow_dirty"]
            shadow_set.add((info["vma"], info["page"]))
            # Bookkeeping inside the handler (shadow bitmap update).
            yield ops.Compute(ns=300)
            # Unprotect the page so the write can proceed.
            yield ops.Syscall(
                name="mprotect", args=(info["vma"], "unprotect", info["page"])
            )

        return handler()

    task.signals.register(
        Sig.SIGSEGV,
        SignalHandler(
            kind=HandlerKind.USER,
            program_factory=handler_factory,
            label="ckpt-track-sigsegv",
        ),
    )


def user_arm_ops(task: Task) -> Generator:
    """Ops a user-level checkpointer runs to (re-)arm tracking.

    One ``mprotect`` sweep per writable VMA -- syscall cost each, paid in
    user mode at every checkpoint interval.
    """
    for vma in list(task.mm.vmas):
        if vma.prot & Prot.WRITE:
            yield ops.Syscall(name="mprotect", args=(vma.name, "arm"))
    task.annotations.setdefault("shadow_dirty", set()).clear()


def _block_digest(data: np.ndarray) -> int:
    return zlib.adler32(data.tobytes()) & 0xFFFFFFFF


class BlockHashTracker:
    """Probabilistic checkpointing: block-level change detection by hash.

    Parameters
    ----------
    block_size:
        Detection granularity in bytes; must divide the page size.
    collision_bits:
        Digest width: the chance an actually-changed block is missed is
        ``2**-collision_bits`` per changed block.
    simulate_collisions:
        When true, the detector truly uses only ``collision_bits`` of the
        digest, so hash collisions *actually* drop changed blocks -- the
        probabilistic failure mode of the scheme, observable in restored
        state.  Off by default (full-width digests; the bound is then
        only reported analytically).
    """

    def __init__(
        self,
        block_size: int = 512,
        collision_bits: int = 32,
        simulate_collisions: bool = False,
    ) -> None:
        if not 1 <= collision_bits <= 32:
            raise CheckpointError("collision_bits must be in [1, 32]")
        self.block_size = block_size
        self.collision_bits = collision_bits
        self.simulate_collisions = simulate_collisions
        #: (vma, page, block) -> digest from the previous interval.
        self._digests: Dict[Tuple[str, int, int], int] = {}
        self.blocks_scanned = 0
        self.blocks_saved = 0
        #: Changed blocks silently dropped by digest collisions (only
        #: counted when ``simulate_collisions``; needs ground truth).
        self.misses = 0

    def scan_ops(
        self,
        kernel: Kernel,
        target: Task,
        image: CheckpointImage,
        pages: Sequence[Tuple[str, int]],
    ) -> Generator:
        """Hash candidate pages; append changed blocks to ``image``.

        Charges hash bandwidth for every byte scanned (the scheme's
        cost), and memcpy for every block actually saved.
        """
        bs = self.block_size
        page_size = kernel.costs.page_size
        if page_size % bs:
            raise CheckpointError(f"block size {bs} does not divide page size")
        per_page = page_size // bs
        #: Per-block bookkeeping (digest-table lookup/update) -- the part
        #: of the scan cost that *grows* as blocks shrink.
        PER_BLOCK_NS = 60
        def truncate(full: int) -> int:
            if not self.simulate_collisions:
                return full
            # Mix before truncating: adler32's low bits are just the
            # byte sum, which degenerates on structured data.
            mixed = (full * 0x9E3779B1) & 0xFFFFFFFF
            return mixed >> (32 - self.collision_bits)
        for vma_name, pidx in pages:
            vma = target.mm.vma(vma_name)
            data = vma.read_page(pidx)
            yield ops.Compute(
                ns=kernel.costs.hash_ns(page_size) + PER_BLOCK_NS * per_page
            )
            saved_ns = 0
            for b in range(per_page):
                block = data[b * bs : (b + 1) * bs]
                full_digest = _block_digest(block)
                digest = truncate(full_digest)
                key = (vma_name, pidx, b)
                self.blocks_scanned += 1
                prev = self._digests.get(key)
                if prev is None or prev[0] != digest:
                    self._digests[key] = (digest, full_digest)
                    image.add_block(vma_name, pidx, b * bs, block)
                    self.blocks_saved += 1
                    saved_ns += kernel.costs.memcpy_ns(bs)
                elif self.simulate_collisions and prev[1] != full_digest:
                    # Truncated digests matched but the content changed:
                    # the scheme silently skips a dirty block.
                    self.misses += 1
                    self._digests[key] = (digest, full_digest)
            if saved_ns:
                yield ops.Compute(ns=saved_ns)

    def miss_probability(self, changed_blocks: int) -> float:
        """Upper bound on missing >=1 changed block (the scheme's risk)."""
        return min(1.0, changed_blocks * 2.0 ** (-self.collision_bits))


class AdaptiveBlockTracker:
    """Agarwal-style adaptive granularity: per-page block-size choice.

    Pages whose changed fraction exceeded ``dense_threshold`` in the
    previous interval are saved whole (skipping hash work); sparse pages
    are block-hashed at ``block_size``.  The history decays so pages can
    migrate between regimes.
    """

    def __init__(
        self,
        block_size: int = 512,
        dense_threshold: float = 0.5,
        decay: float = 0.5,
    ) -> None:
        if not 0.0 < dense_threshold <= 1.0:
            raise CheckpointError("dense_threshold must be in (0, 1]")
        self.block_size = block_size
        self.dense_threshold = dense_threshold
        self.decay = decay
        self._hash = BlockHashTracker(block_size=block_size)
        #: (vma, page) -> smoothed changed-fraction estimate.
        self._density: Dict[Tuple[str, int], float] = {}
        #: Pages already scanned once: a cold scan (no digests yet) saves
        #: every block but says nothing about write density, so it is
        #: excluded from the history.
        self._seen: set = set()
        self.pages_saved_whole = 0
        self.pages_block_scanned = 0

    def scan_ops(
        self,
        kernel: Kernel,
        target: Task,
        image: CheckpointImage,
        pages: Sequence[Tuple[str, int]],
    ) -> Generator:
        """Save dense pages whole; block-hash sparse pages."""
        page_size = kernel.costs.page_size
        per_page = page_size // self.block_size
        for vma_name, pidx in pages:
            key = (vma_name, pidx)
            density = self._density.get(key, 0.0)
            if density >= self.dense_threshold:
                vma = target.mm.vma(vma_name)
                image.add_page(vma_name, pidx, vma.read_page(pidx))
                self.pages_saved_whole += 1
                # Whole page assumed changed; refresh digests lazily by
                # dropping them (they will be rebuilt on the next scan).
                for b in range(per_page):
                    self._hash._digests.pop((vma_name, pidx, b), None)
                yield ops.Compute(ns=kernel.costs.memcpy_ns(page_size))
                self._density[key] = density * self.decay + (1 - self.decay)
            else:
                before = self._hash.blocks_saved
                sub = CheckpointImage(
                    key="scratch", mechanism="", pid=0, task_name="",
                    node_id=0, step=0, registers={},
                )
                for op in self._hash.scan_ops(kernel, target, sub, [(vma_name, pidx)]):
                    yield op
                image.chunks.extend(sub.chunks)
                changed = self._hash.blocks_saved - before
                frac = changed / per_page
                self.pages_block_scanned += 1
                if key in self._seen:
                    self._density[key] = density * self.decay + frac * (1 - self.decay)
                else:
                    self._seen.add(key)
