"""Incremental checkpointing engines at three granularities.

The paper discusses three ways to find "the delta -- the subset of the
application's memory that changed since the last checkpoint":

* **Page protection** (Section 3/4): write-protect everything at the
  start of the interval; a write faults; the fault handler records the
  page.  At *user level* the kernel reflects the fault as SIGSEGV to a
  handler that records the page in its shadow bitmap and ``mprotect``\\ s
  it writable again (:func:`arm_user_tracking`); at *system level* the
  kernel's own fault handler records and unprotects directly
  (:func:`arm_system_tracking`) -- same information, very different cost.

* **Probabilistic block hashing** (Nam et al. [23],
  :class:`BlockHashTracker`): no protection faults at all; at checkpoint
  time every candidate block is hashed and compared against the previous
  interval's digest.  Finer than a page, costs hash bandwidth, and is
  *probabilistic*: a hash collision silently drops a changed block.

* **Adaptive multi-size blocks** (Agarwal et al. [1],
  :class:`AdaptiveBlockTracker`): chooses per-page between whole-page
  saving and block hashing based on the page's observed write density,
  "an attractive compromise between performance and efficiency".
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence, Set, Tuple

import numpy as np

from ..errors import CheckpointError
from ..simkernel import Kernel, Task, ops
from ..simkernel.memory import Prot
from ..simkernel.signals import HandlerKind, Sig, SignalHandler
from ..core.digest import block_digests
from ..core.image import CheckpointImage

__all__ = [
    "DirtyLog",
    "arm_system_tracking",
    "arm_user_tracking",
    "user_arm_ops",
    "BlockHashTracker",
    "AdaptiveBlockTracker",
]


class DirtyLog:
    """System-level dirty-page log filled by the kernel's fault handler."""

    def __init__(self) -> None:
        self.pages: Set[Tuple[str, int]] = set()

    def record(self, vma_name: str, page_index: int) -> None:
        """Called from the (simulated) fault handler."""
        self.pages.add((vma_name, page_index))

    def drain(self) -> Set[Tuple[str, int]]:
        """Return and clear the accumulated dirty set."""
        out = self.pages
        self.pages = set()
        return out


def arm_system_tracking(kernel: Kernel, task: Task) -> int:
    """Arm kernel-side incremental tracking on ``task``.

    Write-protects all present writable pages and attaches a
    :class:`DirtyLog`; subsequent first-writes cost one in-kernel fault
    each (no signal, no user frame).  Returns pages armed.
    """
    log = task.annotations.get("dirty_log")
    if not isinstance(log, DirtyLog):
        log = DirtyLog()
        task.annotations["dirty_log"] = log
    task.annotations.pop("tracking_mode", None)  # kernel handles faults
    return task.mm.protect_for_tracking()


def arm_user_tracking(kernel: Kernel, task: Task) -> None:
    """Install the user-level SIGSEGV tracking handler on ``task``.

    The handler is the classic libckpt loop: read the fault address,
    record the page in the user-space shadow set, ``mprotect`` the page
    writable, return (the kernel then retries the faulting write).
    """
    task.annotations["tracking_mode"] = "user"
    shadow: Set[Tuple[str, int]] = task.annotations.setdefault("shadow_dirty", set())

    def handler_factory(t: Task) -> Generator:
        def handler():
            info = t.annotations.get("fault_info")
            if info is None:  # spurious SIGSEGV: a real library would die
                raise CheckpointError("SIGSEGV without fault info")
            shadow_set = t.annotations["shadow_dirty"]
            shadow_set.add((info["vma"], info["page"]))
            # Bookkeeping inside the handler (shadow bitmap update).
            yield ops.Compute(ns=300)
            # Unprotect the page so the write can proceed.
            yield ops.Syscall(
                name="mprotect", args=(info["vma"], "unprotect", info["page"])
            )

        return handler()

    task.signals.register(
        Sig.SIGSEGV,
        SignalHandler(
            kind=HandlerKind.USER,
            program_factory=handler_factory,
            label="ckpt-track-sigsegv",
        ),
    )


def user_arm_ops(task: Task) -> Generator:
    """Ops a user-level checkpointer runs to (re-)arm tracking.

    One ``mprotect`` sweep per writable VMA -- syscall cost each, paid in
    user mode at every checkpoint interval.
    """
    for vma in list(task.mm.vmas):
        if vma.prot & Prot.WRITE:
            yield ops.Syscall(name="mprotect", args=(vma.name, "arm"))
    task.annotations.setdefault("shadow_dirty", set()).clear()


def _changed_runs(changed: np.ndarray) -> List[Tuple[int, int]]:
    """Coalesce a boolean block mask into (first_block, nblocks) runs."""
    idx = np.flatnonzero(changed)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [(int(idx[s]), int(idx[e] - idx[s] + 1)) for s, e in zip(starts, ends)]


class BlockHashTracker:
    """Probabilistic checkpointing: block-level change detection by hash.

    Parameters
    ----------
    block_size:
        Detection granularity in bytes; must divide the page size.
    collision_bits:
        Digest width: the chance an actually-changed block is missed is
        ``2**-collision_bits`` per changed block.
    simulate_collisions:
        When true, the detector truly uses only ``collision_bits`` of the
        digest, so hash collisions *actually* drop changed blocks -- the
        probabilistic failure mode of the scheme, observable in restored
        state.  Off by default (full-width digests; the bound is then
        only reported analytically).
    """

    def __init__(
        self,
        block_size: int = 512,
        collision_bits: int = 32,
        simulate_collisions: bool = False,
    ) -> None:
        if not 1 <= collision_bits <= 32:
            raise CheckpointError("collision_bits must be in [1, 32]")
        self.block_size = block_size
        self.collision_bits = collision_bits
        self.simulate_collisions = simulate_collisions
        #: (vma, page) -> uint64 digest-per-block array from the previous
        #: interval.  Bounded by pages ever scanned, not blocks, and one
        #: dict probe per *page* instead of one per block.
        self._digests: Dict[Tuple[str, int], np.ndarray] = {}
        self.blocks_scanned = 0
        self.blocks_saved = 0
        #: Changed blocks silently dropped by digest collisions (only
        #: counted when ``simulate_collisions``; needs ground truth).
        self.misses = 0
        #: (vma, page) -> blocks saved in the most recent scan (density
        #: evidence for :class:`AdaptiveBlockTracker`).
        self.last_scan_saved: Dict[Tuple[str, int], int] = {}
        #: (vma, page) -> in-page (offset, length) byte runs saved in the
        #: most recent scan -- the dirty extents a delta-parity store
        #: (``ErasureStore.store_delta``) re-protects instead of the
        #: whole image.
        self.last_scan_extents: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}

    def scan_ops(
        self,
        kernel: Kernel,
        target: Task,
        image: CheckpointImage,
        pages: Sequence[Tuple[str, int]],
    ) -> Generator:
        """Hash candidate pages; append changed blocks to ``image``.

        Charges hash bandwidth for every byte scanned (the scheme's
        cost), and memcpy for every block actually saved.  All candidate
        pages are digested in one vectorized NumPy pass when the
        generator starts (the capturing context holds the target still,
        so the batch sees the same bytes a per-page walk would);
        adjacent changed blocks coalesce into one chunk per run.
        """
        bs = self.block_size
        page_size = kernel.costs.page_size
        if page_size % bs:
            raise CheckpointError(f"block size {bs} does not divide page size")
        per_page = page_size // bs
        #: Per-block bookkeeping (digest-table lookup/update) -- the part
        #: of the scan cost that *grows* as blocks shrink.
        PER_BLOCK_NS = 60
        self.last_scan_saved = {}
        self.last_scan_extents = {}
        if not pages:
            return
        # ---- bulk phase: one digest pass over every candidate page ----
        data = np.empty((len(pages), page_size), dtype=np.uint8)
        for i, (vma_name, pidx) in enumerate(pages):
            arr = target.mm.vma(vma_name).pages.get(pidx)
            if arr is None:
                data[i] = 0
            else:
                data[i] = arr
        digests = block_digests(data, bs).reshape(len(pages), per_page)
        shift = np.uint64(64 - self.collision_bits)
        # ---- per-page phase: compare, save runs, charge costs ----
        for i, (vma_name, pidx) in enumerate(pages):
            yield ops.Compute(
                ns=kernel.costs.hash_ns(page_size) + PER_BLOCK_NS * per_page
            )
            self.blocks_scanned += per_page
            cur = digests[i]
            key = (vma_name, pidx)
            prev = self._digests.get(key)
            if prev is None:
                changed = np.ones(per_page, dtype=bool)
            elif self.simulate_collisions:
                # The detector truly compares only ``collision_bits`` of
                # the digest; blocks whose truncated digests collide are
                # silently skipped even though the content changed.
                changed = (prev >> shift) != (cur >> shift)
                self.misses += int(np.count_nonzero(~changed & (prev != cur)))
            else:
                changed = prev != cur
            self._digests[key] = cur
            nchanged = int(np.count_nonzero(changed))
            self.last_scan_saved[key] = nchanged
            if not nchanged:
                continue
            self.blocks_saved += nchanged
            runs = _changed_runs(changed)
            self.last_scan_extents[key] = [
                (first * bs, nblocks * bs) for first, nblocks in runs
            ]
            for first, nblocks in runs:
                image.add_block(
                    vma_name, pidx, first * bs, data[i, first * bs : (first + nblocks) * bs]
                )
            yield ops.Compute(ns=kernel.costs.memcpy_ns(bs) * nchanged)

    def miss_probability(self, changed_blocks: int) -> float:
        """Upper bound on missing >=1 changed block (the scheme's risk)."""
        return min(1.0, changed_blocks * 2.0 ** (-self.collision_bits))


class AdaptiveBlockTracker:
    """Agarwal-style adaptive granularity: per-page block-size choice.

    Pages whose changed fraction exceeded ``dense_threshold`` in the
    previous interval are saved whole (skipping hash work); sparse pages
    are block-hashed at ``block_size``.  The history decays so pages can
    migrate between regimes.
    """

    def __init__(
        self,
        block_size: int = 512,
        dense_threshold: float = 0.5,
        decay: float = 0.5,
    ) -> None:
        if not 0.0 < dense_threshold <= 1.0:
            raise CheckpointError("dense_threshold must be in (0, 1]")
        self.block_size = block_size
        self.dense_threshold = dense_threshold
        self.decay = decay
        self._hash = BlockHashTracker(block_size=block_size)
        #: (vma, page) -> smoothed changed-fraction estimate.
        self._density: Dict[Tuple[str, int], float] = {}
        #: Pages already scanned once: a cold scan (no digests yet) saves
        #: every block but says nothing about write density, so it is
        #: excluded from the history.
        self._seen: set = set()
        self.pages_saved_whole = 0
        self.pages_block_scanned = 0

    def scan_ops(
        self,
        kernel: Kernel,
        target: Task,
        image: CheckpointImage,
        pages: Sequence[Tuple[str, int]],
    ) -> Generator:
        """Save dense pages whole; block-hash sparse pages.

        Dense pages are saved as they are visited; all sparse pages are
        handed to the block scanner in a single batch so the whole
        sparse set gets one vectorized digest pass (the seed version
        spun up a scratch :class:`CheckpointImage` per sparse page).
        """
        page_size = kernel.costs.page_size
        per_page = page_size // self.block_size
        sparse: List[Tuple[str, int]] = []
        for vma_name, pidx in pages:
            key = (vma_name, pidx)
            density = self._density.get(key, 0.0)
            if density >= self.dense_threshold:
                vma = target.mm.vma(vma_name)
                image.add_page(vma_name, pidx, vma.read_page(pidx))
                self.pages_saved_whole += 1
                # Whole page assumed changed; refresh digests lazily by
                # dropping them (they will be rebuilt on the next scan).
                self._hash._digests.pop(key, None)
                yield ops.Compute(ns=kernel.costs.memcpy_ns(page_size))
                self._density[key] = density * self.decay + (1 - self.decay)
            else:
                sparse.append(key)
        if not sparse:
            return
        for op in self._hash.scan_ops(kernel, target, image, sparse):
            yield op
        for key in sparse:
            frac = self._hash.last_scan_saved.get(key, 0) / per_page
            self.pages_block_scanned += 1
            if key in self._seen:
                density = self._density.get(key, 0.0)
                self._density[key] = density * self.decay + frac * (1 - self.decay)
            else:
                self._seen.add(key)
