"""Cache-line-granularity write tracking (the hardware substrate).

"Hardware-based schemes typically implement incremental checkpointing
at much finer granularity than is done at the operating system level:
modifications of the address space of the application are traced at the
granularity of cache lines."

The tracker hooks the simulated kernel's write path: every serviced
write reports the cache lines it touched; the hardware logs them with a
small (scheme-dependent) per-write overhead.  At checkpoint time, the
logged line set becomes sub-page block chunks in the image.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...errors import CheckpointError
from ...simkernel import Kernel, Task
from ...simkernel.memory import VMA
from ...core.image import CheckpointImage

__all__ = ["CacheLineTracker"]


class CacheLineTracker:
    """Logs dirty cache lines per (pid, vma, page).

    Parameters
    ----------
    kernel:
        The node whose write path is instrumented.  Only one tracker can
        hook a kernel at a time (one memory system).
    per_write_overhead_ns:
        Extra latency the hardware adds to each tracked write (directory
        logging for Revive; near-zero for SafetyNet's dedicated buffers).
    """

    def __init__(self, kernel: Kernel, per_write_overhead_ns: int = 0) -> None:
        if kernel.hw_tracker is not None:
            raise CheckpointError("another hardware tracker is already attached")
        self.kernel = kernel
        self.line_size = kernel.costs.cache_line_size
        self.per_write_overhead_ns = per_write_overhead_ns
        #: (pid, vma_name, page_index) -> set of line indices within page.
        self._dirty: Dict[Tuple[int, str, int], Set[int]] = {}
        self.writes_observed = 0
        self.lines_logged = 0
        kernel.hw_tracker = self._on_write

    def detach(self) -> None:
        """Unhook from the kernel's write path."""
        if self.kernel.hw_tracker is self._on_write:
            self.kernel.hw_tracker = None

    # ------------------------------------------------------------------
    def _on_write(self, task: Task, vma: VMA, pidx: int, offset: int, length: int) -> None:
        first = offset // self.line_size
        last = (offset + max(length, 1) - 1) // self.line_size
        key = (task.pid, vma.name, pidx)
        lines = self._dirty.setdefault(key, set())
        before = len(lines)
        lines.update(range(first, last + 1))
        self.writes_observed += 1
        self.lines_logged += len(lines) - before
        if self.per_write_overhead_ns:
            # The hardware stretches the write; charged as CPU backlog on
            # whichever CPU runs the task.
            cpu = next(
                (c for c in self.kernel.scheduler.cpus if c.current is task), None
            )
            if cpu is not None:
                cpu.irq_backlog_ns += self.per_write_overhead_ns

    # ------------------------------------------------------------------
    def dirty_lines(self, task: Task) -> Dict[Tuple[str, int], Set[int]]:
        """Current dirty-line map for one task (no reset)."""
        return {
            (vma, page): set(lines)
            for (pid, vma, page), lines in self._dirty.items()
            if pid == task.pid
        }

    def dirty_bytes(self, task: Task) -> int:
        """Total logged payload for ``task`` at line granularity."""
        return sum(
            len(lines) * self.line_size
            for (pid, _, _), lines in self._dirty.items()
            if pid == task.pid
        )

    def drain_into(self, task: Task, image: CheckpointImage) -> int:
        """Move the task's dirty lines into ``image`` as block chunks.

        Coalesces adjacent lines into single chunks.  Returns the number
        of chunks emitted and clears the log (epoch boundary).
        """
        emitted = 0
        for key in [k for k in self._dirty if k[0] == task.pid]:
            _, vma_name, pidx = key
            lines = sorted(self._dirty.pop(key))
            vma = task.mm.vma(vma_name)
            page = vma.read_page(pidx)
            run_start: Optional[int] = None
            prev = None
            for ln in lines + [None]:
                if run_start is None:
                    run_start = ln
                elif ln is None or ln != prev + 1:
                    start_b = run_start * self.line_size
                    end_b = (prev + 1) * self.line_size
                    image.add_block(vma_name, pidx, start_b, page[start_b:end_b])
                    emitted += 1
                    run_start = ln
                prev = ln
        return emitted
