"""Hardware-supported checkpoint mechanisms."""

from .cacheline import CacheLineTracker
from .schemes import HardwareCheckpointer, Revive, SafetyNet

__all__ = ["CacheLineTracker", "HardwareCheckpointer", "Revive", "SafetyNet"]
