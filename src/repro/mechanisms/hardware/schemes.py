"""Hardware-supported checkpointing: Revive and SafetyNet.

"There are two recent proposals for hardware-supported checkpointing
for shared-memory multiprocessors, Revive [29] and Safetynet [34].  In
Revive checkpointing is supported by modifications of the hardware
related to the directory controller of the machine.  In comparison,
Safetynet requires more hardware resources than Revive.  The
processor's caches must be modified, and it also requires an additional
buffer to store the checkpointing data."

Both take frequent, cheap, memory-resident checkpoints at cache-line
granularity and *roll back in place* on an error -- a different use
pattern from the OS packages (no stable storage, no cross-node restart),
which is why the paper notes hardware schemes are "of limited
importance" for commodity fault tolerance.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...core.checkpointer import Checkpointer, CheckpointRequest, RequestState
from ...core.features import Features, Initiation
from ...core.image import CheckpointImage, materialize_chain
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError, RestartError
from ...simkernel import Kernel, Task
from ...simkernel.process import Registers
from ...storage.backends import StorageKind
from .cacheline import CacheLineTracker

__all__ = ["HardwareCheckpointer", "Revive", "SafetyNet"]


class HardwareCheckpointer(Checkpointer):
    """Base class for the two hardware schemes.

    Checkpoints are *epochs*: the line log accumulated since the last
    epoch is flushed into a delta image in (protected) memory.  Rollback
    restores the last epoch in place.
    """

    #: Per-write logging overhead (scheme-dependent).
    per_write_overhead_ns: int = 0
    #: Relative silicon cost, for the E14 resource comparison
    #: (SafetyNet "requires more hardware resources than Revive").
    hardware_cost_units: int = 1
    #: Fixed epoch-flush latency (log drain into protected memory).
    epoch_flush_ns: int = 20_000

    def __init__(self, kernel: Kernel, storage) -> None:
        super().__init__(kernel, storage)
        self.tracker = CacheLineTracker(
            kernel, per_write_overhead_ns=self.per_write_overhead_ns
        )

    def request_checkpoint(
        self, task: Task, incremental: bool = True
    ) -> CheckpointRequest:
        """Close the current epoch for ``task``.

        Hardware checkpoints are always incremental after the first
        epoch; the first epoch snapshots all resident pages (hardware
        cannot know what was dirtied before it was armed).
        """
        req = self._new_request(task, incremental=True)
        req.state = RequestState.RUNNING
        req.started_ns = self.kernel.engine.now_ns
        self.kernel.engine.metrics.inc("capture.hw_epochs")
        image = self._new_image(req, task)
        from ...core.capture import snapshot_metadata

        snapshot_metadata(self.kernel, task, image)
        if image.parent_key is None:
            # First epoch: full resident snapshot, extent-coalesced.
            from ...core.capture import _extent_runs

            for vma in task.mm.vmas:
                resident = [(vma.name, int(p)) for p in vma.present_pages()]
                for name, start, npages in _extent_runs(resident):
                    if npages == 1:
                        image.add_page(name, start, vma.read_page(start))
                    else:
                        image.add_extent(name, start, vma.read_pages(start, npages), npages)
            self.tracker.drain_into(task, CheckpointImage(
                key="discard", mechanism="", pid=0, task_name="", node_id=0,
                step=0, registers={},
            ))
        else:
            self.tracker.drain_into(task, image)
        delay = self.storage.store(
            image.key, image, image.size_bytes, self.kernel.engine.now_ns
        )
        done_at = self.epoch_flush_ns + delay

        def finish() -> None:
            self._complete(req, image)

        self.kernel.engine.after(done_at, finish, label="hw-epoch")
        return req

    # ------------------------------------------------------------------
    def rollback(self, key: str, task: Task) -> int:
        """Roll ``task`` back to the epoch stored under ``key``, in place.

        Returns the number of bytes rewritten.  This is the
        shared-memory-multiprocessor recovery path: same machine, same
        process, memory and registers wound back.
        """
        chain, _ = self.image_chain(key)
        image = (
            chain[0]
            if len(chain) == 1
            else materialize_chain(chain, page_size=self.kernel.costs.page_size)
        )
        if image.pid != task.pid:
            raise RestartError(
                f"epoch {key!r} belongs to pid {image.pid}, not {task.pid}"
            )
        rewritten = 0
        for chunk in image.chunks:
            vma = task.mm.vma(chunk.vma)
            for c in chunk.split_pages():
                arr, _ = vma.ensure_page(c.page_index)
                arr[c.offset : c.offset + c.nbytes] = c.data
            rewritten += chunk.nbytes
        task.registers = Registers.from_snapshot(image.registers)
        workload = image.user_state.get("workload")
        if workload is not None:
            task.rebuild_program(workload.align_step(image.step))
        engine = self.kernel.engine
        engine.metrics.inc("restart.hw_rollbacks")
        engine.tracer.instant("restart.rollback", key=key, pid=task.pid, bytes=rewritten)
        # Discard lines dirtied since the epoch (they were rolled back).
        self.tracker.drain_into(task, CheckpointImage(
            key="discard", mechanism="", pid=0, task_name="", node_id=0,
            step=0, registers={},
        ))
        return rewritten


@register
class Revive(HardwareCheckpointer):
    """ReVive: directory-controller logging (Prvulovic et al., ISCA '02)."""

    mech_name = "ReVive"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.HW_DIRECTORY_CONTROLLER,
        specifics=("directory controller mods", "memory-based log"),
    )
    features = Features(
        incremental=True,
        transparent=True,
        stable_storage=(StorageKind.MEMORY,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
    )
    description = "Cost-effective architectural support for rollback recovery"
    #: Logging rides the directory protocol: small per-write cost.
    per_write_overhead_ns = 40
    hardware_cost_units = 1


@register
class SafetyNet(HardwareCheckpointer):
    """SafetyNet: cache checkpoint buffers (Sorin et al., ISCA '02)."""

    mech_name = "SafetyNet"
    position = TaxonomyPosition(
        context=Context.SYSTEM_LEVEL,
        agent=Agent.HW_CACHE,
        specifics=("modified caches", "dedicated checkpoint buffers"),
    )
    features = Features(
        incremental=True,
        transparent=True,
        stable_storage=(StorageKind.MEMORY,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
    )
    description = "Global checkpoint/recovery for shared memory multiprocessors"
    #: Dedicated buffers hide the logging latency almost entirely...
    per_write_overhead_ns = 5
    #: ...at the price of "more hardware resources than Revive".
    hardware_cost_units = 3
