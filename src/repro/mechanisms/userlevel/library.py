"""User-level checkpoint libraries: libckpt, libckp, Thckpt, Esky,
Condor, libtckpt, and the PSC terascale library.

All are Section-3 citizens: linked (or preloaded) into the application,
triggered by general-purpose signals, extracting kernel state through
system calls.  Their Features rows extend Table 1 (which covers only the
system-level packages) using the survey text's descriptions.
"""

from __future__ import annotations

from typing import List

from ...core.checkpointer import CheckpointRequest
from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError
from ...simkernel import Task
from ...simkernel.signals import Sig
from ...storage.backends import StorageKind
from .base import UserLevelCheckpointer

__all__ = ["Libckpt", "Libckp", "Thckpt", "Esky", "Condor", "Libtckpt", "PscCR"]


@register
class Libckpt(UserLevelCheckpointer):
    """libckpt (Plank et al.): the canonical user-level checkpointer.

    SIGALRM-timer automatic initiation and user-level *incremental*
    checkpointing via mprotect+SIGSEGV -- the reference implementation
    of the technique the paper discusses in Section 3.
    """

    mech_name = "libckpt"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("relink against library", "SIGALRM timer", "mprotect incremental"),
    )
    features = Features(
        incremental=True,
        transparent=False,  # relink (or even source changes for forked ckpt)
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        requires_registration=True,
    )
    description = "Transparent checkpointing under Unix (Usenix '95)"
    trigger_signal = Sig.SIGALRM


@register
class Libckp(UserLevelCheckpointer):
    """libckp (Wang et al.): full-image user-level checkpointing."""

    mech_name = "libckp"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("relink against library", "full images"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        requires_registration=True,
    )
    description = "Checkpointing and its applications (FTCS '95)"
    trigger_signal = Sig.SIGALRM


@register
class Thckpt(UserLevelCheckpointer):
    """Thckpt: user-level checkpointing of single-threaded processes."""

    mech_name = "Thckpt"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("relink against library",),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        requires_registration=True,
    )
    description = "Thckpt (sourceforge)"
    trigger_signal = Sig.SIGALRM


@register
class Esky(UserLevelCheckpointer):
    """Esky: SIGALRM-driven user-level checkpointing (Solaris/Linux)."""

    mech_name = "Esky"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.USER_SIGNAL_HANDLER,
        specifics=("SIGALRM timer", "user signal handler"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        requires_registration=True,
    )
    description = "Esky checkpoint/restart (ANU)"
    trigger_signal = Sig.SIGALRM


@register
class Condor(UserLevelCheckpointer):
    """Condor's checkpoint library: general-purpose signals + remote I/O.

    "Others, like Condor, may use some general purpose signals such as
    SIGUSR1, SIGUSR2, and SIGUNUSED" -- user-initiated via ``kill``, and
    its shadow mechanism lets checkpoints land on a remote machine.
    """

    mech_name = "Condor"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.USER_SIGNAL_HANDLER,
        specifics=("SIGUSR2", "remote shadow I/O", "relink condor_compile"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=False,
        migration=True,
        requires_registration=True,
    )
    description = "Condor distributed processing system (Wisconsin)"
    trigger_signal = Sig.SIGUSR2


@register
class Libtckpt(UserLevelCheckpointer):
    """libtckpt: user-level checkpointing for LinuxThreads programs."""

    mech_name = "libtckpt"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("relink against library", "multithreaded", "thread barrier"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        multithreaded=True,
        requires_registration=True,
    )
    description = "User-level checkpointing for LinuxThreads (Usenix '01)"
    trigger_signal = Sig.SIGUSR1

    #: Cost of herding all threads to the barrier before capture.
    THREAD_BARRIER_NS = 150_000

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        group: List[int] = task.annotations.get("thread_group", [task.pid])
        # Every sibling must also be linked (same process image).
        for pid in group:
            if pid in self.kernel.tasks:
                self.kernel.tasks[pid].annotations.setdefault(
                    f"{self.mech_name}_linked", True
                )
        # The barrier stalls siblings; modelled as stopping them for the
        # duration of the leader's handler.
        for pid in group:
            t = self.kernel.tasks.get(pid)
            if t is not None and t is not task and t.alive():
                self.kernel.stop_task(t)
        req = super().request_checkpoint(task, incremental)

        def release() -> None:
            if req.completed_ns is None:
                self.kernel.engine.after(200_000, release)
                return
            for pid in group:
                t = self.kernel.tasks.get(pid)
                if t is not None and t is not task and t.alive():
                    self.kernel.resume_task(t)

        self.kernel.engine.after(self.THREAD_BARRIER_NS, release)
        return req


@register
class PscCR(UserLevelCheckpointer):
    """The Pittsburgh Supercomputing Center checkpoint library.

    User-level library for the Terascale system's parallel applications;
    checkpoints land on shared (remote) storage.
    """

    mech_name = "PSC"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("parallel applications", "shared filesystem"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.REMOTE,),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        parallel_mpi=True,
        requires_registration=True,
    )
    description = "PSC Terascale checkpoint and recovery (CMU-PSC-TR-2001)"
    trigger_signal = Sig.SIGUSR1
