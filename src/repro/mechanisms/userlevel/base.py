"""Shared machinery for user-level checkpointers.

User-level mechanisms run the checkpoint *inside the target, in user
mode*, typically from a signal handler.  Every kernel-held datum costs a
system call (Section 3 / experiment E3); pages are buffered and written
through ``write()`` (more boundary crossings); incremental tracking uses
``mprotect`` + SIGSEGV (two orders costlier per first-touch than the
kernel's own fault handler); and kernel-persistent resources (sockets,
SysV shm) simply cannot be recreated on restart.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ...core.capture import (
    DEFAULT_SKIP_KINDS,
    copy_pages,
    select_pages,
    store_image,
    user_extract_metadata,
)
from ...core.checkpointer import Checkpointer, CheckpointRequest, RequestState
from ...errors import CheckpointError, StorageError
from ...simkernel import Kernel, Mode, Task, ops
from ...simkernel.signals import HandlerKind, Sig, SignalHandler
from .. import incremental as incr

__all__ = ["UserLevelCheckpointer"]


class UserLevelCheckpointer(Checkpointer):
    """Base class for user-level mechanisms.

    Subclasses choose the trigger signal, initiation style, and whether
    the handler uses non-reentrant libc functions (the hazard the paper
    flags).  ``prepare_target`` wires the handler -- the relink/modify
    step that costs these packages their transparency.
    """

    #: Signal whose user handler runs the checkpoint.
    trigger_signal: Sig = Sig.SIGALRM
    #: The checkpoint code mallocs buffers inside the handler (true for
    #: real libraries that snapshot via stdio) -- enables hazard counting.
    handler_uses_malloc: bool = True
    skip_kinds = DEFAULT_SKIP_KINDS

    # ------------------------------------------------------------------
    def prepare_target(self, task: Task) -> None:
        """Link/initialize the library inside the target.

        Registers the trigger-signal handler; incremental-capable
        libraries also install the SIGSEGV tracking handler.
        """
        task.signals.register(
            self.trigger_signal,
            SignalHandler(
                kind=HandlerKind.USER,
                program_factory=self._handler_factory,
                uses_non_reentrant=self.handler_uses_malloc,
                label=f"{self.mech_name}-ckpt",
            ),
        )
        task.annotations[f"{self.mech_name}_linked"] = True
        if self.features.incremental:
            incr.arm_user_tracking(self.kernel, task)

    def _require_linked(self, task: Task) -> None:
        if not task.annotations.get(f"{self.mech_name}_linked"):
            raise CheckpointError(
                f"pid {task.pid} is not linked against {self.mech_name}"
            )

    def enable_timer(self, task: Task, interval_ns: int) -> None:
        """Automatic initiation: periodic trigger signal via setitimer.

        Installed from within the library's init code, so the cost is
        the one syscall (charged when the program next runs -- here we
        set it directly, the one-off cost is negligible)."""
        self._require_linked(task)
        self.kernel._itimers[task.pid] = {
            "interval_ns": int(interval_ns),
            "sig": self.trigger_signal,
            "next_ns": self.kernel.engine.now_ns + int(interval_ns),
        }

    # ------------------------------------------------------------------
    def _handler_factory(self, task: Task) -> Generator:
        """Build the user-mode checkpoint handler program."""
        req = self._pending_for(task) or self._new_request(
            task, incremental=self.features.incremental
        )

        def handler():
            req.state = RequestState.RUNNING
            req.started_ns = self.kernel.engine.now_ns
            self.kernel.engine.metrics.inc("capture.handler_captures")
            image = self._new_image(req, task)
            # Kernel-state extraction: one syscall per datum (E3).
            yield from self._forward(user_extract_metadata(self.kernel, task, image))
            # Handler-local buffering work (the malloc the paper warns
            # about happens here).
            yield ops.Compute(ns=5_000, non_reentrant=self.handler_uses_malloc)
            # The first checkpoint of a chain is always full (no parent);
            # later ones save only the shadow-tracked dirty pages.
            use_shadow = req.incremental and image.parent_key is not None
            if use_shadow:
                pages = self._shadow_pages(task)
            else:
                pages = select_pages(
                    self.kernel, task, incremental=False, skip_kinds=self.skip_kinds
                )
            for op in copy_pages(self.kernel, task, image, pages, user_mode=True):
                yield op
            store_start_ns = self.kernel.engine.now_ns
            try:
                for op in store_image(self.kernel, self.storage, image):
                    yield op
            except StorageError as exc:
                # Lost backend / write quorum unreachable: the
                # checkpoint fails, the application continues.
                req.target_stall_ns = self.kernel.engine.now_ns - req.started_ns
                self._fail(req, f"stable-storage write failed: {exc}")
                return
            req.storage_delay_ns = self.kernel.engine.now_ns - store_start_ns
            if self.features.incremental:
                # Re-arm: a full mprotect sweep, one syscall per VMA.
                yield from self._forward(incr.user_arm_ops(task))
            req.target_stall_ns = self.kernel.engine.now_ns - req.started_ns
            self._complete(req, image)

        return handler()

    @staticmethod
    def _forward(inner) -> Generator:
        send = None
        while True:
            try:
                op = inner.send(send)
            except StopIteration:
                return
            send = yield op

    def _shadow_pages(self, task: Task) -> List[Tuple[str, int]]:
        """Pages recorded by the user-level SIGSEGV tracking handler."""
        shadow = task.annotations.get("shadow_dirty", set())
        return sorted(shadow)

    # -- request plumbing --------------------------------------------------
    def _pending_for(self, task: Task) -> Optional[CheckpointRequest]:
        pending = getattr(self, "_pending_by_pid", None)
        if pending:
            return pending.pop(task.pid, None)
        return None

    def _mark_pending(self, req: CheckpointRequest) -> None:
        """Remember an externally created request until its signal lands.

        Keyed by pid: several ranks may have checkpoints in flight at
        once (coordinated parallel jobs), each delivered asynchronously.
        """
        if not hasattr(self, "_pending_by_pid"):
            self._pending_by_pid = {}
        self._pending_by_pid[req.target_pid] = req

    def request_checkpoint(
        self, task: Task, incremental: bool = False
    ) -> CheckpointRequest:
        """Initiate by sending the trigger signal (kill path)."""
        self._require_linked(task)
        req = self._new_request(
            task, incremental=incremental or self.features.incremental
        )
        self._mark_pending(req)
        self.kernel.post_signal(task.pid, self.trigger_signal)
        return req
