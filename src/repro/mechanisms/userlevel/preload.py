"""LD_PRELOAD-based user-level checkpointing.

"Another implementation is based on the LD_PRELOAD environment variable
which installs the signal handlers and loads the checkpoint library
without recompiling again the application."  The preloaded library must
*replicate kernel structures in user space by intercepting system
calls* -- mmap/munmap for dynamic memory, dlopen for shared libraries,
open/dup for file attributes -- "extremely undesirable because of added
run-time overhead" (experiment E4).
"""

from __future__ import annotations

from typing import Dict, List

from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...simkernel import Task
from ...simkernel.signals import Sig
from ...simkernel.syscalls import SyscallTable
from ...storage.backends import StorageKind
from .base import UserLevelCheckpointer

__all__ = ["PreloadCkpt"]


@register
class PreloadCkpt(UserLevelCheckpointer):
    """Generic LD_PRELOAD checkpointer with shadow state replication."""

    mech_name = "ld-preload"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.LD_PRELOAD,
        specifics=("no relink", "syscall interposition", "shadow structures"),
    )
    features = Features(
        incremental=False,
        # No recompile/relink -- but still needs the env var at launch,
        # which the paper counts as (mostly) transparent at user level.
        transparent=True,
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.USER,
        kernel_module=False,
        requires_registration=True,
    )
    description = "LD_PRELOAD interposition checkpointing"
    trigger_signal = Sig.SIGUSR1

    #: Bookkeeping cost per interposed call (shadow structure update).
    SHADOW_OVERHEAD_NS = 700
    _WRAPPED = ["mmap", "munmap", "open", "close", "dup", "sbrk", "socket_connect"]

    def prepare_target(self, task: Task) -> None:
        """Simulate launching with LD_PRELOAD=libckpt_preload.so."""
        super().prepare_target(task)
        shadow: Dict[str, List] = task.annotations.setdefault(
            "preload_shadow", {"mmaps": [], "files": [], "heap_end": None}
        )

        def shadow_hook(kernel, t, name, args) -> int:
            # Mirror the kernel-visible effect into user-space records.
            if name == "mmap" and args:
                shadow["mmaps"].append(args[0])
            elif name == "munmap" and args:
                try:
                    shadow["mmaps"].remove(args[0])
                except ValueError:
                    pass
            elif name in ("open", "dup") and args:
                shadow["files"].append(args[0])
            elif name == "sbrk":
                shadow["heap_end"] = "tracked"
            return self.SHADOW_OVERHEAD_NS

        SyscallTable.interpose(task, self._WRAPPED, shadow_hook)
