"""User-level checkpoint mechanisms."""

from .base import UserLevelCheckpointer
from .library import Condor, Esky, Libckp, Libckpt, Libtckpt, PscCR, Thckpt
from .parallel import CCIFT, CLIP, CoCheck
from .preload import PreloadCkpt

__all__ = [
    "UserLevelCheckpointer",
    "Libckpt",
    "Libckp",
    "Thckpt",
    "Esky",
    "Condor",
    "Libtckpt",
    "PscCR",
    "PreloadCkpt",
    "CoCheck",
    "CLIP",
    "CCIFT",
]
