"""Parallel-application user-level checkpointers: CoCheck, CLIP, CCIFT.

Coordinated checkpointing of message-passing programs implemented
entirely in user space (library layer over PVM/MPI).  The coordination
protocol (flush channels, then checkpoint every rank) runs at user
level; each rank's capture is a plain user-level checkpoint with all
the Section-3 costs.
"""

from __future__ import annotations

from typing import List, Optional

from ...core.checkpointer import CheckpointRequest
from ...core.features import Features, Initiation
from ...core.registry import register
from ...core.taxonomy import Agent, Context, TaxonomyPosition
from ...errors import CheckpointError
from ...simkernel import Task
from ...simkernel.signals import Sig
from ...storage.backends import StorageKind
from .base import UserLevelCheckpointer

__all__ = ["CoCheck", "CLIP", "CCIFT"]


class _ParallelUserCkpt(UserLevelCheckpointer):
    """Shared coordination logic for the user-level parallel trio."""

    #: Per-rank channel-flush cost before captures may start.
    FLUSH_NS_PER_RANK = 400_000

    def checkpoint_job(self, ranks: List[Task]) -> List[CheckpointRequest]:
        """Coordinated checkpoint: flush channels, then signal every rank."""
        if not ranks:
            raise CheckpointError("empty rank list")
        for r in ranks:
            self._require_linked(r)
        flush_ns = self.FLUSH_NS_PER_RANK * len(ranks)
        reqs = [self._new_request(r) for r in ranks]

        def trigger() -> None:
            for r, req in zip(ranks, reqs):
                if r.alive():
                    self._mark_pending(req)
                    # The coordinator (rank 0's library) kills each rank
                    # with the trigger signal.
                    self.kernel.post_signal(r.pid, self.trigger_signal)
                else:
                    self._fail(req, f"rank pid {r.pid} dead at checkpoint")

        self.kernel.engine.after(flush_ns, trigger, label="ul-flush")
        return reqs


@register
class CoCheck(_ParallelUserCkpt):
    """CoCheck: consistent checkpoints for PVM/MPI at user level."""

    mech_name = "CoCheck"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("PVM/MPI layer", "ready-message flush protocol"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        parallel_mpi=True,
        migration=True,
        requires_registration=True,
    )
    description = "Managing checkpoints for parallel programs (JSSPP '96)"
    trigger_signal = Sig.SIGUSR1


@register
class CLIP(_ParallelUserCkpt):
    """CLIP: semi-transparent checkpointing for Intel Paragon MPPs."""

    mech_name = "CLIP"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.CHECKPOINT_LIBRARY,
        specifics=("message-passing apps", "user placed ckpt calls"),
    )
    features = Features(
        incremental=False,
        transparent=False,
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        parallel_mpi=True,
        requires_registration=True,
    )
    description = "CLIP: a checkpointing tool for message-passing programs"
    trigger_signal = Sig.SIGUSR1


@register
class CCIFT(_ParallelUserCkpt):
    """CCIFT: automated application-level checkpointing via precompiler.

    Bronevetsky et al.: a source-to-source precompiler inserts the
    checkpointing code, so the *agent* is the precompiler rather than a
    hand-linked library.
    """

    mech_name = "CCIFT"
    position = TaxonomyPosition(
        context=Context.USER_LEVEL,
        agent=Agent.PRECOMPILER,
        specifics=("source-to-source precompiler", "MPI protocol layer"),
    )
    features = Features(
        incremental=False,
        transparent=False,  # source is transformed and recompiled
        stable_storage=(StorageKind.LOCAL, StorageKind.REMOTE),
        initiation=Initiation.AUTOMATIC,
        kernel_module=False,
        parallel_mpi=True,
        requires_registration=True,
    )
    description = "Automated application-level checkpointing of MPI (PPoPP '03)"
    trigger_signal = Sig.SIGUSR1
