"""Multi-level checkpoint storage: scratch, partner, erasure, remote.

The petascale C/R systems the paper's "direction forward" grew into
(SCR-style multi-level checkpointing, OpenCHK) do not write every
image to the slowest, most durable tier: they land it on fast
node-local scratch, protect it on a partner replica, erasure-code it
across a group, and only the images that must outlive a whole-machine
incident reach the remote tier.  :class:`HierarchicalStore` composes
any :class:`~repro.storage.backends.StorageBackend` instances into
that shape:

* each :class:`StorageLevel` has its own failure domain (the wrapped
  backend's), a **write policy** -- ``"through"`` (charged on the
  client's critical path) or ``"back"`` (copied asynchronously after
  ``writeback_delay_ns``) -- and an optional capacity bound;
* reads walk the levels fastest-first and **promote** the image into
  the faster levels it missed (charged in the background, after the
  read completes);
* a capacity-bound level **demotes** (evicts) its oldest images once
  they are protected by a deeper level;
* when a level *loses* a blob outright (every replica/shard gone --
  its own intra-level repairer can no longer help), the hierarchy
  **re-protects** it from a surviving level on the repair cadence.

The hierarchy is itself a ``StorageBackend`` with the full
``WriteStream`` protocol, so ``WritebackPipeline``, dedup wrappers,
generation GC and the distsnap cut manifests compose unchanged.  A
degenerate single-level hierarchy is charge-for-charge identical to
the wrapped backend (the E23 byte-identity gate), because every
operation forwards verbatim and only ``hierarchy.*`` metrics are
added.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError, StorageLostError
from ..simkernel.costs import NS_PER_MS
from ..simkernel.engine import Completion
from ..storage.backends import StorageBackend, StorageKind

__all__ = ["StorageLevel", "HierarchicalStore", "HierarchyWriteStream"]


class StorageLevel:
    """One level of the hierarchy: a backend plus its placement policy.

    Parameters
    ----------
    name:
        Diagnostic label; also the metric tag (``hierarchy.<name>.*``).
    backend:
        The wrapped store (any ``StorageBackend``).
    write:
        ``"through"`` -- every store lands here synchronously;
        ``"back"`` -- a copy is scheduled ``writeback_delay_ns`` after
        the store commits (asynchronous protection).
    writeback_delay_ns:
        Delay before the write-back copy starts.
    capacity_bytes:
        When set, the level evicts its oldest blobs past this bound --
        but only blobs another level still holds (demotion, never data
        loss).
    durable:
        Whether this level survives compute-node failure; defaults to
        the backend's ``survives_node_failure``.
    """

    def __init__(
        self,
        name: str,
        backend: StorageBackend,
        write: str = "through",
        writeback_delay_ns: int = 2 * NS_PER_MS,
        capacity_bytes: Optional[int] = None,
        durable: Optional[bool] = None,
    ) -> None:
        if write not in ("through", "back"):
            raise StorageError(
                f"level {name!r}: write policy must be 'through' or 'back', "
                f"not {write!r}"
            )
        self.name = name
        self.backend = backend
        self.write = write
        self.writeback_delay_ns = int(writeback_delay_ns)
        self.capacity_bytes = capacity_bytes
        self.durable = (
            backend.survives_node_failure if durable is None else bool(durable)
        )
        #: Insertion-ordered residency map (key -> nbytes) this
        #: hierarchy maintains for capacity eviction.
        self._resident: Dict[str, int] = {}

    def resident_bytes(self) -> int:
        """Bytes the hierarchy believes are resident on this level."""
        return sum(self._resident.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageLevel {self.name!r} {self.write} {self.backend!r}>"


class HierarchicalStore(StorageBackend):
    """A stack of storage levels behind one ``StorageBackend`` face.

    Parameters
    ----------
    engine:
        The shared simulation clock (write-back copies, promotions and
        re-protection run as engine events).
    levels:
        Fastest-first.  At least one level must be write-through (a
        store must land *somewhere* synchronously).
    promote_on_access:
        Copy an image into the faster levels it missed after a read
        hits a slower level.
    delta_updates:
        Route :meth:`store_delta` (and write-back copies carrying dirty
        extents) through a level backend's own ``store_delta`` when it
        has one -- the erasure tier's O(dirty) partial-stripe update.
        Off, every delta degrades to a plain full store on every level.
    reprotect:
        Watch each level's storage cluster (when it has one) and copy
        blobs the level lost outright back from a surviving level.
    detect_delay_ns / reprotect_scan_ns / max_reprotect_per_scan:
        Failure-detection latency, steady re-scan period and per-scan
        throttle of the re-protection walk.
    """

    kind = StorageKind.REMOTE

    def __init__(
        self,
        engine,
        levels: Sequence[StorageLevel],
        promote_on_access: bool = True,
        delta_updates: bool = True,
        reprotect: bool = True,
        detect_delay_ns: int = 2 * NS_PER_MS,
        reprotect_scan_ns: int = 10 * NS_PER_MS,
        max_reprotect_per_scan: int = 32,
    ) -> None:
        if not levels:
            raise StorageError("hierarchy needs at least one level")
        names = [lv.name for lv in levels]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate level names: {names}")
        if not any(lv.write == "through" for lv in levels):
            raise StorageError("hierarchy needs at least one write-through level")
        super().__init__(device=levels[0].backend.device)
        self.engine = engine
        self.levels: List[StorageLevel] = list(levels)
        self.survives_node_failure = any(lv.durable for lv in levels)
        self.promote_on_access = bool(promote_on_access)
        self.delta_updates = bool(delta_updates)
        self.detect_delay_ns = int(detect_delay_ns)
        self.reprotect_scan_ns = int(reprotect_scan_ns)
        self.max_reprotect_per_scan = int(max_reprotect_per_scan)
        #: key -> accounted nbytes of every blob the hierarchy accepted.
        self._directory: Dict[str, int] = {}
        #: First engine-attached level cluster, so wrappers that reach
        #: for ``inner.storage.engine`` (ContentStore's async entry
        #: points) compose with a hierarchy exactly like with a
        #: ReplicatedStore.
        self.storage = next(
            (
                getattr(lv.backend, "storage")
                for lv in self.levels
                if hasattr(lv.backend, "storage")
            ),
            None,
        )
        self.promotions = 0
        self.demotions = 0
        self.reprotects = 0
        self.writeback_failures = 0
        if reprotect:
            for level in self.levels:
                cluster = getattr(level.backend, "storage", None)
                if cluster is not None and hasattr(cluster, "on_failure"):
                    cluster.on_failure(
                        lambda _s, lv=level: self.engine.after(
                            self.detect_delay_ns,
                            lambda: self._reprotect_scan(lv),
                            label="hier-reprotect",
                        )
                    )

    # ------------------------------------------------------------------
    def level(self, name: str) -> StorageLevel:
        """Level by name."""
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise StorageError(f"no hierarchy level named {name!r}")

    def _metrics(self):
        return self.engine.metrics

    def _mark_resident(self, level: StorageLevel, key: str, nbytes: int) -> None:
        level._resident.pop(key, None)  # refresh insertion order
        level._resident[key] = nbytes

    # ------------------------------------------------------------------
    # StorageBackend protocol: writes
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Write through the synchronous levels; schedule the rest.

        The client-visible delay is the slowest write-through level
        (they run concurrently on their own devices).  A write-through
        level that cannot accept the blob (its quorum is unreachable)
        is skipped and counted; the store fails only when *no* level
        accepted it.
        """
        metrics = self._metrics()
        delays: List[int] = []
        for level in self.levels:
            if level.write != "through":
                continue
            try:
                d = level.backend.store(key, obj, nbytes, now_ns)
            except StorageLostError:
                metrics.inc("hierarchy.write_errors")
                continue
            delays.append(d)
            self._mark_resident(level, key, nbytes)
            metrics.inc(f"hierarchy.{level.name}.writes")
            metrics.inc(f"hierarchy.{level.name}.level_bytes_written", nbytes)
        if not delays:
            raise StorageLostError(
                f"no hierarchy level accepted the write of {key!r}"
            )
        self._directory[key] = nbytes
        self.bytes_written += nbytes
        self._schedule_writebacks(key, obj, nbytes)
        self._evict_over_capacity()
        return max(delays)

    def store_delta(
        self,
        key: str,
        obj: Any,
        nbytes: int,
        dirty_extents: Sequence[Tuple[int, int]],
        now_ns: int,
        base_key: Optional[str] = None,
    ) -> int:
        """Write a partially dirty update through the hierarchy.

        Each write-through level whose backend has its own
        ``store_delta`` (the erasure tier) receives an O(dirty)
        partial-stripe update of its resident base copy; every other
        level -- and every level when ``delta_updates`` is off or the
        base is not resident there -- takes a plain full store, so the
        call never requires delta support anywhere.  ``base_key``
        (default ``key``) names the previous generation's blob; a
        rebasing level consumes it, and the level residency follows.
        Write-back levels get the dirty extents too, so the
        asynchronous copy is also O(dirty) where the backend allows.
        """
        metrics = self._metrics()
        base = base_key if base_key is not None else key
        delays: List[int] = []
        for level in self.levels:
            if level.write != "through":
                continue
            delta_fn = getattr(level.backend, "store_delta", None)
            use_delta = (
                self.delta_updates
                and delta_fn is not None
                and level.backend.exists(base)
            )
            try:
                if use_delta:
                    d = delta_fn(
                        key, obj, nbytes, dirty_extents, now_ns, base_key=base_key
                    )
                    metrics.inc(f"hierarchy.{level.name}.delta_writes")
                else:
                    d = level.backend.store(key, obj, nbytes, now_ns)
            except StorageLostError:
                metrics.inc("hierarchy.write_errors")
                continue
            delays.append(d)
            if use_delta and base != key and not level.backend.exists(base):
                level._resident.pop(base, None)  # rebase consumed it
            self._mark_resident(level, key, nbytes)
            metrics.inc(f"hierarchy.{level.name}.writes")
            metrics.inc(f"hierarchy.{level.name}.level_bytes_written", nbytes)
        if not delays:
            raise StorageLostError(
                f"no hierarchy level accepted the delta write of {key!r}"
            )
        self._directory[key] = nbytes
        self.bytes_written += nbytes
        self._schedule_writebacks(
            key, obj, nbytes, dirty_extents=dirty_extents, base_key=base_key
        )
        self._evict_over_capacity()
        return max(delays)

    def _schedule_writebacks(
        self,
        key: str,
        obj: Any,
        nbytes: int,
        dirty_extents: Optional[Sequence[Tuple[int, int]]] = None,
        base_key: Optional[str] = None,
    ) -> None:
        for level in self.levels:
            if level.write != "back":
                continue
            self.engine.after(
                level.writeback_delay_ns,
                lambda lv=level: self._writeback(
                    lv, key, obj, nbytes, dirty_extents, base_key
                ),
                label="hier-writeback",
            )

    def _writeback(
        self,
        level: StorageLevel,
        key: str,
        obj: Any,
        nbytes: int,
        dirty_extents: Optional[Sequence[Tuple[int, int]]] = None,
        base_key: Optional[str] = None,
    ) -> None:
        if key not in self._directory:
            return  # deleted before the copy started
        base = base_key if base_key is not None else key
        delta_fn = getattr(level.backend, "store_delta", None)
        use_delta = (
            self.delta_updates
            and dirty_extents is not None
            and delta_fn is not None
            and level.backend.exists(base)
        )
        # A plain copy that already landed (promotion, earlier copy) is
        # done; a *delta* copy must still run even though exists(key) is
        # true -- the resident bytes are the stale base generation.
        if not use_delta and level.backend.exists(key):
            return
        metrics = self._metrics()
        try:
            if use_delta:
                delta_fn(
                    key,
                    obj,
                    nbytes,
                    dirty_extents,
                    self.engine.now_ns,
                    base_key=base_key,
                )
                metrics.inc(f"hierarchy.{level.name}.delta_writes")
            else:
                level.backend.store(key, obj, nbytes, self.engine.now_ns)
        except StorageLostError:
            # The level is degraded right now; the re-protection scan
            # retries once it recovers.
            self.writeback_failures += 1
            metrics.inc("hierarchy.writeback_failures")
            return
        if use_delta and base != key and not level.backend.exists(base):
            level._resident.pop(base, None)  # rebase consumed it
        self._mark_resident(level, key, nbytes)
        metrics.inc(f"hierarchy.{level.name}.writes")
        metrics.inc(f"hierarchy.{level.name}.level_bytes_written", nbytes)
        metrics.inc("hierarchy.writeback_bytes", nbytes)
        self._evict_over_capacity()

    # ------------------------------------------------------------------
    # StorageBackend protocol: reads
    # ------------------------------------------------------------------
    def _read_from_levels(
        self, key: str, now_ns: int, fanout: bool
    ) -> Tuple[Any, int]:
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self._metrics()
        nbytes = self._directory[key]
        for i, level in enumerate(self.levels):
            if not level.backend.exists(key):
                metrics.inc(f"hierarchy.{level.name}.misses")
                continue
            reader = level.backend.load
            if fanout:
                reader = getattr(level.backend, "load_fanout", reader)
            obj, delay = reader(key, now_ns)
            metrics.inc(f"hierarchy.{level.name}.hits")
            if i > 0 and self.promote_on_access:
                self._schedule_promotion(key, obj, nbytes, self.levels[:i], delay)
            self.bytes_read += nbytes
            return obj, delay
        metrics.inc("hierarchy.lost_reads")
        raise StorageLostError(
            f"no hierarchy level can currently read {key!r}"
        )

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Serial read: fastest level holding the blob serves it."""
        return self._read_from_levels(key, now_ns, fanout=False)

    def load_fanout(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Fan-out read through the serving level's own fan-out path."""
        return self._read_from_levels(key, now_ns, fanout=True)

    def load_async(self, key: str, now_ns: int) -> Completion:
        """Fan-out read as an engine completion (restore prefetch)."""
        obj, delay = self.load_fanout(key, now_ns)
        return self.engine.completion(delay, value=obj)

    def store_async(self, key: str, obj: Any, nbytes: int, now_ns: int) -> Completion:
        """Hierarchy write as an engine completion (writeback pipeline)."""
        delay = self.store(key, obj, nbytes, now_ns)
        return self.engine.completion(delay, value=delay)

    def load_parallel(self, keys, now_ns: int) -> Tuple[Dict[str, Any], int]:
        """Prefetch several blobs issued at one instant (chain restore)."""
        objs: Dict[str, Any] = {}
        worst = 0
        for key in keys:
            obj, delay = self.load_fanout(key, now_ns)
            objs[key] = obj
            worst = max(worst, delay)
        return objs, worst

    def _schedule_promotion(
        self,
        key: str,
        obj: Any,
        nbytes: int,
        into: Sequence[StorageLevel],
        after_ns: int,
    ) -> None:
        self.engine.after(
            max(0, after_ns),
            lambda: self._promote(key, obj, nbytes, list(into)),
            label="hier-promote",
        )

    def _promote(
        self, key: str, obj: Any, nbytes: int, into: List[StorageLevel]
    ) -> None:
        if key not in self._directory:
            return
        metrics = self._metrics()
        for level in into:
            if level.backend.exists(key):
                continue
            try:
                level.backend.store(key, obj, nbytes, self.engine.now_ns)
            except StorageLostError:
                continue
            self._mark_resident(level, key, nbytes)
            self.promotions += 1
            metrics.inc("hierarchy.promotions")
            metrics.inc("hierarchy.promoted_bytes", nbytes)
            metrics.inc(f"hierarchy.{level.name}.level_bytes_written", nbytes)
        self._evict_over_capacity()

    # ------------------------------------------------------------------
    # Demotion (capacity eviction) and re-protection
    # ------------------------------------------------------------------
    def _held_elsewhere(self, key: str, excluding: StorageLevel) -> bool:
        return any(
            lv is not excluding and lv.backend.exists(key) for lv in self.levels
        )

    def _evict_over_capacity(self) -> None:
        metrics = self._metrics()
        for level in self.levels:
            if level.capacity_bytes is None:
                continue
            while level.resident_bytes() > level.capacity_bytes:
                victim = None
                for key in level._resident:  # oldest-first insertion order
                    if self._held_elsewhere(key, level):
                        victim = key
                        break
                if victim is None:
                    break  # nothing safely demotable; hold over capacity
                level._resident.pop(victim)
                level.backend.delete(victim)
                self.demotions += 1
                metrics.inc(f"hierarchy.{level.name}.evictions")

    def _reprotect_scan(self, level: StorageLevel) -> None:
        """Copy blobs ``level`` lost outright back from a survivor.

        A level's own repairer handles missing replicas/shards while
        the blob is still readable there; this scan covers the case the
        level cannot repair itself -- every copy it held is gone -- but
        another level still has the data.
        """
        backend = level.backend
        if hasattr(backend, "lost_keys"):
            lost = [k for k in backend.lost_keys() if k in self._directory]
        else:
            lost = [k for k in self._directory if not backend.exists(k)]
        metrics = self._metrics()
        repaired = 0
        now = self.engine.now_ns
        for key in lost:
            if repaired >= self.max_reprotect_per_scan:
                # More to do: rescan after the steady-state interval.
                self.engine.after(
                    self.reprotect_scan_ns,
                    lambda: self._reprotect_scan(level),
                    label="hier-reprotect",
                )
                break
            nbytes = self._directory[key]
            try:
                obj, read_delay = self._read_from_levels(key, now, fanout=True)
            except (StorageError, StorageLostError):
                continue  # no surviving copy anywhere: genuinely lost
            try:
                backend.delete(key)  # clear any partial shard/replica set
                backend.store(key, obj, nbytes, now + read_delay)
            except StorageLostError:
                continue
            self._mark_resident(level, key, nbytes)
            self.reprotects += 1
            repaired += 1
            metrics.inc("hierarchy.reprotects")
            metrics.inc("hierarchy.reprotected_bytes", nbytes)

    # ------------------------------------------------------------------
    # StorageBackend protocol: metadata
    # ------------------------------------------------------------------
    def open_stream(self, key: str, now_ns: int) -> "HierarchyWriteStream":
        """Open a pipelined write through every write-through level."""
        return HierarchyWriteStream(self, key, now_ns)

    def exists(self, key: str) -> bool:
        """Whether any level can currently read ``key``."""
        return key in self._directory and any(
            lv.backend.exists(key) for lv in self.levels
        )

    def peek(self, key: str) -> Any:
        """Inspect a blob without charging I/O (GC / availability)."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        for level in self.levels:
            try:
                return level.backend.peek(key)
            except (StorageError, StorageLostError):
                continue
        raise StorageLostError(f"no hierarchy level can reach {key!r}")

    def delete(self, key: str) -> None:
        """Drop the blob from every level (idempotent)."""
        self._directory.pop(key, None)
        for level in self.levels:
            level._resident.pop(key, None)
            level.backend.delete(key)

    def keys(self) -> Iterator[str]:
        """Stored blob keys, sorted."""
        return iter(sorted(self._directory))

    def stored_bytes(self) -> int:
        """Logical bytes held (one count per blob)."""
        return sum(self._directory.values())

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        return self._directory.get(key, 0)

    def physical_bytes(self) -> int:
        """Bytes on physical media across every level (replica- and
        shard-weighted where the level's backend reports it)."""
        total = 0
        for level in self.levels:
            fn = getattr(level.backend, "physical_bytes", None)
            total += fn() if fn is not None else level.backend.stored_bytes()
        return total

    def level_physical_bytes(self) -> Dict[str, int]:
        """Per-level physical bytes (the E23 per-level table)."""
        out: Dict[str, int] = {}
        for level in self.levels:
            fn = getattr(level.backend, "physical_bytes", None)
            out[level.name] = fn() if fn is not None else level.backend.stored_bytes()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "/".join(lv.name for lv in self.levels)
        return f"<HierarchicalStore {names} keys={len(self._directory)}>"


class HierarchyWriteStream:
    """A pipelined write fanned across the write-through levels.

    Each level contributes its own stream (quorum-aware for replicated
    and erasure levels); sends and the commit return the slowest
    level's delay.  Write-back levels receive their copy after the
    commit, exactly like :meth:`HierarchicalStore.store`.  A level
    whose stream cannot open (quorum unreachable) is skipped -- the
    stream fails only when no level can accept it.
    """

    def __init__(self, store: HierarchicalStore, key: str, now_ns: int) -> None:
        self.store = store
        self.key = key
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.committed = False
        self.streams: List[Tuple[StorageLevel, Any]] = []
        for level in store.levels:
            if level.write != "through":
                continue
            try:
                self.streams.append((level, level.backend.open_stream(key, now_ns)))
            except StorageLostError:
                store._metrics().inc("hierarchy.write_errors")
        if not self.streams:
            raise StorageLostError(
                f"no hierarchy level can open a write stream for {key!r}"
            )

    def send(self, nbytes: int, now_ns: int) -> int:
        """Forward one extent to every level stream; slowest wins."""
        delay = 0
        for _, stream in self.streams:
            delay = max(delay, stream.send(nbytes, now_ns))
        self.sent_bytes += int(nbytes)
        return delay

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Forward one captured chunk to every level stream."""
        delay = 0
        for _, stream in self.streams:
            delay = max(delay, stream.send_chunk(chunk, now_ns))
        self.sent_bytes += int(chunk.nbytes)
        return delay

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Commit on every level stream and publish the blob."""
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        st = self.store
        metrics = st._metrics()
        delay = 0
        for level, stream in self.streams:
            delay = max(delay, stream.commit(obj, nbytes, now_ns))
            st._mark_resident(level, self.key, nbytes)
            metrics.inc(f"hierarchy.{level.name}.writes")
            metrics.inc(f"hierarchy.{level.name}.level_bytes_written", nbytes)
        self.committed = True
        st._directory[self.key] = nbytes
        st.bytes_written += nbytes
        st._schedule_writebacks(self.key, obj, nbytes)
        st._evict_over_capacity()
        return delay
