"""Content-addressed deduplication in front of the replicated service.

Checkpoint streams are massively redundant: every generation of a
full-image mechanism rewrites mostly-identical pages, zero pages recur
across every process, and "dirty" pages often carry the same bytes they
carried last interval (a write of the same value still faults the
tracker).  The scalable C/R literature after the paper deduplicates this
redundancy at the storage tier; :class:`ContentStore` does the same for
the simulated service.

The design is manifest + pack:

* Every per-page payload of an image is fingerprinted with
  :func:`~repro.core.digest.payload_digest` (keyed by digest *and*
  length).  Payloads never seen before are batched -- all of one image's
  new payloads together -- into a single *pack* blob stored under
  ``<image key>.pack``, so dedup does not multiply quorum round-trips.
* The image itself is stored as an :class:`ImageManifest`: the metadata
  of the original :class:`~repro.core.image.CheckpointImage` (chunks
  stripped) plus an ordered list of :class:`ChunkRef` content references.
  Loading a manifest reassembles a byte-exact image from the packs it
  references.
* The store refcounts content keys across manifests.  Deleting a
  manifest (e.g. :class:`~repro.stablestore.GenerationGC` dropping a
  superseded generation) decrements them; a pack is deleted only when no
  surviving manifest references any payload homed in it.  Pack keys end
  in ``.pack`` and therefore never parse as generations, so the GC can
  only ever reach them through this refcounting path.

The wrapper is transparent: non-image blobs pass straight through, and
``keys()`` lists manifests only, so generation GC, chain walks and the
coordinator see exactly the key space they saw without dedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.digest import payload_digest
from ..core.image import CheckpointImage, Chunk
from ..storage.backends import StorageBackend

__all__ = ["ChunkRef", "ImageManifest", "ContentStore"]

#: Accounted bytes per content reference in a manifest (vma id, page,
#: offset, length, 64-bit digest).
REF_RECORD_BYTES = 32


@dataclass
class ChunkRef:
    """One per-page content reference inside a manifest."""

    vma: str
    page_index: int
    offset: int
    nbytes: int
    ckey: str


@dataclass
class ImageManifest:
    """A checkpoint image with its payload replaced by content refs."""

    key: str
    meta: CheckpointImage  # chunks stripped; metadata/registers/vmas/fds intact
    refs: List[ChunkRef]
    pack_key: Optional[str]

    @property
    def parent_key(self) -> Optional[str]:
        """Delta-chain parent (GC and availability walks read this)."""
        return self.meta.parent_key


class ContentStore(StorageBackend):
    """Content-addressed dedup wrapper around another backend.

    Parameters
    ----------
    inner:
        The backend that actually holds blobs -- typically a
        :class:`~repro.stablestore.ReplicatedStore`, so each unique
        payload costs one quorum write ever, not one per generation.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``dedup.hits`` / ``dedup.misses`` / ``dedup.bytes_saved``
        (the cluster wires its engine's registry in).
    """

    def __init__(self, inner: StorageBackend, metrics=None) -> None:
        super().__init__(device=inner.device)
        self.inner = inner
        self.metrics = metrics
        self.kind = inner.kind
        self.survives_node_failure = inner.survives_node_failure
        #: content key -> number of references across live manifests.
        self._refs: Dict[str, int] = {}
        #: content key -> pack blob that holds its payload.
        self._home: Dict[str, str] = {}
        #: pack key -> content keys packed in it.
        self._pack_members: Dict[str, List[str]] = {}
        #: pack key -> distinct referenced content keys still alive.
        self._pack_live: Dict[str, int] = {}
        #: manifest key -> the content keys it references (for delete).
        self._manifest_refs: Dict[str, List[str]] = {}
        # Dedup statistics (the E20 evidence).
        self.logical_payload_bytes = 0
        self.unique_payload_bytes = 0
        self.images_stored = 0

    # ------------------------------------------------------------------
    @property
    def dedup_ratio(self) -> float:
        """Logical payload bytes per unique payload byte written."""
        if self.unique_payload_bytes == 0:
            return 1.0
        return self.logical_payload_bytes / self.unique_payload_bytes

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        if not isinstance(obj, CheckpointImage):
            return self.inner.store(key, obj, nbytes, now_ns)
        if key in self._manifest_refs:
            # Overwrite of an existing generation: release the old refs
            # first so refcounts stay exact.
            self.delete(key)
        refs: List[ChunkRef] = []
        pack: Dict[str, np.ndarray] = {}
        logical = 0
        dedup_hits = 0
        for chunk in obj.chunks:
            for c in chunk.split_pages():
                payload = np.ascontiguousarray(c.data)
                ckey = f"{payload_digest(payload):016x}-{payload.size}"
                refs.append(
                    ChunkRef(c.vma, c.page_index, c.offset, int(payload.size), ckey)
                )
                logical += int(payload.size)
                if ckey not in self._home and ckey not in pack:
                    pack[ckey] = np.array(payload, copy=True)
                else:
                    dedup_hits += 1
        delay = 0
        pack_key: Optional[str] = None
        if pack:
            pack_key = f"{key}.pack"
            pack_bytes = int(sum(a.size for a in pack.values()))
            delay += self.inner.store(pack_key, pack, pack_bytes, now_ns)
            self.unique_payload_bytes += pack_bytes
        meta = replace(obj, chunks=[])
        manifest = ImageManifest(key=key, meta=meta, refs=refs, pack_key=pack_key)
        manifest_bytes = meta.size_bytes + REF_RECORD_BYTES * len(refs)
        delay += self.inner.store(key, manifest, manifest_bytes, now_ns + delay)
        # Commit client-side bookkeeping only after both writes landed.
        if pack_key is not None:
            self._pack_members[pack_key] = list(pack)
            self._pack_live.setdefault(pack_key, 0)
            for ckey in pack:
                self._home[ckey] = pack_key
        for r in refs:
            n = self._refs.get(r.ckey, 0)
            if n == 0:
                self._pack_live[self._home[r.ckey]] += 1
            self._refs[r.ckey] = n + 1
        self._manifest_refs[key] = [r.ckey for r in refs]
        self.logical_payload_bytes += logical
        self.images_stored += 1
        if self.metrics is not None:
            pack_bytes = int(sum(a.size for a in pack.values()))
            self.metrics.inc("dedup.hits", dedup_hits)
            self.metrics.inc("dedup.misses", len(pack))
            self.metrics.inc("dedup.bytes_saved", logical - pack_bytes)
        return delay

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        obj, delay = self.inner.load(key, now_ns)
        if not isinstance(obj, ImageManifest):
            return obj, delay
        needed = sorted({self._home[r.ckey] for r in obj.refs})
        payloads: Dict[str, np.ndarray] = {}
        for pk in needed:
            pack, d = self.inner.load(pk, now_ns + delay)
            delay += d
            payloads.update(pack)
        chunks = [
            Chunk(vma=r.vma, page_index=r.page_index, offset=r.offset, data=payloads[r.ckey])
            for r in obj.refs
        ]
        return replace(obj.meta, chunks=chunks), delay

    def exists(self, key: str) -> bool:
        """Whether the manifest *and* every pack it references are readable."""
        if not self.inner.exists(key):
            return False
        ckeys = self._manifest_refs.get(key)
        if ckeys is None:
            return True
        homes = {self._home[ck] for ck in ckeys if ck in self._home}
        return all(self.inner.exists(pk) for pk in homes)

    def peek(self, key: str) -> Any:
        """Return the manifest (carries ``parent_key`` for chain walks)."""
        return self.inner.peek(key)

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (manifest size for images)."""
        return self.inner.blob_size(key)

    def delete(self, key: str) -> None:
        """Drop a manifest; packs follow when their last reference dies."""
        ckeys = self._manifest_refs.pop(key, None)
        self.inner.delete(key)
        if ckeys is None:
            return
        for ckey in ckeys:
            n = self._refs.get(ckey, 0)
            if n > 1:
                self._refs[ckey] = n - 1
                continue
            self._refs.pop(ckey, None)
            home = self._home.get(ckey)
            if home is None:
                continue
            self._pack_live[home] -= 1
            if self._pack_live[home] <= 0:
                for member in self._pack_members.pop(home, []):
                    self._home.pop(member, None)
                    self._refs.pop(member, None)
                self._pack_live.pop(home, None)
                self.inner.delete(home)

    def keys(self) -> Iterator[str]:
        """Iterate manifest / passthrough keys (packs stay internal)."""
        return (k for k in self.inner.keys() if not k.endswith(".pack"))

    def stored_bytes(self) -> int:
        """Bytes held by the inner backend (manifests + packs)."""
        return self.inner.stored_bytes()

    def _check_available(self) -> None:
        self.inner._check_available()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ContentStore images={self.images_stored} "
            f"dedup={self.dedup_ratio:.2f}x over {self.inner!r}>"
        )
