"""Content-addressed deduplication in front of the replicated service.

Checkpoint streams are massively redundant: every generation of a
full-image mechanism rewrites mostly-identical pages, zero pages recur
across every process, and "dirty" pages often carry the same bytes they
carried last interval (a write of the same value still faults the
tracker).  The scalable C/R literature after the paper deduplicates this
redundancy at the storage tier; :class:`ContentStore` does the same for
the simulated service.

The design is manifest + pack:

* Every per-page payload of an image is fingerprinted with
  :func:`~repro.core.digest.payload_digest` (keyed by digest *and*
  length).  Payloads never seen before are batched -- all of one image's
  new payloads together -- into a single *pack* blob stored under
  ``<image key>.pack``, so dedup does not multiply quorum round-trips.
* The image itself is stored as an :class:`ImageManifest`: the metadata
  of the original :class:`~repro.core.image.CheckpointImage` (chunks
  stripped) plus an ordered list of :class:`ChunkRef` content references.
  Loading a manifest reassembles a byte-exact image from the packs it
  references.
* The store refcounts content keys across manifests.  Deleting a
  manifest (e.g. :class:`~repro.stablestore.GenerationGC` dropping a
  superseded generation) decrements them; a pack is deleted only when no
  surviving manifest references any payload homed in it.  Pack keys end
  in ``.pack`` and therefore never parse as generations, so the GC can
  only ever reach them through this refcounting path.

The wrapper is transparent: non-image blobs pass straight through, and
``keys()`` lists manifests only, so generation GC, chain walks and the
coordinator see exactly the key space they saw without dedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.digest import payload_digest
from ..core.image import CheckpointImage, Chunk
from ..errors import StorageError
from ..simkernel.engine import Completion
from ..storage.backends import StorageBackend

__all__ = ["ChunkRef", "ImageManifest", "ContentStore", "DedupWriteStream"]

#: Accounted bytes per content reference in a manifest (vma id, page,
#: offset, length, 64-bit digest).
REF_RECORD_BYTES = 32


@dataclass
class ChunkRef:
    """One per-page content reference inside a manifest."""

    vma: str
    page_index: int
    offset: int
    nbytes: int
    ckey: str


@dataclass
class ImageManifest:
    """A checkpoint image with its payload replaced by content refs."""

    key: str
    meta: CheckpointImage  # chunks stripped; metadata/registers/vmas/fds intact
    refs: List[ChunkRef]
    pack_key: Optional[str]

    @property
    def parent_key(self) -> Optional[str]:
        """Delta-chain parent (GC and availability walks read this)."""
        return self.meta.parent_key


class ContentStore(StorageBackend):
    """Content-addressed dedup wrapper around another backend.

    Parameters
    ----------
    inner:
        The backend that actually holds blobs -- typically a
        :class:`~repro.stablestore.ReplicatedStore`, so each unique
        payload costs one quorum write ever, not one per generation.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``dedup.hits`` / ``dedup.misses`` / ``dedup.bytes_saved``
        (the cluster wires its engine's registry in).
    """

    def __init__(self, inner: StorageBackend, metrics=None) -> None:
        super().__init__(device=inner.device)
        self.inner = inner
        self.metrics = metrics
        self.kind = inner.kind
        self.survives_node_failure = inner.survives_node_failure
        #: content key -> number of references across live manifests.
        self._refs: Dict[str, int] = {}
        #: content key -> pack blob that holds its payload.
        self._home: Dict[str, str] = {}
        #: pack key -> content keys packed in it.
        self._pack_members: Dict[str, List[str]] = {}
        #: pack key -> distinct referenced content keys still alive.
        self._pack_live: Dict[str, int] = {}
        #: manifest key -> the content keys it references (for delete).
        self._manifest_refs: Dict[str, List[str]] = {}
        # Dedup statistics (the E20 evidence).
        self.logical_payload_bytes = 0
        self.unique_payload_bytes = 0
        self.images_stored = 0

    # ------------------------------------------------------------------
    @property
    def dedup_ratio(self) -> float:
        """Logical payload bytes per unique payload byte written."""
        if self.unique_payload_bytes == 0:
            return 1.0
        return self.logical_payload_bytes / self.unique_payload_bytes

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        if not isinstance(obj, CheckpointImage):
            return self.inner.store(key, obj, nbytes, now_ns)
        if key in self._manifest_refs:
            # Overwrite of an existing generation: release the old refs
            # first so refcounts stay exact.
            self.delete(key)
        refs: List[ChunkRef] = []
        pack: Dict[str, np.ndarray] = {}
        logical = 0
        dedup_hits = 0
        for chunk in obj.chunks:
            for c in chunk.split_pages():
                payload = np.ascontiguousarray(c.data)
                ckey = f"{payload_digest(payload):016x}-{payload.size}"
                refs.append(
                    ChunkRef(c.vma, c.page_index, c.offset, int(payload.size), ckey)
                )
                logical += int(payload.size)
                if ckey not in self._home and ckey not in pack:
                    pack[ckey] = np.array(payload, copy=True)
                else:
                    dedup_hits += 1
        delay = 0
        pack_key: Optional[str] = None
        if pack:
            pack_key = f"{key}.pack"
            pack_bytes = int(sum(a.size for a in pack.values()))
            delay += self.inner.store(pack_key, pack, pack_bytes, now_ns)
            self.unique_payload_bytes += pack_bytes
        meta = replace(obj, chunks=[])
        manifest = ImageManifest(key=key, meta=meta, refs=refs, pack_key=pack_key)
        manifest_bytes = meta.size_bytes + REF_RECORD_BYTES * len(refs)
        delay += self.inner.store(key, manifest, manifest_bytes, now_ns + delay)
        # Commit client-side bookkeeping only after both writes landed.
        self._install_manifest(key, refs, pack, logical, dedup_hits, pack_key)
        return delay

    def _install_manifest(
        self,
        key: str,
        refs: List[ChunkRef],
        pack: Dict[str, np.ndarray],
        logical: int,
        dedup_hits: int,
        pack_key: Optional[str],
    ) -> None:
        """Client-side bookkeeping once both writes are durable (shared
        by the synchronous store and the pipelined stream commit)."""
        if pack_key is not None:
            self._pack_members[pack_key] = list(pack)
            self._pack_live.setdefault(pack_key, 0)
            for ckey in pack:
                self._home[ckey] = pack_key
        for r in refs:
            n = self._refs.get(r.ckey, 0)
            if n == 0:
                self._pack_live[self._home[r.ckey]] += 1
            self._refs[r.ckey] = n + 1
        self._manifest_refs[key] = [r.ckey for r in refs]
        self.logical_payload_bytes += logical
        self.images_stored += 1
        if self.metrics is not None:
            pack_bytes = int(sum(a.size for a in pack.values()))
            self.metrics.inc("dedup.hits", dedup_hits)
            self.metrics.inc("dedup.misses", len(pack))
            self.metrics.inc("dedup.bytes_saved", logical - pack_bytes)

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        obj, delay = self.inner.load(key, now_ns)
        if not isinstance(obj, ImageManifest):
            return obj, delay
        needed = sorted({self._home[r.ckey] for r in obj.refs})
        payloads: Dict[str, np.ndarray] = {}
        for pk in needed:
            pack, d = self.inner.load(pk, now_ns + delay)
            delay += d
            payloads.update(pack)
        return self._reassemble(obj, payloads), delay

    @staticmethod
    def _reassemble(
        manifest: ImageManifest, payloads: Dict[str, np.ndarray]
    ) -> CheckpointImage:
        chunks = [
            Chunk(vma=r.vma, page_index=r.page_index, offset=r.offset, data=payloads[r.ckey])
            for r in manifest.refs
        ]
        return replace(manifest.meta, chunks=chunks)

    # ------------------------------------------------------------------
    # Asynchronous pipeline entry points
    # ------------------------------------------------------------------
    def _engine(self):
        engine = getattr(getattr(self.inner, "storage", None), "engine", None)
        if engine is None:
            raise StorageError(
                "async pipeline requires an engine-attached inner backend "
                "(e.g. ReplicatedStore)"
            )
        return engine

    def store_async(self, key: str, obj: Any, nbytes: int, now_ns: int) -> Completion:
        """Dedup + quorum write returning a completion token (see
        :meth:`ReplicatedStore.store_async`)."""
        delay = self.store(key, obj, nbytes, now_ns)
        return self._engine().completion(delay, value=delay)

    def load_async(self, key: str, now_ns: int) -> Completion:
        """Manifest + pack fetch resolved with the reassembled image."""
        obj, delay = self.load(key, now_ns)
        return self._engine().completion(delay, value=obj)

    def load_parallel(
        self, keys, now_ns: int
    ) -> Tuple[Dict[str, Any], int]:
        """Two-round parallel chain fetch: all manifests at one instant,
        then the union of their packs at one instant.

        A serial chain walk pays ``2 x depth`` dependent round trips
        (manifest then packs, per generation); the prefetch pays two --
        the slowest manifest, then the slowest pack.
        """
        manifests, delay = self.inner.load_parallel(keys, now_ns)
        needed = sorted(
            {
                self._home[r.ckey]
                for obj in manifests.values()
                if isinstance(obj, ImageManifest)
                for r in obj.refs
            }
        )
        payloads: Dict[str, np.ndarray] = {}
        pack_delay = 0
        if needed:
            packs, pack_delay = self.inner.load_parallel(needed, now_ns + delay)
            for pk in needed:
                payloads.update(packs[pk])
        out: Dict[str, Any] = {}
        for k, obj in manifests.items():
            if isinstance(obj, ImageManifest):
                out[k] = self._reassemble(obj, payloads)
            else:
                out[k] = obj
        return out, delay + pack_delay

    def open_stream(self, key: str, now_ns: int) -> "DedupWriteStream":
        """Open a pipelined dedup write (COW drain path)."""
        return DedupWriteStream(self, key, now_ns)

    def exists(self, key: str) -> bool:
        """Whether the manifest *and* every pack it references are readable."""
        if not self.inner.exists(key):
            return False
        ckeys = self._manifest_refs.get(key)
        if ckeys is None:
            return True
        homes = {self._home[ck] for ck in ckeys if ck in self._home}
        return all(self.inner.exists(pk) for pk in homes)

    def peek(self, key: str) -> Any:
        """Return the manifest (carries ``parent_key`` for chain walks)."""
        return self.inner.peek(key)

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (manifest size for images)."""
        return self.inner.blob_size(key)

    def delete(self, key: str) -> None:
        """Drop a manifest; packs follow when their last reference dies."""
        ckeys = self._manifest_refs.pop(key, None)
        self.inner.delete(key)
        if ckeys is None:
            return
        for ckey in ckeys:
            n = self._refs.get(ckey, 0)
            if n > 1:
                self._refs[ckey] = n - 1
                continue
            self._refs.pop(ckey, None)
            home = self._home.get(ckey)
            if home is None:
                continue
            self._pack_live[home] -= 1
            if self._pack_live[home] <= 0:
                for member in self._pack_members.pop(home, []):
                    self._home.pop(member, None)
                    self._refs.pop(member, None)
                self._pack_live.pop(home, None)
                self.inner.delete(home)

    def keys(self) -> Iterator[str]:
        """Iterate manifest / passthrough keys (packs stay internal)."""
        return (k for k in self.inner.keys() if not k.endswith(".pack"))

    def stored_bytes(self) -> int:
        """Bytes held by the inner backend (manifests + packs)."""
        return self.inner.stored_bytes()

    def _check_available(self) -> None:
        self.inner._check_available()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ContentStore images={self.images_stored} "
            f"dedup={self.dedup_ratio:.2f}x over {self.inner!r}>"
        )


class DedupWriteStream:
    """An open pipelined dedup write of one image.

    Each :meth:`send_chunk` fingerprints the chunk's pages immediately
    (the drain kthread does the hashing while the app runs) and streams
    only never-seen payload bytes to the inner backend's write stream
    under the image's pack key; duplicate pages cost no wire or disk
    time at all, so a mostly-clean generation acknowledges almost
    instantly.  :meth:`commit` seals the pack, writes the manifest, and
    installs the refcount bookkeeping -- identical end state and metric
    stream to a synchronous :meth:`ContentStore.store` of the same
    image.
    """

    def __init__(self, cs: ContentStore, key: str, now_ns: int) -> None:
        if key in cs._manifest_refs:
            # Overwrite of an existing generation: release the old refs
            # first (exactly as the synchronous store does) so refcounts
            # stay exact.
            cs.delete(key)
        self.cs = cs
        self.key = key
        self.pack_key = f"{key}.pack"
        self.opened_ns = now_ns
        self.committed = False
        self._inner_stream = None
        self.refs: List[ChunkRef] = []
        self.pack: Dict[str, np.ndarray] = {}
        self.logical = 0
        self.dedup_hits = 0
        self.sent_bytes = 0  # unique payload bytes actually on the wire

    def send_chunk(self, chunk: Chunk, now_ns: int) -> int:
        """Fingerprint one extent; stream its unique bytes.  Returns the
        delay at which those bytes are quorum-durable (0 for an extent
        that dedups completely)."""
        cs = self.cs
        new_bytes = 0
        for c in chunk.split_pages():
            payload = np.ascontiguousarray(c.data)
            ckey = f"{payload_digest(payload):016x}-{payload.size}"
            self.refs.append(
                ChunkRef(c.vma, c.page_index, c.offset, int(payload.size), ckey)
            )
            self.logical += int(payload.size)
            if ckey not in cs._home and ckey not in self.pack:
                self.pack[ckey] = np.array(payload, copy=True)
                new_bytes += int(payload.size)
            else:
                self.dedup_hits += 1
        if new_bytes == 0:
            return 0
        if self._inner_stream is None:
            self._inner_stream = cs.inner.open_stream(self.pack_key, now_ns)
        self.sent_bytes += new_bytes
        return self._inner_stream.send(new_bytes, now_ns)

    def send(self, nbytes: int, now_ns: int) -> int:
        """Raw-extent sends are meaningless under dedup (payloads must be
        fingerprinted); use :meth:`send_chunk`."""
        raise StorageError("DedupWriteStream requires send_chunk (page payloads)")

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Seal the pack, write the manifest, install the bookkeeping."""
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        self.committed = True
        cs = self.cs
        if not isinstance(obj, CheckpointImage):
            # Passthrough blob (no payload was streamed): plain store.
            return cs.inner.store(self.key, obj, nbytes, now_ns)
        delay = 0
        pack_key: Optional[str] = None
        if self.pack:
            pack_key = self.pack_key
            pack_bytes = int(sum(a.size for a in self.pack.values()))
            if self._inner_stream is None:
                self._inner_stream = cs.inner.open_stream(pack_key, now_ns)
            delay += self._inner_stream.commit(self.pack, pack_bytes, now_ns)
            cs.unique_payload_bytes += pack_bytes
        meta = replace(obj, chunks=[])
        manifest = ImageManifest(
            key=self.key, meta=meta, refs=self.refs, pack_key=pack_key
        )
        manifest_bytes = meta.size_bytes + REF_RECORD_BYTES * len(self.refs)
        delay += cs.inner.store(self.key, manifest, manifest_bytes, now_ns + delay)
        cs._install_manifest(
            self.key, self.refs, self.pack, self.logical, self.dedup_hits, pack_key
        )
        return delay
