"""The bounded asynchronous writeback pipeline.

The paper's "direction forward" kernel thread forks the target for
COW consistency so the application resumes immediately -- but the seed
drain then *synchronously* pushed the whole image at stable storage:
copy everything, then sleep through the full quorum-write latency.
:class:`WritebackPipeline` overlaps the two.  The drain copies one
extent, hands it to the pipeline (which forwards it over the replica
write stream and schedules its quorum acknowledgement as an engine
completion event), and immediately copies the next extent while the
bytes are on the wire.  A bounded in-flight window provides
backpressure: when ``depth`` extents are unacknowledged the drain
sleeps exactly until the earliest outstanding ack -- the device model
precomputes every completion instant, so backpressure is deterministic
and poll-free.

The commit barrier is the only full synchronization point: the caller
waits for every outstanding extent, then commits the manifest through
the stream, which is when the image becomes visible (a crash mid-drain
publishes nothing).

Observability (all on the engine's registry / tracer):

* ``pipeline.extents`` / ``pipeline.bytes`` -- extents and payload
  bytes submitted.
* ``pipeline.inflight`` -- histogram of window occupancy at submit
  (``DEPTH_BUCKETS``).
* ``pipeline.stalls`` / ``pipeline.stall_ns`` -- backpressure events
  and the virtual time the drain slept for a window slot.
* ``pipeline.barrier_ns`` -- time spent in the commit barrier.
* a ``pipeline.drain`` span covering open -> commit.
"""

from __future__ import annotations

import heapq
from typing import Any, List

from ..simkernel.engine import Completion, Engine
from ..storage.backends import StorageBackend

__all__ = ["WritebackPipeline"]


class WritebackPipeline:
    """Bounded-window asynchronous writeback of captured extents.

    Parameters
    ----------
    storage:
        Backend to stream into; any :class:`StorageBackend` works, the
        interesting ones are :class:`~repro.stablestore.ReplicatedStore`
        (quorum acks per extent) and :class:`~repro.stablestore.
        ContentStore` (duplicate extents ack instantly).
    engine:
        The simulation clock; acks become anonymous timer-wheel events.
    key:
        Image key the stream commits under.
    depth:
        In-flight window: extents submitted but not yet quorum-acked.
        ``depth=1`` degenerates to stop-and-wait (callers should use the
        plain synchronous path instead -- it is bit-compatible and
        cheaper to simulate).
    """

    def __init__(
        self,
        storage: StorageBackend,
        engine: Engine,
        key: str,
        depth: int = 4,
    ) -> None:
        self.engine = engine
        self.key = key
        self.depth = max(1, int(depth))
        self.stream = storage.open_stream(key, engine.now_ns)
        #: Min-heap of absolute ack instants of unacknowledged extents.
        self._acks: List[int] = []
        #: Latest ack instant ever scheduled (the commit barrier target).
        self.last_ack_ns = engine.now_ns
        self.extents = 0
        self.bytes = 0
        self.stalls = 0
        self.stall_ns = 0
        self.barrier_waits_ns = 0
        self._span = engine.tracer.start_span(
            "pipeline.drain", key=key, depth=self.depth
        )
        self._committed = False

    # ------------------------------------------------------------------
    def _reap(self, now_ns: int) -> None:
        while self._acks and self._acks[0] <= now_ns:
            heapq.heappop(self._acks)

    @property
    def inflight(self) -> int:
        """Extents submitted but not yet acknowledged at the current time."""
        self._reap(self.engine.now_ns)
        return len(self._acks)

    @property
    def full(self) -> bool:
        """Whether the bounded window has no free slot right now."""
        return self.inflight >= self.depth

    def ns_until_slot(self) -> int:
        """Virtual time until a window slot frees (0 when one is free).

        When positive, the caller must sleep exactly that long before
        :meth:`submit` -- the stall is recorded as backpressure.
        """
        now = self.engine.now_ns
        self._reap(now)
        if len(self._acks) < self.depth:
            return 0
        stall = self._acks[0] - now
        self.stalls += 1
        self.stall_ns += stall
        metrics = self.engine.metrics
        metrics.inc("pipeline.stalls")
        metrics.inc("pipeline.stall_ns", stall)
        return stall

    def submit(self, chunk: Any) -> Completion:
        """Queue one captured extent; returns its ack completion token.

        The extent's bytes are forwarded through the write stream now
        (the device model queues them behind everything already on the
        link); the returned token resolves at the extent's quorum-ack
        instant via an engine event.  The caller must have honoured
        :meth:`ns_until_slot` -- the window is a contract, not a check.
        """
        now = self.engine.now_ns
        self._reap(now)  # drop acks that landed during the caller's sleep
        delay = self.stream.send_chunk(chunk, now)
        ack_ns = now + delay
        heapq.heappush(self._acks, ack_ns)
        if ack_ns > self.last_ack_ns:
            self.last_ack_ns = ack_ns
        self.extents += 1
        self.bytes += int(chunk.nbytes)
        metrics = self.engine.metrics
        metrics.inc("pipeline.extents")
        metrics.inc("pipeline.bytes", int(chunk.nbytes))
        metrics.observe("pipeline.inflight", len(self._acks))
        return self.engine.completion(delay, value=ack_ns)

    def barrier_ns(self) -> int:
        """Virtual time until every outstanding extent is acknowledged.

        The commit barrier: the caller sleeps this long, after which
        :meth:`commit` may run with zero unacknowledged extents.
        """
        wait = max(0, self.last_ack_ns - self.engine.now_ns)
        if wait:
            self.barrier_waits_ns += wait
            self.engine.metrics.inc("pipeline.barrier_ns", wait)
        return wait

    def commit(self, obj: Any, nbytes: int) -> int:
        """Commit the finished image through the stream.

        Returns the metadata-slice delay (the payload already travelled
        extent by extent).  Closes the drain span with the overlap
        evidence: total extents, stall time, barrier time.
        """
        delay = self.stream.commit(obj, nbytes, self.engine.now_ns)
        self._committed = True
        self._span.end(
            state="committed",
            extents=self.extents,
            bytes=self.bytes,
            stalls=self.stalls,
            stall_ns=self.stall_ns,
            barrier_ns=self.barrier_waits_ns,
        )
        return delay

    def abort(self, reason: str) -> None:
        """Close the span without committing (failed drain)."""
        if not self._committed:
            self._committed = True
            self._span.end(state="aborted", error=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WritebackPipeline {self.key!r} depth={self.depth} "
            f"extents={self.extents} inflight={len(self._acks)}>"
        )
