"""Reed-Solomon k+m erasure-coded stable storage.

Replication multiplies every checkpoint byte by the replica count; the
post-paper petascale C/R systems (and the OpenCHK multi-level work)
instead stripe each blob into ``k`` data shards plus ``m`` parity
shards, so any ``k`` of the ``k+m`` shards reconstruct the blob while
the physical overhead is only ``(k+m)/k`` -- rf=3 durability at half
the bytes for a 4+2 code.

Two layers live here:

* A pure-python (NumPy-vectorized) systematic Reed-Solomon codec over
  GF(2^8): :func:`rs_encode`, :func:`rs_decode`,
  :func:`rs_rebuild_shard`.  Parity rows come from a Cauchy matrix, so
  every k-subset of the ``k+m`` generator rows is invertible -- the MDS
  property the "any k of k+m" guarantee rests on.
* :class:`ErasureStore` -- a peer of
  :class:`~repro.stablestore.ReplicatedStore` behind the same
  :class:`~repro.storage.backends.StorageBackend` protocol (including
  the pipelined :class:`ErasureWriteStream`), placing the ``k+m``
  shards on distinct storage servers by rendezvous hashing.  Reads
  gather any ``k`` live shards in parallel (data shards preferred;
  parity involvement is a *degraded read*), and
  :class:`ErasureRepairer` re-encodes lost shards in the background on
  :class:`~repro.stablestore.ReplicationRepairer`'s scan cadence.

Bytes-like blobs (``bytes``/``bytearray``/``memoryview`` and uint8
NumPy arrays) are striped through the real codec, so a degraded read
genuinely reconstructs the payload from shard bytes.  Other simulation
objects (checkpoint images carry live workload references that must
not be copied) are sharded *opaquely*: the accounting, placement and
the k-of-k+m availability rule are identical, but reconstruction hands
back the object reference instead of re-decoding serialized bytes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageError, StorageLostError
from ..simkernel.costs import NS_PER_MS, NS_PER_US
from ..simkernel.engine import Completion
from ..storage.backends import StorageBackend, StorageKind
from .repair import ReplicationRepairer
from .server import StorageCluster, StorageServer

__all__ = [
    "rs_encode",
    "rs_decode",
    "rs_rebuild_shard",
    "Shard",
    "ErasureStore",
    "ErasureWriteStream",
    "ErasureRepairer",
]


# ----------------------------------------------------------------------
# GF(2^8) arithmetic (primitive polynomial x^8+x^4+x^3+x^2+1 = 0x11d)
# ----------------------------------------------------------------------
def _build_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    exp[255:510] = exp[:255]
    # Full 256x256 product table: mul[a, b] = a*b in GF(2^8).  64 KiB
    # once at import buys branch-free vectorized coding below.
    la = log[:, None] + log[None, :]
    mul = exp[la]
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


_GF_EXP, _GF_LOG, _GF_MUL = _build_tables()


def _gf_inv(a: int) -> int:
    if a == 0:
        raise StorageError("GF(2^8) zero has no inverse")
    return int(_GF_EXP[255 - _GF_LOG[a]])


def _cauchy_rows(k: int, m: int) -> np.ndarray:
    """The m x k parity block: C[i][j] = 1/(x_i + y_j) with distinct
    x_i = i and y_j = m + j.  Every square submatrix of a Cauchy matrix
    is nonsingular, which makes [I_k ; C] an MDS generator."""
    rows = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            rows[i, j] = _gf_inv(i ^ (m + j))
    return rows


def _gf_matmul(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """(r x k) GF matrix times (k x L) byte rows -> (r x L) byte rows."""
    out = np.zeros((matrix.shape[0], rows.shape[1]), dtype=np.uint8)
    for i in range(matrix.shape[0]):
        acc = out[i]
        for j in range(matrix.shape[1]):
            c = int(matrix[i, j])
            if c:
                acc ^= _GF_MUL[c][rows[j]]
    return out


def _gf_invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a k x k matrix over GF(2^8) by Gauss-Jordan."""
    k = matrix.shape[0]
    a = matrix.astype(np.uint8).copy()
    inv = np.eye(k, dtype=np.uint8)
    for col in range(k):
        pivot = next((r for r in range(col, k) if a[r, col]), None)
        if pivot is None:
            raise StorageError("singular shard matrix (duplicate shard indices?)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        piv_inv = _gf_inv(int(a[col, col]))
        a[col] = _GF_MUL[piv_inv][a[col]]
        inv[col] = _GF_MUL[piv_inv][inv[col]]
        for r in range(k):
            if r != col and a[r, col]:
                c = int(a[r, col])
                a[r] ^= _GF_MUL[c][a[col]]
                inv[r] ^= _GF_MUL[c][inv[col]]
    return inv


def _check_km(k: int, m: int) -> None:
    if k < 1 or m < 1:
        raise StorageError(f"erasure code needs k >= 1 and m >= 1 (got {k}+{m})")
    if k + m > 256:
        raise StorageError(f"GF(2^8) code supports k+m <= 256 (got {k + m})")


def rs_encode(payload: bytes, k: int, m: int) -> List[bytes]:
    """Stripe ``payload`` into ``k`` data + ``m`` parity shards.

    The code is systematic: shards ``0..k-1`` are the (zero-padded)
    payload slices, shards ``k..k+m-1`` are Cauchy parity.  Every shard
    is ``ceil(len(payload)/k)`` bytes.
    """
    _check_km(k, m)
    shard_len = -(-len(payload) // k)
    data = np.zeros((k, shard_len), dtype=np.uint8)
    if len(payload):
        flat = np.frombuffer(payload, dtype=np.uint8)
        data.reshape(-1)[: len(payload)] = flat
    parity = _gf_matmul(_cauchy_rows(k, m), data)
    return [data[i].tobytes() for i in range(k)] + [
        parity[i].tobytes() for i in range(m)
    ]


def rs_decode(
    shards: Mapping[int, bytes], k: int, m: int, payload_len: int
) -> bytes:
    """Reconstruct the original payload from any ``k`` of ``k+m`` shards.

    ``shards`` maps shard index -> shard bytes; indices ``>= k`` are
    parity.  Raises :class:`~repro.errors.StorageError` when fewer than
    ``k`` shards are supplied.
    """
    _check_km(k, m)
    if len(shards) < k:
        raise StorageError(
            f"need {k} shards to reconstruct, have {len(shards)}"
        )
    have = sorted(shards)[:k]
    shard_len = -(-payload_len // k)
    if have == list(range(k)):
        # All data shards present: plain systematic concatenation.
        data = np.concatenate(
            [np.frombuffer(shards[i], dtype=np.uint8) for i in range(k)]
        ) if k > 1 else np.frombuffer(shards[0], dtype=np.uint8)
        return data.tobytes()[:payload_len]
    cauchy = _cauchy_rows(k, m)
    matrix = np.zeros((k, k), dtype=np.uint8)
    stacked = np.zeros((k, shard_len), dtype=np.uint8)
    for row, idx in enumerate(have):
        if idx < k:
            matrix[row, idx] = 1
        else:
            matrix[row] = cauchy[idx - k]
        buf = np.frombuffer(shards[idx], dtype=np.uint8)
        if buf.shape[0] != shard_len:
            raise StorageError(
                f"shard {idx} is {buf.shape[0]} bytes, expected {shard_len}"
            )
        stacked[row] = buf
    data = _gf_matmul(_gf_invert(matrix), stacked)
    return data.reshape(-1).tobytes()[:payload_len]


def rs_rebuild_shard(
    shards: Mapping[int, bytes], k: int, m: int, index: int, payload_len: int
) -> bytes:
    """Re-encode one lost shard (data or parity) from any ``k`` others."""
    _check_km(k, m)
    if not 0 <= index < k + m:
        raise StorageError(f"shard index {index} outside 0..{k + m - 1}")
    payload = rs_decode(shards, k, m, k * (-(-payload_len // k)))
    return rs_encode(payload, k, m)[index]


# ----------------------------------------------------------------------
# The erasure-coded storage client
# ----------------------------------------------------------------------
@dataclass
class Shard:
    """One stored shard of an erasure-coded blob."""

    index: int
    k: int
    m: int
    #: Coded shard bytes for bytes-like blobs; None for opaque objects.
    payload: Optional[bytes]
    #: Serialized payload length ("bytes"/"u8" kinds) for truncation.
    payload_len: int
    #: "bytes", "u8" (uint8 ndarray) or "opaque".
    payload_kind: str
    #: The object reference for opaque (non-bytes-like) blobs.
    obj: Any = None


def _score(key: str, server_id: int) -> int:
    return zlib.crc32(f"{key}|{server_id}".encode())


#: Server-side key suffix for shard entries.  An ErasureStore may share
#: a StorageCluster with a ReplicatedStore (one failure domain, two
#: redundancy schemes); namespacing keeps a blob's shards from
#: clobbering its whole-object replicas under the same key.
_SHARD_SUFFIX = "#ec"


def _skey(key: str) -> str:
    return key + _SHARD_SUFFIX


def _payload_of(obj: Any) -> Tuple[Optional[bytes], str]:
    """Canonical byte payload of a blob, or (None, "opaque")."""
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return bytes(obj), "bytes"
    if isinstance(obj, np.ndarray) and obj.dtype == np.uint8 and obj.ndim == 1:
        return obj.tobytes(), "u8"
    return None, "opaque"


class ErasureStore(StorageBackend):
    """k+m Reed-Solomon striping over N storage servers.

    A peer of :class:`~repro.stablestore.ReplicatedStore`: same
    rendezvous placement, same sloppy walk past failed servers (each
    costs ``timeout + backoff``), same
    :class:`~repro.errors.StorageLostError` contract -- but each blob
    becomes ``k+m`` shards of ``ceil(nbytes/k)`` accounted bytes on
    ``k+m`` distinct servers, any ``k`` of which reconstruct it.

    Parameters
    ----------
    storage:
        The :class:`StorageCluster` holding servers and the shared link.
    data_shards / parity_shards:
        The code: ``k`` data plus ``m`` parity shards per blob.
    write_shards:
        Shards that must be durable before a write returns; defaults to
        the full stripe ``k+m`` (anything less leaves freshly written
        blobs below full failure tolerance until the repairer catches
        up). Must be at least ``k``.
    """

    kind = StorageKind.REMOTE
    survives_node_failure = True

    def __init__(
        self,
        storage: StorageCluster,
        data_shards: int = 4,
        parity_shards: int = 2,
        write_shards: Optional[int] = None,
        timeout_ns: int = 2 * NS_PER_MS,
        backoff_base_ns: int = 500 * NS_PER_US,
        backoff_factor: float = 2.0,
        backoff_cap_ns: int = 16 * NS_PER_MS,
    ) -> None:
        _check_km(data_shards, parity_shards)
        n = len(storage.servers)
        if data_shards + parity_shards > n:
            raise StorageError(
                f"{data_shards}+{parity_shards} code needs at least "
                f"{data_shards + parity_shards} servers, cluster has {n}"
            )
        super().__init__(device=storage.link)
        self.storage = storage
        self.k = data_shards
        self.m = parity_shards
        self.write_shards = (
            write_shards if write_shards is not None else data_shards + parity_shards
        )
        if not self.k <= self.write_shards <= self.k + self.m:
            raise StorageError(
                f"write_shards {self.write_shards} not in "
                f"{self.k}..{self.k + self.m}"
            )
        self.timeout_ns = int(timeout_ns)
        self.backoff_base_ns = int(backoff_base_ns)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_ns = int(backoff_cap_ns)
        #: key -> accounted nbytes of every accepted blob.
        self._directory: Dict[str, int] = {}
        # Quorum/retry statistics, mirroring ReplicatedStore's.
        self.write_retries = 0
        self.read_retries = 0
        self.backoff_ns_total = 0
        self.quorum_write_failures = 0
        self.quorum_read_failures = 0
        self.degraded_reads = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_size(self, nbytes: int) -> int:
        """Accounted bytes of one shard of an ``nbytes`` blob."""
        return -(-int(nbytes) // self.k)

    def candidates(self, key: str) -> List[StorageServer]:
        """All servers in rendezvous-preference order for ``key``."""
        return sorted(
            self.storage.servers,
            key=lambda s: (_score(key, s.server_id), s.server_id),
            reverse=True,
        )

    def shard_holders(self, key: str, up_only: bool = True) -> Dict[int, StorageServer]:
        """shard index -> holding server (reachable only, by default)."""
        skey = _skey(key)
        out: Dict[int, StorageServer] = {}
        for server in self.candidates(key):
            if not server.holds(skey):
                continue
            if up_only and not server.up:
                continue
            shard = server.replicas[skey][0]
            if isinstance(shard, Shard) and shard.index not in out:
                out[shard.index] = server
        return out

    def shard_count(self, key: str) -> int:
        """Distinct live shards of ``key``."""
        return len(self.shard_holders(key))

    def under_replicated(self) -> List[str]:
        """Keys that are readable but missing shards (repairable)."""
        full = self.k + self.m
        return [
            k
            for k in sorted(self._directory)
            if self.k <= self.shard_count(k) < full
        ]

    def lost_keys(self) -> List[str]:
        """Keys with fewer than ``k`` live shards (currently lost)."""
        return [
            k for k in sorted(self._directory) if self.shard_count(k) < self.k
        ]

    # ------------------------------------------------------------------
    # Coding helpers
    # ------------------------------------------------------------------
    def _encode(self, obj: Any) -> List[Shard]:
        payload, kind = _payload_of(obj)
        if payload is None:
            return [
                Shard(i, self.k, self.m, None, 0, "opaque", obj)
                for i in range(self.k + self.m)
            ]
        coded = rs_encode(payload, self.k, self.m)
        return [
            Shard(i, self.k, self.m, coded[i], len(payload), kind)
            for i in range(self.k + self.m)
        ]

    def _reconstruct(self, key: str, shards: Dict[int, Shard]) -> Any:
        first = next(iter(shards.values()))
        if first.payload_kind == "opaque":
            return first.obj
        payload = rs_decode(
            {i: s.payload for i, s in shards.items()},
            self.k,
            self.m,
            first.payload_len,
        )
        if first.payload_kind == "u8":
            return np.frombuffer(payload, dtype=np.uint8).copy()
        return payload

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Stripe ``obj`` onto ``k+m`` distinct servers.

        Returns the client-visible delay: the retry-walk penalty plus
        the instant the ``write_shards``-th shard is durable.
        """
        metrics = self.storage.engine.metrics
        snb = self.shard_size(nbytes)
        shards = self._encode(obj)
        placed: List[Tuple[StorageServer, Shard, int]] = []
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(placed) >= self.k + self.m:
                break
            if not server.up:
                penalty += self.timeout_ns + backoff
                self.write_retries += 1
                metrics.inc("storage.write_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            link_delay = self.device.submit(start, snb)
            disk_delay = server.disk.submit(start + link_delay, snb)
            placed.append((server, shards[len(placed)], penalty + link_delay + disk_delay))
        if len(placed) < self.write_shards:
            self.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum unreachable for {key!r}: "
                f"{len(placed)} of {self.write_shards} required shards placed "
                f"({len(self.storage.up_servers())}/{len(self.storage.servers)} "
                f"servers up)"
            )
        for server, shard, _ in placed:
            server.put_replica(_skey(key), shard, snb)
        self._directory[key] = nbytes
        self.bytes_written += snb * len(placed)
        delay = sorted(d for _, _, d in placed)[self.write_shards - 1]
        metrics.inc("storage.erasure_writes")
        metrics.inc("storage.shard_bytes_written", snb * len(placed))
        metrics.observe("storage.write_ns", delay)
        return delay

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Gather any ``k`` live shards in parallel and reconstruct.

        Data shards are preferred; any parity involvement counts as a
        *degraded read* (the decode matrix must be inverted).  All
        ``k`` shard fetches are issued at ``now_ns`` -- shards live on
        distinct disks, so the delay is the slowest fetch, not the sum.
        """
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self.storage.engine.metrics
        nbytes = self._directory[key]
        snb = self.shard_size(nbytes)
        holders = self.shard_holders(key)
        if len(holders) < self.k:
            self.quorum_read_failures += 1
            metrics.inc("storage.quorum_read_failures")
            raise StorageLostError(
                f"erasure read failed for {key!r}: {len(holders)} live "
                f"shards, {self.k} required"
            )
        chosen = sorted(holders)[: self.k]
        gathered: Dict[int, Shard] = {}
        worst = 0
        for idx in chosen:
            server = holders[idx]
            disk_delay = server.disk.submit(now_ns, snb)
            link_delay = self.device.submit(now_ns + disk_delay, snb)
            worst = max(worst, disk_delay + link_delay)
            server.bytes_read += snb
            gathered[idx] = server.replicas[_skey(key)][0]
        degraded = any(i >= self.k for i in chosen)
        if degraded:
            self.degraded_reads += 1
            metrics.inc("storage.degraded_reads")
        obj = self._reconstruct(key, gathered)
        self.bytes_read += nbytes
        metrics.inc("storage.erasure_reads")
        metrics.observe("storage.read_ns", worst)
        return obj, worst

    def load_fanout(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Erasure reads are already a parallel shard fan-in."""
        return self.load(key, now_ns)

    def store_async(self, key: str, obj: Any, nbytes: int, now_ns: int) -> Completion:
        """Striped write as an engine completion (writeback pipeline)."""
        delay = self.store(key, obj, nbytes, now_ns)
        self.storage.engine.metrics.inc("storage.async_writes")
        return self.storage.engine.completion(delay, value=delay)

    def load_async(self, key: str, now_ns: int) -> Completion:
        """Shard gather as an engine completion (restore prefetch)."""
        obj, delay = self.load(key, now_ns)
        self.storage.engine.metrics.inc("storage.async_reads")
        return self.storage.engine.completion(delay, value=obj)

    def load_parallel(self, keys, now_ns: int) -> Tuple[Dict[str, Any], int]:
        """Prefetch several blobs issued at one instant (chain restore)."""
        objs: Dict[str, Any] = {}
        worst = 0
        for key in keys:
            obj, delay = self.load(key, now_ns)
            objs[key] = obj
            worst = max(worst, delay)
        return objs, worst

    def open_stream(self, key: str, now_ns: int) -> "ErasureWriteStream":
        """Open a pipelined multi-extent striped write (COW drain path)."""
        return ErasureWriteStream(self, key, now_ns)

    def exists(self, key: str) -> bool:
        """Whether a read of ``key`` would currently succeed."""
        return key in self._directory and self.shard_count(key) >= self.k

    def peek(self, key: str) -> Any:
        """Inspect a blob without charging I/O (GC / availability checks)."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        holders = self.shard_holders(key)
        if len(holders) < self.k:
            raise StorageLostError(
                f"fewer than {self.k} reachable shards of {key!r}"
            )
        gathered = {
            i: holders[i].replicas[_skey(key)][0] for i in sorted(holders)[: self.k]
        }
        return self._reconstruct(key, gathered)

    def delete(self, key: str) -> None:
        """Drop every shard (idempotent)."""
        self._directory.pop(key, None)
        for server in self.storage.servers:
            server.drop_replica(_skey(key))

    def keys(self) -> Iterator[str]:
        """Stored blob keys, sorted."""
        return iter(sorted(self._directory))

    def stored_bytes(self) -> int:
        """Logical bytes held (one count per blob)."""
        return sum(self._directory.values())

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        return self._directory.get(key, 0)

    def physical_bytes(self) -> int:
        """Shard bytes actually on server disks (~ (k+m)/k per logical).

        Counts only this store's shard entries, so the figure stays
        honest when the cluster is shared with a ReplicatedStore.
        """
        return sum(
            rn
            for s in self.storage.servers
            for rkey, (_o, rn) in s.replicas.items()
            if rkey.endswith(_SHARD_SUFFIX)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ErasureStore {self.k}+{self.m} "
            f"keys={len(self._directory)}>"
        )


class ErasureWriteStream:
    """An open pipelined striped write of one blob.

    Mirrors :class:`~repro.stablestore.ReplicaWriteStream`: opening
    performs the rendezvous retry walk once and pins ``k+m`` servers
    (one shard index each); each :meth:`send` forwards one extent's
    worth of shard slices (``ceil(nbytes/k)`` per pinned server) over
    the shared link and onto the pinned disks; :meth:`commit` encodes
    the finished object, charges the remainder, installs the shards and
    the directory entry.  The blob is visible only at commit, so a
    crash mid-stream never publishes a torn stripe.  If pinned servers
    fail mid-stream and fewer than ``write_shards`` remain, the next
    send/commit raises :class:`~repro.errors.StorageLostError`.
    """

    def __init__(self, store: ErasureStore, key: str, now_ns: int) -> None:
        self.store = store
        self.key = key
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.sent_shard_bytes = 0
        self.committed = False
        metrics = store.storage.engine.metrics
        pinned: List[StorageServer] = []
        penalty = 0
        backoff = store.backoff_base_ns
        for server in store.candidates(key):
            if len(pinned) >= store.k + store.m:
                break
            if not server.up:
                penalty += store.timeout_ns + backoff
                store.write_retries += 1
                metrics.inc("storage.write_retries")
                store.backoff_ns_total += backoff
                backoff = min(int(backoff * store.backoff_factor), store.backoff_cap_ns)
                continue
            pinned.append(server)
        if len(pinned) < store.write_shards:
            store.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum unreachable for {key!r}: "
                f"{len(pinned)} of {store.write_shards} required shard "
                f"servers reachable"
            )
        #: shard index -> pinned server, assigned at open time.
        self.servers: Dict[int, StorageServer] = dict(enumerate(pinned))
        self.open_penalty_ns = penalty

    def _live_servers(self) -> Dict[int, StorageServer]:
        live = {i: s for i, s in self.servers.items() if s.up}
        if len(live) < self.store.write_shards:
            self.store.quorum_write_failures += 1
            self.store.storage.engine.metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum lost mid-stream for {self.key!r}: "
                f"{len(live)} of {self.store.write_shards} pinned shard "
                f"servers up"
            )
        return live

    def send(self, nbytes: int, now_ns: int) -> int:
        """Forward one extent's shard slices to every live pinned
        server; returns the delay at which the ``write_shards``-th
        slice is durable."""
        live = self._live_servers()
        snb = self.store.shard_size(nbytes)
        delays: List[int] = []
        for server in live.values():
            link_delay = self.store.device.submit(now_ns, snb)
            disk_delay = server.disk.submit(now_ns + link_delay, snb)
            delays.append(link_delay + disk_delay)
        self.sent_bytes += int(nbytes)
        self.sent_shard_bytes += snb
        delays.sort()
        return delays[min(self.store.write_shards, len(live)) - 1]

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Queue one captured chunk (dedup-aware streams override)."""
        return self.send(int(chunk.nbytes), now_ns)

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Encode the finished object, charge the shard remainders and
        make the blob visible.  Total traffic matches a monolithic
        :meth:`ErasureStore.store` of the same image."""
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        st = self.store
        live = self._live_servers()
        snb = st.shard_size(nbytes)
        remainder = max(0, snb - self.sent_shard_bytes)
        shards = st._encode(obj)
        delays: List[int] = []
        for idx, server in live.items():
            link_delay = st.device.submit(now_ns, remainder)
            disk_delay = server.disk.submit(now_ns + link_delay, remainder)
            delays.append(link_delay + disk_delay)
            server.put_replica(_skey(self.key), shards[idx], snb)
        self.committed = True
        st._directory[self.key] = nbytes
        st.bytes_written += snb * len(live)
        delays.sort()
        delay = delays[min(st.write_shards, len(live)) - 1]
        metrics = st.storage.engine.metrics
        metrics.inc("storage.erasure_writes")
        metrics.inc("storage.shard_bytes_written", snb * len(live))
        metrics.observe("storage.write_ns", delay)
        return delay


class ErasureRepairer(ReplicationRepairer):
    """Background re-encode of lost shards after server failures.

    Inherits :class:`ReplicationRepairer`'s cadence -- failure-detect
    scan after ``detect_delay_ns``, steady-state scan every
    ``scan_interval_ns``, at most ``max_repairs_per_scan`` in-flight
    keys -- but a repair reads ``k`` surviving shards (k source disks
    and k link crossings), re-encodes the missing shard, and writes it
    to a server that holds none of the blob's shards.
    """

    def _start_repair(self, key: str) -> bool:
        store = self.store
        holders = store.shard_holders(key)
        if len(holders) < store.k:
            return False  # unreadable: nothing to re-encode from
        present = set(holders)
        missing = [i for i in range(store.k + store.m) if i not in present]
        if not missing:
            return False
        with_shards = {s.server_id for s in holders.values()}
        skey = _skey(key)
        dest = next(
            (
                s
                for s in store.candidates(key)
                if s.up and not s.holds(skey) and s.server_id not in with_shards
            ),
            None,
        )
        if dest is None:
            return False  # nowhere to put a re-encoded shard
        idx = missing[0]
        snb = store.shard_size(store._directory[key])
        now = self.engine.now_ns
        sources = [holders[i] for i in sorted(holders)[: store.k]]
        gathered = {
            i: holders[i].replicas[skey][0] for i in sorted(holders)[: store.k]
        }
        # k parallel source reads fan in over the shared link, then the
        # re-encoded shard is written to the destination disk.
        read_worst = 0
        for src in sources:
            d = src.disk.submit(now, snb)
            d += store.device.submit(now + d, snb)
            src.bytes_read += snb
            read_worst = max(read_worst, d)
        delay = read_worst
        delay += store.device.submit(now + delay, snb)
        delay += dest.disk.submit(now + delay, snb)
        shard = self._rebuild(gathered, idx)
        self._inflight.add(key)
        self.engine.after(
            delay,
            lambda: self._finish_shard(key, dest, shard, snb, begun_ns=now),
            label="shard-repair",
        )
        return True

    def _rebuild(self, gathered: Dict[int, Shard], index: int) -> Shard:
        first = next(iter(gathered.values()))
        if first.payload_kind == "opaque":
            return Shard(
                index, first.k, first.m, None, 0, "opaque", first.obj
            )
        payload = rs_rebuild_shard(
            {i: s.payload for i, s in gathered.items()},
            first.k,
            first.m,
            index,
            first.payload_len,
        )
        return Shard(
            index, first.k, first.m, payload, first.payload_len, first.payload_kind
        )

    def _finish_shard(
        self, key: str, dest, shard: Shard, snb: int, begun_ns: int = 0
    ) -> None:
        self._inflight.discard(key)
        if key not in self.store._directory:
            return  # deleted (GC'd) while the repair was in flight
        if not dest.up:
            return  # destination died mid-repair; a later scan retries
        if shard.index in self.store.shard_holders(key):
            return  # another path already restored this shard
        dest.put_replica(_skey(key), shard, snb)
        self.repairs_completed += 1
        self.bytes_rereplicated += snb
        self.engine.count("shard_repairs")
        self.engine.metrics.inc("storage.shard_repair_bytes", snb)
        self.engine.tracer.record(
            "storage.shard_repair",
            begun_ns,
            self.engine.now_ns,
            key=key,
            dest=dest.server_id,
            shard=shard.index,
            nbytes=snb,
        )
