"""Reed-Solomon k+m erasure-coded stable storage.

Replication multiplies every checkpoint byte by the replica count; the
post-paper petascale C/R systems (and the OpenCHK multi-level work)
instead stripe each blob into ``k`` data shards plus ``m`` parity
shards, so any ``k`` of the ``k+m`` shards reconstruct the blob while
the physical overhead is only ``(k+m)/k`` -- rf=3 durability at half
the bytes for a 4+2 code.

Two layers live here:

* A pure-python (NumPy-vectorized) systematic Reed-Solomon codec over
  GF(2^8): :func:`rs_encode`, :func:`rs_decode`,
  :func:`rs_update_parity`, :func:`rs_rebuild_shards`.  Parity rows
  come from a Cauchy matrix, so every k-subset of the ``k+m`` generator
  rows is invertible -- the MDS property the "any k of k+m" guarantee
  rests on.  The hot loops run through *pair-packed product tables*
  (see :func:`_packed_tables`): one 65536-entry gather per input row
  computes all parity rows for two payload bytes at once, which is what
  lifts encode from ~160 MB/s (per-coefficient row gathers) past
  800 MB/s.  Generator matrices, packed tables and the Gauss-Jordan
  decode inverses are all memoized, and long stripes are encoded in
  bounded column chunks so the working set stays cache-resident
  (wall-clock only -- virtual-time charges never depend on kernel
  internals).
* :class:`ErasureStore` -- a peer of
  :class:`~repro.stablestore.ReplicatedStore` behind the same
  :class:`~repro.storage.backends.StorageBackend` protocol (including
  the pipelined :class:`ErasureWriteStream` and the dirty-delta
  :class:`DeltaWriteStream`), placing the ``k+m`` shards on distinct
  storage servers by rendezvous hashing.  Reads gather any ``k`` live
  shards in parallel (data shards preferred; parity involvement is a
  *degraded read*), :meth:`ErasureStore.store_delta` re-protects an
  f-dirty update at O(f) cost by exploiting GF linearity
  (``parity' = parity xor G . delta``), and :class:`ErasureRepairer`
  re-encodes lost shards in the background on
  :class:`~repro.stablestore.ReplicationRepairer`'s scan cadence --
  several missing shards of one key are rebuilt from a single decode
  pass.

Bytes-like blobs (``bytes``/``bytearray``/``memoryview`` and uint8
NumPy arrays) are striped through the real codec, so a degraded read
genuinely reconstructs the payload from shard bytes.  Other simulation
objects (checkpoint images carry live workload references that must
not be copied) are sharded *opaquely*: the accounting, placement and
the k-of-k+m availability rule are identical, but reconstruction hands
back the object reference instead of re-decoding serialized bytes.
"""

from __future__ import annotations

import functools
import sys
import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import StorageError, StorageLostError
from ..simkernel.costs import NS_PER_MS, NS_PER_US
from ..simkernel.engine import Completion
from ..storage.backends import StorageBackend, StorageKind
from .repair import ReplicationRepairer
from .server import StorageCluster, StorageServer

__all__ = [
    "rs_encode",
    "rs_decode",
    "rs_update_parity",
    "rs_rebuild_shard",
    "rs_rebuild_shards",
    "merge_extents",
    "KERNEL_STATS",
    "reset_kernel_stats",
    "Shard",
    "ErasureStore",
    "ErasureWriteStream",
    "DeltaWriteStream",
    "ErasureRepairer",
]


# ----------------------------------------------------------------------
# GF(2^8) arithmetic (primitive polynomial x^8+x^4+x^3+x^2+1 = 0x11d)
# ----------------------------------------------------------------------
def _build_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    exp[255:510] = exp[:255]
    # Full 256x256 product table: mul[a, b] = a*b in GF(2^8).  64 KiB
    # once at import buys branch-free vectorized coding below.
    la = log[:, None] + log[None, :]
    mul = exp[la]
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


_GF_EXP, _GF_LOG, _GF_MUL = _build_tables()

#: Pair-index split of a little-endian uint16: entry v holds the two
#: payload bytes (v & 0xff, v >> 8).  Used to build the packed tables.
_PAIR_LO = (np.arange(65536, dtype=np.uint32) & 0xFF).astype(np.uint8)
_PAIR_HI = (np.arange(65536, dtype=np.uint32) >> 8).astype(np.uint8)

#: Columns processed per kernel pass.  Bounds the working set of a long
#: stripe encode/decode to ~cache size so striping streams instead of
#: thrashing; 64 KiB is even (the pair kernel consumes byte pairs).
_CODE_CHUNK = 1 << 16

#: Wall-clock kernel accounting: bytes fed through the GF multiply
#: kernels per API.  The CI smoke uses these counters to prove a
#: 10%-dirty delta update moves >= 3x fewer kernel bytes than a full
#: re-encode; they have no effect on virtual-time charges.
KERNEL_STATS: Dict[str, int] = {
    "encode_calls": 0,
    "encode_bytes": 0,
    "decode_calls": 0,
    "decode_bytes": 0,
    "delta_calls": 0,
    "delta_bytes": 0,
}


def reset_kernel_stats() -> None:
    """Zero the :data:`KERNEL_STATS` counters (benchmark/CI harness)."""
    for key in KERNEL_STATS:
        KERNEL_STATS[key] = 0


def _gf_inv(a: int) -> int:
    if a == 0:
        raise StorageError("GF(2^8) zero has no inverse")
    return int(_GF_EXP[255 - _GF_LOG[a]])


@functools.lru_cache(maxsize=None)
def _cauchy_rows(k: int, m: int) -> np.ndarray:
    """The m x k parity block: C[i][j] = 1/(x_i + y_j) with distinct
    x_i = i and y_j = m + j.  Every square submatrix of a Cauchy matrix
    is nonsingular, which makes [I_k ; C] an MDS generator.  Memoized
    per (k, m) -- the seed rebuilt it on every encode/decode call --
    and returned read-only so cache hits cannot be corrupted."""
    rows = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            rows[i, j] = _gf_inv(i ^ (m + j))
    rows.setflags(write=False)
    return rows


@functools.lru_cache(maxsize=128)
def _packed_tables(mat_bytes: bytes, r: int, q: int) -> Tuple[np.ndarray, ...]:
    """Pair-packed product tables for an (r x q) GF coefficient matrix.

    Table ``j`` has 65536 entries; entry ``v`` packs, for every output
    row ``i``, the two products ``matrix[i, j] * (v & 0xff)`` and
    ``matrix[i, j] * (v >> 8)`` at byte lanes ``2i`` and ``2i + 1``.
    The matmul kernel then gathers one table entry per *pair* of input
    bytes and XOR-folds across the q input rows -- r times fewer
    gathers than per-coefficient row lookups, and ``np.take`` on the
    flat table avoids fancy-indexing overhead.  uint32 entries when two
    output rows fit (m <= 2 parity), uint64 up to four.
    """
    matrix = np.frombuffer(mat_bytes, dtype=np.uint8).reshape(r, q)
    dtype = np.uint32 if r <= 2 else np.uint64
    tables: List[np.ndarray] = []
    for j in range(q):
        packed = np.zeros(65536, dtype=dtype)
        for i in range(r):
            c = int(matrix[i, j])
            if not c:
                continue
            row = _GF_MUL[c]
            packed |= row.take(_PAIR_LO).astype(dtype) << dtype(16 * i)
            packed |= row.take(_PAIR_HI).astype(dtype) << dtype(16 * i + 8)
        packed.setflags(write=False)
        tables.append(packed)
    return tuple(tables)


def _gf_matmul(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """(r x q) GF matrix times (q x L) byte rows -> (r x L) byte rows.

    Pair-packed kernel for r <= 4 on little-endian hosts (the common
    encode/decode shapes); otherwise a per-row ``np.take`` gather loop,
    itself ~2x the seed's fancy-indexing row lookups.
    """
    r, q = matrix.shape
    length = rows.shape[1]
    if length == 0:
        return np.zeros((r, 0), dtype=np.uint8)
    if r > 4 or sys.byteorder != "little":
        out = np.zeros((r, length), dtype=np.uint8)
        for i in range(r):
            acc = out[i]
            for j in range(q):
                c = int(matrix[i, j])
                if c:
                    acc ^= _GF_MUL[c].take(rows[j])
        return out
    if length % 2:
        padded = np.zeros((q, length + 1), dtype=np.uint8)
        padded[:, :length] = rows
        return _gf_matmul(matrix, padded)[:, :length]
    tables = _packed_tables(matrix.tobytes(), r, q)
    acc = tables[0].take(_pairs(rows[0]))
    for j in range(1, q):
        acc ^= tables[j].take(_pairs(rows[j]))
    # Unpack: output row i lives at 16-bit lane i of each entry, so one
    # transpose-copy of the uint16 lane view yields all r rows at once.
    slots = acc.dtype.itemsize // 2
    lanes = acc.view(np.uint16).reshape(length // 2, slots)
    return np.ascontiguousarray(lanes.T[:r]).view(np.uint8).reshape(r, length)


def _pairs(row: np.ndarray) -> np.ndarray:
    """An even-length byte row viewed as little-endian uint16 pairs."""
    if not row.flags.c_contiguous:
        row = np.ascontiguousarray(row)
    return row.view(np.uint16)


def _matmul_streamed(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Chunked :func:`_gf_matmul`: bounded working set for long stripes."""
    length = rows.shape[1]
    if length <= _CODE_CHUNK:
        return _gf_matmul(matrix, rows)
    out = np.empty((matrix.shape[0], length), dtype=np.uint8)
    for lo in range(0, length, _CODE_CHUNK):
        hi = min(length, lo + _CODE_CHUNK)
        out[:, lo:hi] = _gf_matmul(matrix, rows[:, lo:hi])
    return out


def _gf_invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a k x k matrix over GF(2^8) by Gauss-Jordan."""
    k = matrix.shape[0]
    a = matrix.astype(np.uint8).copy()
    inv = np.eye(k, dtype=np.uint8)
    for col in range(k):
        pivot = next((r for r in range(col, k) if a[r, col]), None)
        if pivot is None:
            raise StorageError("singular shard matrix (duplicate shard indices?)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        piv_inv = _gf_inv(int(a[col, col]))
        a[col] = _GF_MUL[piv_inv][a[col]]
        inv[col] = _GF_MUL[piv_inv][inv[col]]
        for r in range(k):
            if r != col and a[r, col]:
                c = int(a[r, col])
                a[r] ^= _GF_MUL[c][a[col]]
                inv[r] ^= _GF_MUL[c][inv[col]]
    return inv


@functools.lru_cache(maxsize=512)
def _decode_matrix(k: int, m: int, have: Tuple[int, ...]) -> np.ndarray:
    """Memoized Gauss-Jordan inverse for one survivor-index tuple.

    A degraded read of the same (k, m, survivors) shape -- every read
    during one server outage -- pays the O(k^3) inversion once."""
    cauchy = _cauchy_rows(k, m)
    matrix = np.zeros((k, k), dtype=np.uint8)
    for row, idx in enumerate(have):
        if idx < k:
            matrix[row, idx] = 1
        else:
            matrix[row] = cauchy[idx - k]
    inv = _gf_invert(matrix)
    inv.setflags(write=False)
    return inv


def _check_km(k: int, m: int) -> None:
    if k < 1 or m < 1:
        raise StorageError(f"erasure code needs k >= 1 and m >= 1 (got {k}+{m})")
    if k + m > 256:
        raise StorageError(f"GF(2^8) code supports k+m <= 256 (got {k + m})")


def merge_extents(
    extents: Iterable[Tuple[int, int]], limit: int
) -> List[Tuple[int, int]]:
    """Normalize dirty (offset, length) extents against a payload size.

    Clips to ``[0, limit)``, drops empty runs, sorts, and merges
    overlapping or adjacent runs.  The canonical form every delta entry
    point reduces caller extents to before touching parity.
    """
    spans: List[Tuple[int, int]] = []
    for off, length in extents:
        a = max(0, int(off))
        b = min(int(limit), int(off) + int(length))
        if b > a:
            spans.append((a, b))
    spans.sort()
    merged: List[List[int]] = []
    for a, b in spans:
        if merged and a <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], b)
        else:
            merged.append([a, b])
    return [(a, b - a) for a, b in merged]


def rs_encode(payload: bytes, k: int, m: int) -> List[bytes]:
    """Stripe ``payload`` into ``k`` data + ``m`` parity shards.

    The code is systematic: shards ``0..k-1`` are the (zero-padded)
    payload slices, shards ``k..k+m-1`` are Cauchy parity.  Every shard
    is ``ceil(len(payload)/k)`` bytes.  k-aligned payloads reshape
    zero-copy (``frombuffer``); parity streams through the packed-table
    kernel in bounded column chunks.
    """
    _check_km(k, m)
    if not isinstance(payload, bytes):
        payload = bytes(payload)
    plen = len(payload)
    shard_len = -(-plen // k)
    if plen == k * shard_len and plen:
        data = np.frombuffer(payload, dtype=np.uint8).reshape(k, shard_len)
        data_shards = [payload[i * shard_len : (i + 1) * shard_len] for i in range(k)]
    else:
        data = np.zeros((k, shard_len), dtype=np.uint8)
        if plen:
            data.reshape(-1)[:plen] = np.frombuffer(payload, dtype=np.uint8)
        data_shards = [data[i].tobytes() for i in range(k)]
    KERNEL_STATS["encode_calls"] += 1
    KERNEL_STATS["encode_bytes"] += k * shard_len
    parity = _matmul_streamed(_cauchy_rows(k, m), data)
    return data_shards + [parity[i].tobytes() for i in range(m)]


def rs_decode(
    shards: Mapping[int, bytes], k: int, m: int, payload_len: int
) -> bytes:
    """Reconstruct the original payload from any ``k`` of ``k+m`` shards.

    ``shards`` maps shard index -> shard bytes; indices ``>= k`` are
    parity.  Raises :class:`~repro.errors.StorageError` when fewer than
    ``k`` shards are supplied.
    """
    _check_km(k, m)
    if len(shards) < k:
        raise StorageError(
            f"need {k} shards to reconstruct, have {len(shards)}"
        )
    have = sorted(shards)[:k]
    shard_len = -(-payload_len // k)
    if have == list(range(k)):
        # All data shards present: plain systematic concatenation.
        return b"".join(bytes(shards[i]) for i in range(k))[:payload_len]
    stacked = np.zeros((k, shard_len), dtype=np.uint8)
    for row, idx in enumerate(have):
        buf = np.frombuffer(shards[idx], dtype=np.uint8)
        if buf.shape[0] != shard_len:
            raise StorageError(
                f"shard {idx} is {buf.shape[0]} bytes, expected {shard_len}"
            )
        stacked[row] = buf
    KERNEL_STATS["decode_calls"] += 1
    KERNEL_STATS["decode_bytes"] += k * shard_len
    data = _matmul_streamed(_decode_matrix(k, m, tuple(have)), stacked)
    return data.reshape(-1).tobytes()[:payload_len]


def rs_update_parity(
    old_parity: Sequence[bytes],
    dirty_offsets: Iterable[Tuple[int, int]],
    old_bytes: bytes,
    new_bytes: bytes,
    k: int,
    m: int,
) -> List[bytes]:
    """Delta-update the ``m`` parity shards for a partially dirty payload.

    GF(2^8) addition is XOR, so parity is linear in the payload:
    ``parity' = parity xor G . (old xor new)``.  Only the dirty extents
    contribute to the delta, so an update with dirty fraction ``f``
    costs O(f * m) multiply-gathers instead of the full O(k * m)
    re-encode -- and is **byte-identical** to
    ``rs_encode(new_bytes, k, m)[k:]`` (the property the CI smoke and
    the hypothesis suite gate).

    Parameters
    ----------
    old_parity:
        The current ``m`` parity shards (``ceil(len/k)`` bytes each).
    dirty_offsets:
        ``(offset, length)`` byte extents of the payload that may
        differ; they are clipped, merged and may overlap.  Clean bytes
        inside a declared extent cost kernel work but stay correct
        (their delta is zero).
    old_bytes / new_bytes:
        The previous and current payloads; must be the same length.
    """
    _check_km(k, m)
    if len(old_bytes) != len(new_bytes):
        raise StorageError(
            f"delta parity update needs equal payload sizes "
            f"(old {len(old_bytes)}, new {len(new_bytes)})"
        )
    plen = len(new_bytes)
    shard_len = -(-plen // k)
    if len(old_parity) != m:
        raise StorageError(
            f"expected {m} parity shards, got {len(old_parity)}"
        )
    parity_in = [bytes(p) for p in old_parity]
    for i, p in enumerate(parity_in):
        if len(p) != shard_len:
            raise StorageError(
                f"parity shard {i} is {len(p)} bytes, expected {shard_len}"
            )
    KERNEL_STATS["delta_calls"] += 1
    runs = merge_extents(dirty_offsets, plen)
    if not runs or shard_len == 0:
        return parity_in
    parity = np.stack([np.frombuffer(p, dtype=np.uint8) for p in parity_in]).copy()
    old = np.frombuffer(bytes(old_bytes), dtype=np.uint8)
    new = np.frombuffer(bytes(new_bytes), dtype=np.uint8)
    gen = _cauchy_rows(k, m)
    for start, length in runs:
        KERNEL_STATS["delta_bytes"] += length
        end = start + length
        # A run crossing a stripe-row boundary splits: byte p of the
        # payload lives at column p % shard_len of data row p // shard_len.
        while start < end:
            row = start // shard_len
            row_end = min(end, (row + 1) * shard_len)
            col = start - row * shard_len
            delta = old[start:row_end] ^ new[start:row_end]
            span = row_end - start
            for i in range(m):
                parity[i, col : col + span] ^= _GF_MUL[int(gen[i, row])].take(delta)
            start = row_end
    return [parity[i].tobytes() for i in range(m)]


def rs_rebuild_shards(
    shards: Mapping[int, bytes],
    k: int,
    m: int,
    indices: Sequence[int],
    payload_len: int,
) -> Dict[int, bytes]:
    """Re-encode several lost shards from any ``k`` survivors at once.

    One decode pass reconstructs the data rows; requested data shards
    are sliced out and requested parity shards are produced by one
    generator sub-matrix multiply -- instead of a full decode *and*
    full re-encode per missing shard (the seed's
    :func:`rs_rebuild_shard` loop).  Returns ``{index: shard_bytes}``.
    """
    _check_km(k, m)
    for index in indices:
        if not 0 <= index < k + m:
            raise StorageError(f"shard index {index} outside 0..{k + m - 1}")
    shard_len = -(-payload_len // k)
    payload = rs_decode(shards, k, m, k * shard_len)
    out: Dict[int, bytes] = {}
    parity_rows = sorted({i - k for i in set(indices) if i >= k})
    if parity_rows and shard_len:
        data = np.frombuffer(payload, dtype=np.uint8).reshape(k, shard_len)
        gen = np.ascontiguousarray(_cauchy_rows(k, m)[parity_rows])
        parity = _matmul_streamed(gen, data)
        computed = {pr: parity[row] for row, pr in enumerate(parity_rows)}
    else:
        computed = {}
    for index in indices:
        if shard_len == 0:
            out[index] = b""
        elif index < k:
            out[index] = payload[index * shard_len : (index + 1) * shard_len]
        else:
            out[index] = computed[index - k].tobytes()
    return out


def rs_rebuild_shard(
    shards: Mapping[int, bytes], k: int, m: int, index: int, payload_len: int
) -> bytes:
    """Re-encode one lost shard (data or parity) from any ``k`` others."""
    return rs_rebuild_shards(shards, k, m, [index], payload_len)[index]


# ----------------------------------------------------------------------
# The erasure-coded storage client
# ----------------------------------------------------------------------
@dataclass
class Shard:
    """One stored shard of an erasure-coded blob."""

    index: int
    k: int
    m: int
    #: Coded shard bytes for bytes-like blobs; None for opaque objects.
    payload: Optional[bytes]
    #: Serialized payload length ("bytes"/"u8" kinds) for truncation.
    payload_len: int
    #: "bytes", "u8" (uint8 ndarray) or "opaque".
    payload_kind: str
    #: The object reference for opaque (non-bytes-like) blobs.
    obj: Any = None


def _score(key: str, server_id: int) -> int:
    return zlib.crc32(f"{key}|{server_id}".encode())


#: Server-side key suffix for shard entries.  An ErasureStore may share
#: a StorageCluster with a ReplicatedStore (one failure domain, two
#: redundancy schemes); namespacing keeps a blob's shards from
#: clobbering its whole-object replicas under the same key.
_SHARD_SUFFIX = "#ec"


def _skey(key: str) -> str:
    return key + _SHARD_SUFFIX


def _payload_of(obj: Any) -> Tuple[Optional[bytes], str]:
    """Canonical byte payload of a blob, or (None, "opaque")."""
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return bytes(obj), "bytes"
    if isinstance(obj, np.ndarray) and obj.dtype == np.uint8 and obj.ndim == 1:
        return obj.tobytes(), "u8"
    return None, "opaque"


class ErasureStore(StorageBackend):
    """k+m Reed-Solomon striping over N storage servers.

    A peer of :class:`~repro.stablestore.ReplicatedStore`: same
    rendezvous placement, same sloppy walk past failed servers (each
    costs ``timeout + backoff``), same
    :class:`~repro.errors.StorageLostError` contract -- but each blob
    becomes ``k+m`` shards of ``ceil(nbytes/k)`` accounted bytes on
    ``k+m`` distinct servers, any ``k`` of which reconstruct it.

    Parameters
    ----------
    storage:
        The :class:`StorageCluster` holding servers and the shared link.
    data_shards / parity_shards:
        The code: ``k`` data plus ``m`` parity shards per blob.
    write_shards:
        Shards that must be durable before a write returns; defaults to
        the full stripe ``k+m`` (anything less leaves freshly written
        blobs below full failure tolerance until the repairer catches
        up). Must be at least ``k``.
    """

    kind = StorageKind.REMOTE
    survives_node_failure = True

    def __init__(
        self,
        storage: StorageCluster,
        data_shards: int = 4,
        parity_shards: int = 2,
        write_shards: Optional[int] = None,
        timeout_ns: int = 2 * NS_PER_MS,
        backoff_base_ns: int = 500 * NS_PER_US,
        backoff_factor: float = 2.0,
        backoff_cap_ns: int = 16 * NS_PER_MS,
    ) -> None:
        _check_km(data_shards, parity_shards)
        n = len(storage.servers)
        if data_shards + parity_shards > n:
            raise StorageError(
                f"{data_shards}+{parity_shards} code needs at least "
                f"{data_shards + parity_shards} servers, cluster has {n}"
            )
        super().__init__(device=storage.link)
        self.storage = storage
        self.k = data_shards
        self.m = parity_shards
        self.write_shards = (
            write_shards if write_shards is not None else data_shards + parity_shards
        )
        if not self.k <= self.write_shards <= self.k + self.m:
            raise StorageError(
                f"write_shards {self.write_shards} not in "
                f"{self.k}..{self.k + self.m}"
            )
        self.timeout_ns = int(timeout_ns)
        self.backoff_base_ns = int(backoff_base_ns)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_ns = int(backoff_cap_ns)
        #: key -> accounted nbytes of every accepted blob.
        self._directory: Dict[str, int] = {}
        # Quorum/retry statistics, mirroring ReplicatedStore's.
        self.write_retries = 0
        self.read_retries = 0
        self.backoff_ns_total = 0
        self.quorum_write_failures = 0
        self.quorum_read_failures = 0
        self.degraded_reads = 0
        # Dirty-delta update statistics.
        self.delta_writes = 0
        self.delta_fallbacks = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_size(self, nbytes: int) -> int:
        """Accounted bytes of one shard of an ``nbytes`` blob."""
        return -(-int(nbytes) // self.k)

    def candidates(self, key: str) -> List[StorageServer]:
        """All servers in rendezvous-preference order for ``key``."""
        return sorted(
            self.storage.servers,
            key=lambda s: (_score(key, s.server_id), s.server_id),
            reverse=True,
        )

    def shard_holders(self, key: str, up_only: bool = True) -> Dict[int, StorageServer]:
        """shard index -> holding server (reachable only, by default)."""
        skey = _skey(key)
        out: Dict[int, StorageServer] = {}
        for server in self.candidates(key):
            if not server.holds(skey):
                continue
            if up_only and not server.up:
                continue
            shard = server.replicas[skey][0]
            if isinstance(shard, Shard) and shard.index not in out:
                out[shard.index] = server
        return out

    def shard_count(self, key: str) -> int:
        """Distinct live shards of ``key``."""
        return len(self.shard_holders(key))

    def under_replicated(self) -> List[str]:
        """Keys that are readable but missing shards (repairable)."""
        full = self.k + self.m
        return [
            k
            for k in sorted(self._directory)
            if self.k <= self.shard_count(k) < full
        ]

    def lost_keys(self) -> List[str]:
        """Keys with fewer than ``k`` live shards (currently lost)."""
        return [
            k for k in sorted(self._directory) if self.shard_count(k) < self.k
        ]

    # ------------------------------------------------------------------
    # Coding helpers
    # ------------------------------------------------------------------
    def _encode(self, obj: Any) -> List[Shard]:
        payload, kind = _payload_of(obj)
        if payload is None:
            return [
                Shard(i, self.k, self.m, None, 0, "opaque", obj)
                for i in range(self.k + self.m)
            ]
        coded = rs_encode(payload, self.k, self.m)
        return [
            Shard(i, self.k, self.m, coded[i], len(payload), kind)
            for i in range(self.k + self.m)
        ]

    def _reconstruct(self, key: str, shards: Dict[int, Shard]) -> Any:
        first = next(iter(shards.values()))
        if first.payload_kind == "opaque":
            return first.obj
        payload = rs_decode(
            {i: s.payload for i, s in shards.items()},
            self.k,
            self.m,
            first.payload_len,
        )
        if first.payload_kind == "u8":
            return np.frombuffer(payload, dtype=np.uint8).copy()
        return payload

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Stripe ``obj`` onto ``k+m`` distinct servers.

        Returns the client-visible delay: the retry-walk penalty plus
        the instant the ``write_shards``-th shard is durable.
        """
        metrics = self.storage.engine.metrics
        snb = self.shard_size(nbytes)
        shards = self._encode(obj)
        placed: List[Tuple[StorageServer, Shard, int]] = []
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(placed) >= self.k + self.m:
                break
            if not server.up:
                penalty += self.timeout_ns + backoff
                self.write_retries += 1
                metrics.inc("storage.write_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            link_delay = self.device.submit(start, snb)
            disk_delay = server.disk.submit(start + link_delay, snb)
            placed.append((server, shards[len(placed)], penalty + link_delay + disk_delay))
        if len(placed) < self.write_shards:
            self.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum unreachable for {key!r}: "
                f"{len(placed)} of {self.write_shards} required shards placed "
                f"({len(self.storage.up_servers())}/{len(self.storage.servers)} "
                f"servers up)"
            )
        for server, shard, _ in placed:
            server.put_replica(_skey(key), shard, snb)
        self._directory[key] = nbytes
        self.bytes_written += snb * len(placed)
        delay = sorted(d for _, _, d in placed)[self.write_shards - 1]
        metrics.inc("storage.erasure_writes")
        metrics.inc("storage.shard_bytes_written", snb * len(placed))
        metrics.observe("storage.write_ns", delay)
        return delay

    def store_delta(
        self,
        key: str,
        obj: Any,
        nbytes: int,
        dirty_extents: Iterable[Tuple[int, int]],
        now_ns: int,
        base_key: Optional[str] = None,
    ) -> int:
        """Re-protect an f-dirty update at O(f) cost (GF linearity).

        Updates the stripe of ``base_key`` (default: ``key`` itself, an
        in-place refresh) to ``obj``'s content by shipping only the
        dirty extents: touched data shards are patched, the ``m``
        parity shards are delta-updated via :func:`rs_update_parity`,
        and untouched data shards are left (in place) or renamed
        (``base_key != key``: the stripe *rebases* to the new key with
        zero device traffic for clean shards -- how a compacted flat
        image moves forward with its chain tip).  The resulting stripe
        is byte-identical to a full :meth:`store` of ``obj``.

        The delta path needs every one of the base's ``k+m`` shards
        live and a bytes-compatible payload; when any precondition
        fails it **falls back** to a full :meth:`store` (counted in
        ``delta_fallbacks`` / ``storage.delta_fallbacks``), so callers
        can use it unconditionally.
        """
        metrics = self.storage.engine.metrics
        try:
            stream = self.open_delta_stream(
                key, dirty_extents, now_ns, base_key=base_key
            )
            return stream.commit(obj, nbytes, now_ns)
        except StorageError:  # includes StorageLostError
            self.delta_fallbacks += 1
            metrics.inc("storage.delta_fallbacks")
            return self.store(key, obj, nbytes, now_ns)

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Gather any ``k`` live shards in parallel and reconstruct.

        Data shards are preferred; any parity involvement counts as a
        *degraded read* (the decode matrix must be inverted).  All
        ``k`` shard fetches are issued at ``now_ns`` -- shards live on
        distinct disks, so the delay is the slowest fetch, not the sum.
        """
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self.storage.engine.metrics
        nbytes = self._directory[key]
        snb = self.shard_size(nbytes)
        holders = self.shard_holders(key)
        if len(holders) < self.k:
            self.quorum_read_failures += 1
            metrics.inc("storage.quorum_read_failures")
            raise StorageLostError(
                f"erasure read failed for {key!r}: {len(holders)} live "
                f"shards, {self.k} required"
            )
        chosen = sorted(holders)[: self.k]
        gathered: Dict[int, Shard] = {}
        worst = 0
        for idx in chosen:
            server = holders[idx]
            disk_delay = server.disk.submit(now_ns, snb)
            link_delay = self.device.submit(now_ns + disk_delay, snb)
            worst = max(worst, disk_delay + link_delay)
            server.bytes_read += snb
            gathered[idx] = server.replicas[_skey(key)][0]
        degraded = any(i >= self.k for i in chosen)
        if degraded:
            self.degraded_reads += 1
            metrics.inc("storage.degraded_reads")
        obj = self._reconstruct(key, gathered)
        self.bytes_read += nbytes
        metrics.inc("storage.erasure_reads")
        metrics.observe("storage.read_ns", worst)
        return obj, worst

    def load_fanout(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Erasure reads are already a parallel shard fan-in."""
        return self.load(key, now_ns)

    def store_async(self, key: str, obj: Any, nbytes: int, now_ns: int) -> Completion:
        """Striped write as an engine completion (writeback pipeline)."""
        delay = self.store(key, obj, nbytes, now_ns)
        self.storage.engine.metrics.inc("storage.async_writes")
        return self.storage.engine.completion(delay, value=delay)

    def load_async(self, key: str, now_ns: int) -> Completion:
        """Shard gather as an engine completion (restore prefetch)."""
        obj, delay = self.load(key, now_ns)
        self.storage.engine.metrics.inc("storage.async_reads")
        return self.storage.engine.completion(delay, value=obj)

    def load_parallel(self, keys, now_ns: int) -> Tuple[Dict[str, Any], int]:
        """Prefetch several blobs issued at one instant (chain restore)."""
        objs: Dict[str, Any] = {}
        worst = 0
        for key in keys:
            obj, delay = self.load(key, now_ns)
            objs[key] = obj
            worst = max(worst, delay)
        return objs, worst

    def open_stream(self, key: str, now_ns: int) -> "ErasureWriteStream":
        """Open a pipelined multi-extent striped write (COW drain path)."""
        return ErasureWriteStream(self, key, now_ns)

    def open_delta_stream(
        self,
        key: str,
        dirty_extents: Iterable[Tuple[int, int]],
        now_ns: int,
        base_key: Optional[str] = None,
    ) -> "DeltaWriteStream":
        """Open a pipelined dirty-delta update of an existing stripe.

        Raises :class:`~repro.errors.StorageLostError` when the base
        stripe is not fully live (the delta path cannot tolerate a
        missing shard: every parity and every touched data shard must
        be updated, and untouched shards must survive to keep the
        stripe consistent).
        """
        return DeltaWriteStream(self, key, dirty_extents, now_ns, base_key=base_key)

    def exists(self, key: str) -> bool:
        """Whether a read of ``key`` would currently succeed."""
        return key in self._directory and self.shard_count(key) >= self.k

    def peek(self, key: str) -> Any:
        """Inspect a blob without charging I/O (GC / availability checks)."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        holders = self.shard_holders(key)
        if len(holders) < self.k:
            raise StorageLostError(
                f"fewer than {self.k} reachable shards of {key!r}"
            )
        gathered = {
            i: holders[i].replicas[_skey(key)][0] for i in sorted(holders)[: self.k]
        }
        return self._reconstruct(key, gathered)

    def delete(self, key: str) -> None:
        """Drop every shard (idempotent)."""
        self._directory.pop(key, None)
        for server in self.storage.servers:
            server.drop_replica(_skey(key))

    def keys(self) -> Iterator[str]:
        """Stored blob keys, sorted."""
        return iter(sorted(self._directory))

    def stored_bytes(self) -> int:
        """Logical bytes held (one count per blob)."""
        return sum(self._directory.values())

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        return self._directory.get(key, 0)

    def physical_bytes(self) -> int:
        """Shard bytes actually on server disks (~ (k+m)/k per logical).

        Counts only this store's shard entries, so the figure stays
        honest when the cluster is shared with a ReplicatedStore.
        """
        return sum(
            rn
            for s in self.storage.servers
            for rkey, (_o, rn) in s.replicas.items()
            if rkey.endswith(_SHARD_SUFFIX)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ErasureStore {self.k}+{self.m} "
            f"keys={len(self._directory)}>"
        )


class ErasureWriteStream:
    """An open pipelined striped write of one blob.

    Mirrors :class:`~repro.stablestore.ReplicaWriteStream`: opening
    performs the rendezvous retry walk once and pins ``k+m`` servers
    (one shard index each); each :meth:`send` forwards one extent's
    worth of shard slices (``ceil(nbytes/k)`` per pinned server) over
    the shared link and onto the pinned disks; :meth:`commit` encodes
    the finished object (through :func:`rs_encode`'s bounded-chunk
    streaming kernel, so even a huge stripe never materializes more
    than ``k * _CODE_CHUNK`` working bytes at once), charges the
    remainder, installs the shards and the directory entry.  The blob
    is visible only at commit, so a crash mid-stream never publishes a
    torn stripe.  If pinned servers fail mid-stream and fewer than
    ``write_shards`` remain, the next send/commit raises
    :class:`~repro.errors.StorageLostError`.
    """

    def __init__(self, store: ErasureStore, key: str, now_ns: int) -> None:
        self.store = store
        self.key = key
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.sent_shard_bytes = 0
        self.committed = False
        metrics = store.storage.engine.metrics
        pinned: List[StorageServer] = []
        penalty = 0
        backoff = store.backoff_base_ns
        for server in store.candidates(key):
            if len(pinned) >= store.k + store.m:
                break
            if not server.up:
                penalty += store.timeout_ns + backoff
                store.write_retries += 1
                metrics.inc("storage.write_retries")
                store.backoff_ns_total += backoff
                backoff = min(int(backoff * store.backoff_factor), store.backoff_cap_ns)
                continue
            pinned.append(server)
        if len(pinned) < store.write_shards:
            store.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum unreachable for {key!r}: "
                f"{len(pinned)} of {store.write_shards} required shard "
                f"servers reachable"
            )
        #: shard index -> pinned server, assigned at open time.
        self.servers: Dict[int, StorageServer] = dict(enumerate(pinned))
        self.open_penalty_ns = penalty

    def _live_servers(self) -> Dict[int, StorageServer]:
        live = {i: s for i, s in self.servers.items() if s.up}
        if len(live) < self.store.write_shards:
            self.store.quorum_write_failures += 1
            self.store.storage.engine.metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"erasure write quorum lost mid-stream for {self.key!r}: "
                f"{len(live)} of {self.store.write_shards} pinned shard "
                f"servers up"
            )
        return live

    def send(self, nbytes: int, now_ns: int) -> int:
        """Forward one extent's shard slices to every live pinned
        server; returns the delay at which the ``write_shards``-th
        slice is durable."""
        live = self._live_servers()
        snb = self.store.shard_size(nbytes)
        delays: List[int] = []
        for server in live.values():
            link_delay = self.store.device.submit(now_ns, snb)
            disk_delay = server.disk.submit(now_ns + link_delay, snb)
            delays.append(link_delay + disk_delay)
        self.sent_bytes += int(nbytes)
        self.sent_shard_bytes += snb
        delays.sort()
        return delays[min(self.store.write_shards, len(live)) - 1]

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Queue one captured chunk (dedup-aware streams override)."""
        return self.send(int(chunk.nbytes), now_ns)

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Encode the finished object, charge the shard remainders and
        make the blob visible.  Total traffic matches a monolithic
        :meth:`ErasureStore.store` of the same image."""
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        st = self.store
        live = self._live_servers()
        snb = st.shard_size(nbytes)
        remainder = max(0, snb - self.sent_shard_bytes)
        shards = st._encode(obj)
        delays: List[int] = []
        for idx, server in live.items():
            link_delay = st.device.submit(now_ns, remainder)
            disk_delay = server.disk.submit(now_ns + link_delay, remainder)
            delays.append(link_delay + disk_delay)
            server.put_replica(_skey(self.key), shards[idx], snb)
        self.committed = True
        st._directory[self.key] = nbytes
        st.bytes_written += snb * len(live)
        delays.sort()
        delay = delays[min(st.write_shards, len(live)) - 1]
        metrics = st.storage.engine.metrics
        metrics.inc("storage.erasure_writes")
        metrics.inc("storage.shard_bytes_written", snb * len(live))
        metrics.observe("storage.write_ns", delay)
        return delay


class DeltaWriteStream:
    """A pipelined dirty-delta update of one existing erasure stripe.

    Speaks the same ``WriteStream`` protocol as
    :class:`ErasureWriteStream` (``send`` / ``send_chunk`` /
    ``commit``), so :class:`~repro.stablestore.WritebackPipeline`,
    dedup wrappers and the hierarchy compose with delta updates
    unchanged -- but the unit of traffic is the *dirty* bytes, not the
    blob.

    Cost model (a new API, so its virtual-time charges are defined
    here; the pre-existing full-store formulas are untouched):

    * each :meth:`send` forwards one dirty extent's shard slices
      (``ceil(nbytes/k)``) to all ``k+m`` stripe holders, exactly like
      the full stream's send;
    * :meth:`commit` first *reads back* the stale bytes of every dirty
      run from its data shard's server (the read-modify-write a real
      delta-parity update performs: ``delta = old xor new``), then
      ships the remaining delta shard slices --
      ``max(0, ceil(D/k) - sent)`` per holder, where ``D`` is the
      merged dirty-byte total -- in one link+disk submit per server,
      mirroring the full stream's single-remainder-submit shape.  The
      client-visible delay is the read fan-in plus the
      ``write_shards``-th write.

    The stream requires the base's full ``k+m`` stripe live at open
    *and* at commit (a delta update must touch every parity shard, and
    clean shards must survive to stay part of the stripe); otherwise
    :class:`~repro.errors.StorageLostError`.  Payload preconditions
    (bytes-compatible kinds, equal payload length) raise
    :class:`~repro.errors.StorageError` *before* any device charge, so
    :meth:`ErasureStore.store_delta` can fall back to a clean full
    store.  ``base_key != key`` rebases the stripe: untouched shards
    are renamed server-side with zero device traffic.
    """

    def __init__(
        self,
        store: ErasureStore,
        key: str,
        dirty_extents: Iterable[Tuple[int, int]],
        now_ns: int,
        base_key: Optional[str] = None,
    ) -> None:
        self.store = store
        self.key = key
        self.base_key = base_key if base_key is not None else key
        self.extents: List[Tuple[int, int]] = [
            (int(o), int(n)) for o, n in dirty_extents
        ]
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.sent_shard_bytes = 0
        self.committed = False
        if self.base_key not in store._directory:
            raise StorageError(
                f"delta update of {key!r}: base {self.base_key!r} not stored"
            )
        self.holders = self._full_stripe()

    def _full_stripe(self) -> Dict[int, StorageServer]:
        """All k+m live holders of the base stripe, or StorageLostError."""
        st = self.store
        holders = st.shard_holders(self.base_key)
        if len(holders) < st.k + st.m:
            st.storage.engine.metrics.inc("storage.delta_stripe_unavailable")
            raise StorageLostError(
                f"delta update of {self.key!r} needs the full stripe of "
                f"{self.base_key!r} live: {len(holders)} of {st.k + st.m} "
                f"shards reachable"
            )
        return holders

    def send(self, nbytes: int, now_ns: int) -> int:
        """Forward one dirty extent's shard slices to every holder."""
        holders = self._full_stripe()
        st = self.store
        snb = st.shard_size(nbytes)
        delays: List[int] = []
        for server in holders.values():
            link_delay = st.device.submit(now_ns, snb)
            disk_delay = server.disk.submit(now_ns + link_delay, snb)
            delays.append(link_delay + disk_delay)
        self.sent_bytes += int(nbytes)
        self.sent_shard_bytes += snb
        delays.sort()
        return delays[st.write_shards - 1]

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Queue one captured dirty chunk (WriteStream protocol)."""
        return self.send(int(chunk.nbytes), now_ns)

    # ------------------------------------------------------------------
    def _new_shards(
        self, obj: Any, nbytes: int, base_shards: Dict[int, Shard]
    ) -> Tuple[List[Shard], Dict[int, int], List[Tuple[int, int]]]:
        """Build the updated stripe without re-encoding clean rows.

        Returns ``(shards, dirty_by_row, accounting_runs)`` where
        ``dirty_by_row`` maps touched *data* rows to their dirty byte
        counts (the commit's read-back phase) -- empty for opaque
        payloads, which carry no codable bytes.
        """
        st = self.store
        payload, kind = _payload_of(obj)
        first = base_shards[0]
        if (kind == "opaque") != (first.payload_kind == "opaque"):
            raise StorageError(
                f"delta update of {self.key!r}: payload kind changed "
                f"({first.payload_kind!r} -> {kind!r})"
            )
        runs_acct = merge_extents(self.extents, nbytes)
        if kind == "opaque":
            shards = [
                Shard(i, st.k, st.m, None, 0, "opaque", obj)
                for i in range(st.k + st.m)
            ]
            return shards, {}, runs_acct
        if len(payload) != first.payload_len:
            raise StorageError(
                f"delta update of {self.key!r}: payload length changed "
                f"({first.payload_len} -> {len(payload)}); delta parity "
                f"needs equal sizes"
            )
        shard_len = -(-len(payload) // st.k)
        runs = merge_extents(self.extents, len(payload))
        old_payload = b"".join(base_shards[i].payload for i in range(st.k))[
            : first.payload_len
        ]
        old_parity = [base_shards[st.k + i].payload for i in range(st.m)]
        new_parity = rs_update_parity(
            old_parity, runs, old_payload, payload, st.k, st.m
        )
        dirty_by_row: Dict[int, int] = {}
        if shard_len:
            for start, length in runs:
                end = start + length
                while start < end:
                    row = start // shard_len
                    row_end = min(end, (row + 1) * shard_len)
                    dirty_by_row[row] = dirty_by_row.get(row, 0) + (row_end - start)
                    start = row_end
        shards: List[Shard] = []
        for row in range(st.k):
            if row in dirty_by_row:
                seg = payload[row * shard_len : (row + 1) * shard_len]
                if len(seg) < shard_len:
                    seg += b"\x00" * (shard_len - len(seg))
            else:
                seg = base_shards[row].payload
            shards.append(Shard(row, st.k, st.m, seg, len(payload), kind))
        for i in range(st.m):
            shards.append(
                Shard(st.k + i, st.k, st.m, new_parity[i], len(payload), kind)
            )
        return shards, dirty_by_row, runs_acct

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Patch the stripe in place (or rebase it onto ``key``).

        All payload validation happens before the first device submit,
        so a raising commit leaves the stripe untouched and charges
        nothing -- the contract :meth:`ErasureStore.store_delta`'s
        fallback relies on.
        """
        if self.committed:
            raise StorageError(f"delta stream for {self.key!r} already committed")
        st = self.store
        holders = self._full_stripe()
        skey_base = _skey(self.base_key)
        base_shards = {
            i: holders[i].replicas[skey_base][0] for i in holders
        }
        shards, dirty_by_row, runs_acct = self._new_shards(obj, nbytes, base_shards)
        dirty_total = sum(length for _, length in runs_acct)
        dsnb = st.shard_size(dirty_total) if dirty_total else 0
        snb = st.shard_size(nbytes)
        metrics = st.storage.engine.metrics
        # ---- read-back phase: stale bytes of each dirty data row ------
        read_worst = 0
        for row, dirty in sorted(dirty_by_row.items()):
            server = holders[row]
            disk_delay = server.disk.submit(now_ns, dirty)
            link_delay = st.device.submit(now_ns + disk_delay, dirty)
            server.bytes_read += dirty
            read_worst = max(read_worst, disk_delay + link_delay)
        # ---- write phase: remaining delta slices to every holder ------
        write_at = now_ns + read_worst
        remainder = max(0, dsnb - self.sent_shard_bytes)
        rebase = self.base_key != self.key
        skey_new = _skey(self.key)
        delays: List[int] = []
        for idx, server in holders.items():
            link_delay = st.device.submit(write_at, remainder)
            disk_delay = server.disk.submit(write_at + link_delay, remainder)
            delays.append(link_delay + disk_delay)
            if idx >= st.k or idx in dirty_by_row:
                server.put_replica(skey_new, shards[idx], snb)
            else:
                # Clean shard: metadata-only rename/refresh -- no shard
                # bytes move, so bypass put_replica's write accounting.
                server.replicas[skey_new] = (shards[idx], snb)
            if rebase:
                server.drop_replica(skey_base)
        self.committed = True
        st._directory[self.key] = int(nbytes)
        if rebase:
            st._directory.pop(self.base_key, None)
        st.bytes_written += dsnb * len(holders)
        st.delta_writes += 1
        delays.sort()
        delay = read_worst + delays[st.write_shards - 1]
        metrics.inc("storage.delta_writes")
        metrics.inc("storage.delta_bytes_written", dsnb * len(holders))
        metrics.observe("storage.write_ns", delay)
        return delay


class ErasureRepairer(ReplicationRepairer):
    """Background re-encode of lost shards after server failures.

    Inherits :class:`ReplicationRepairer`'s cadence -- failure-detect
    scan after ``detect_delay_ns``, steady-state scan every
    ``scan_interval_ns``, at most ``max_repairs_per_scan`` in-flight
    keys -- but a repair reads ``k`` surviving shards (k source disks
    and k link crossings), re-encodes **every** missing shard of the
    key from that single decode pass (:func:`rs_rebuild_shards`), and
    writes each onto a distinct server that holds none of the blob's
    shards.  A server loss that drops several shards of one key -- a
    shared-domain double failure, or a shrunken group -- therefore
    costs one matrix solve, not one per shard.
    """

    def _start_repair(self, key: str) -> bool:
        store = self.store
        holders = store.shard_holders(key)
        if len(holders) < store.k:
            return False  # unreadable: nothing to re-encode from
        present = set(holders)
        missing = [i for i in range(store.k + store.m) if i not in present]
        if not missing:
            return False
        with_shards = {s.server_id for s in holders.values()}
        skey = _skey(key)
        spares = [
            s
            for s in store.candidates(key)
            if s.up and not s.holds(skey) and s.server_id not in with_shards
        ]
        if not spares:
            return False  # nowhere to put a re-encoded shard
        assigned = list(zip(missing, spares))
        snb = store.shard_size(store._directory[key])
        now = self.engine.now_ns
        sources = [holders[i] for i in sorted(holders)[: store.k]]
        gathered = {
            i: holders[i].replicas[skey][0] for i in sorted(holders)[: store.k]
        }
        # k parallel source reads fan in over the shared link -- once,
        # regardless of how many shards are being rebuilt -- then each
        # re-encoded shard is written to its own destination disk.
        read_worst = 0
        for src in sources:
            d = src.disk.submit(now, snb)
            d += store.device.submit(now + d, snb)
            src.bytes_read += snb
            read_worst = max(read_worst, d)
        rebuilt = self._rebuild_many(gathered, [idx for idx, _ in assigned])
        self._inflight.add(key)
        pending = {"n": len(assigned)}
        for idx, dest in assigned:
            delay = read_worst
            delay += store.device.submit(now + delay, snb)
            delay += dest.disk.submit(now + delay, snb)
            shard = rebuilt[idx]
            self.engine.after(
                delay,
                lambda d=dest, s=shard: self._finish_shard(
                    key, d, s, snb, begun_ns=now, pending=pending
                ),
                label="shard-repair",
            )
        return True

    def _rebuild_many(
        self, gathered: Dict[int, Shard], indices: List[int]
    ) -> Dict[int, Shard]:
        """Re-encode several missing shards from one decode pass."""
        first = next(iter(gathered.values()))
        if first.payload_kind == "opaque":
            return {
                i: Shard(i, first.k, first.m, None, 0, "opaque", first.obj)
                for i in indices
            }
        payloads = rs_rebuild_shards(
            {i: s.payload for i, s in gathered.items()},
            first.k,
            first.m,
            indices,
            first.payload_len,
        )
        return {
            i: Shard(i, first.k, first.m, payloads[i], first.payload_len,
                     first.payload_kind)
            for i in indices
        }

    def _rebuild(self, gathered: Dict[int, Shard], index: int) -> Shard:
        """Re-encode one missing shard (single-shard convenience)."""
        return self._rebuild_many(gathered, [index])[index]

    def _finish_shard(
        self,
        key: str,
        dest,
        shard: Shard,
        snb: int,
        begun_ns: int = 0,
        pending: Optional[Dict[str, int]] = None,
    ) -> None:
        if pending is None:
            self._inflight.discard(key)
        else:
            pending["n"] -= 1
            if pending["n"] <= 0:
                self._inflight.discard(key)
        if key not in self.store._directory:
            return  # deleted (GC'd) while the repair was in flight
        if not dest.up:
            return  # destination died mid-repair; a later scan retries
        if shard.index in self.store.shard_holders(key):
            return  # another path already restored this shard
        dest.put_replica(_skey(key), shard, snb)
        self.repairs_completed += 1
        self.bytes_rereplicated += snb
        self.engine.count("shard_repairs")
        self.engine.metrics.inc("storage.shard_repair_bytes", snb)
        self.engine.tracer.record(
            "storage.shard_repair",
            begun_ns,
            self.engine.now_ns,
            key=key,
            dest=dest.server_id,
            shard=shard.index,
            nbytes=snb,
        )
