"""The quorum-replicated stable-storage client.

:class:`ReplicatedStore` implements the :class:`~repro.storage.backends.
StorageBackend` protocol, so every mechanism and the cluster use it
exactly like the monolithic :class:`~repro.storage.RemoteStorage` it
replaces -- but behind the protocol each blob is placed on
``replication`` storage servers chosen by rendezvous hashing, writes
return once a W-of-N quorum of replicas is durable, and reads return
once R-of-N replicas respond.

A request that lands on a failed server costs a detection timeout, then
retries against the next candidate after an exponentially-backed-off
delay (the sloppy-quorum walk real replicated stores do).
:class:`~repro.errors.StorageLostError` is raised only when the quorum
itself is unreachable -- fewer than W (or R) live replicas exist.

The client's key directory (which keys exist, at what size) is modelled
as reliable metadata, the usual assumption for a replicated metadata
service; what fails here is the *data* tier, which is where checkpoint
bytes live and what the survivability experiments stress.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError, StorageLostError
from ..simkernel.costs import NS_PER_MS, NS_PER_US
from ..simkernel.engine import Completion
from ..storage.backends import StorageBackend, StorageKind
from .server import StorageCluster, StorageServer

__all__ = ["ReplicatedStore", "ReplicaWriteStream"]


def _score(key: str, server_id: int) -> int:
    """Deterministic rendezvous-hash score (unsalted, unlike ``hash``)."""
    return zlib.crc32(f"{key}|{server_id}".encode())


class ReplicatedStore(StorageBackend):
    """W-of-N quorum writes, R-of-N quorum reads over N storage servers.

    Parameters
    ----------
    storage:
        The :class:`StorageCluster` holding the server nodes and the
        shared ingress link.
    replication:
        Replicas per blob (the paper-era single file server is
        ``replication=1``).
    write_quorum:
        Acks required before a write returns; defaults to a majority of
        ``replication``.
    read_quorum:
        Replica responses required for a read; defaults to 1 (all
        replicas are identical -- checkpoint images are immutable).
    timeout_ns / backoff_base_ns / backoff_factor / backoff_cap_ns:
        The failed-server detection timeout and the exponential backoff
        between successive retries.
    """

    kind = StorageKind.REMOTE
    survives_node_failure = True

    def __init__(
        self,
        storage: StorageCluster,
        replication: int = 2,
        write_quorum: Optional[int] = None,
        read_quorum: int = 1,
        timeout_ns: int = 2 * NS_PER_MS,
        backoff_base_ns: int = 500 * NS_PER_US,
        backoff_factor: float = 2.0,
        backoff_cap_ns: int = 16 * NS_PER_MS,
    ) -> None:
        n = len(storage.servers)
        if not 1 <= replication <= n:
            raise StorageError(
                f"replication factor {replication} needs 1..{n} servers"
            )
        super().__init__(device=storage.link)
        self.storage = storage
        self.replication = replication
        self.write_quorum = write_quorum if write_quorum is not None else replication // 2 + 1
        self.read_quorum = read_quorum
        if not 1 <= self.write_quorum <= replication:
            raise StorageError(f"write quorum {self.write_quorum} not in 1..{replication}")
        if not 1 <= self.read_quorum <= replication:
            raise StorageError(f"read quorum {self.read_quorum} not in 1..{replication}")
        self.timeout_ns = int(timeout_ns)
        self.backoff_base_ns = int(backoff_base_ns)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_ns = int(backoff_cap_ns)
        #: key -> nbytes for every blob the service has accepted.
        self._directory: Dict[str, int] = {}
        # Retry / failure statistics (the E19 quorum-behaviour evidence).
        self.write_retries = 0
        self.read_retries = 0
        self.backoff_ns_total = 0
        self.quorum_write_failures = 0
        self.quorum_read_failures = 0
        self.last_write_latency_ns = 0
        self._latency_ewma_ns: Optional[float] = None
        self.last_read_latency_ns = 0
        self._read_latency_ewma_ns: Optional[float] = None
        self.latency_alpha = 0.3

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def candidates(self, key: str) -> List[StorageServer]:
        """All servers in rendezvous-preference order for ``key``.

        The first ``replication`` entries are the preferred replica set;
        the rest are the fallback walk order when preferred servers are
        down.
        """
        return sorted(
            self.storage.servers,
            key=lambda s: (_score(key, s.server_id), s.server_id),
            reverse=True,
        )

    def holders(self, key: str, up_only: bool = True) -> List[int]:
        """Server ids holding a replica of ``key`` (reachable ones only
        by default), in preference order."""
        return [
            s.server_id
            for s in self.candidates(key)
            if s.holds(key) and (s.up or not up_only)
        ]

    def replica_count(self, key: str) -> int:
        """Live (reachable) replicas of ``key``."""
        return len(self.holders(key))

    def under_replicated(self) -> List[str]:
        """Keys with at least one live replica but fewer than the target."""
        return [
            k
            for k in sorted(self._directory)
            if 0 < self.replica_count(k) < self.replication
        ]

    def lost_keys(self) -> List[str]:
        """Keys with no reachable replica at all (data currently lost)."""
        return [k for k in sorted(self._directory) if self.replica_count(k) == 0]

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Replicate ``obj`` onto up to ``replication`` servers.

        Returns the client-visible delay: retry penalties plus the time
        at which the W-th replica is durable (later replicas complete in
        the background, as quorum systems do).
        """
        metrics = self.storage.engine.metrics
        placed: List[Tuple[StorageServer, int]] = []
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(placed) >= self.replication:
                break
            if not server.up:
                # RPC times out, client backs off, walks to the next
                # candidate (sloppy-quorum fallback placement).
                penalty += self.timeout_ns + backoff
                self.write_retries += 1
                metrics.inc("storage.write_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            link_delay = self.device.submit(start, nbytes)
            disk_delay = server.disk.submit(start + link_delay, nbytes)
            placed.append((server, penalty + link_delay + disk_delay))
        if len(placed) < self.write_quorum:
            # Abort: roll the partial replicas back so no orphan copies
            # linger outside the directory.
            for server, _ in placed:
                server.drop_replica(key)
            self.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"write quorum unreachable for {key!r}: "
                f"{len(placed)} of {self.write_quorum} required replicas placed "
                f"({len(self.storage.up_servers())}/{len(self.storage.servers)} "
                f"servers up)"
            )
        for server, _ in placed:
            server.put_replica(key, obj, nbytes)
        self._directory[key] = nbytes
        self.bytes_written += nbytes * len(placed)
        delay = sorted(d for _, d in placed)[self.write_quorum - 1]
        metrics.inc("storage.quorum_writes")
        metrics.inc("storage.replica_bytes_written", nbytes * len(placed))
        metrics.observe("storage.write_ns", delay)
        self._observe_write_latency(delay)
        return delay

    def _observe_write_latency(self, delay: int) -> None:
        self.last_write_latency_ns = delay
        if self._latency_ewma_ns is None:
            self._latency_ewma_ns = float(delay)
        else:
            self._latency_ewma_ns = (
                self.latency_alpha * delay
                + (1.0 - self.latency_alpha) * self._latency_ewma_ns
            )

    def _observe_read_latency(self, delay: int) -> None:
        self.last_read_latency_ns = delay
        if self._read_latency_ewma_ns is None:
            self._read_latency_ewma_ns = float(delay)
        else:
            self._read_latency_ewma_ns = (
                self.latency_alpha * delay
                + (1.0 - self.latency_alpha) * self._read_latency_ewma_ns
            )

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Fetch ``obj`` from an R-of-N quorum of replica holders."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self.storage.engine.metrics
        nbytes = self._directory[key]
        responders: List[int] = []
        obj: Any = None
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(responders) >= self.read_quorum:
                break
            if not server.holds(key):
                continue  # a "not found" reply is immediate
            if not server.up:
                penalty += self.timeout_ns + backoff
                self.read_retries += 1
                metrics.inc("storage.read_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            disk_delay = server.disk.submit(start, nbytes)
            link_delay = self.device.submit(start + disk_delay, nbytes)
            responders.append(penalty + disk_delay + link_delay)
            server.bytes_read += nbytes
            obj = server.replicas[key][0]
        if len(responders) < self.read_quorum:
            self.quorum_read_failures += 1
            metrics.inc("storage.quorum_read_failures")
            raise StorageLostError(
                f"read quorum unreachable for {key!r}: "
                f"{len(responders)} of {self.read_quorum} replicas responded"
            )
        self.bytes_read += nbytes
        metrics.inc("storage.quorum_reads")
        metrics.observe("storage.read_ns", max(responders))
        self._observe_read_latency(max(responders))
        return obj, max(responders)

    # ------------------------------------------------------------------
    # Asynchronous pipeline entry points
    # ------------------------------------------------------------------
    def store_async(self, key: str, obj: Any, nbytes: int, now_ns: int) -> Completion:
        """Issue a quorum write and return a completion token.

        The replica placement, retry walk, device accounting and metric
        stream are exactly :meth:`store`'s; the difference is the caller
        is not forced to sleep through the latency -- the returned token
        resolves (with the write delay as its value) when the W-th
        replica is durable, so a checkpoint drain can keep several writes
        in flight and pay only the slowest at its commit barrier.
        """
        delay = self.store(key, obj, nbytes, now_ns)
        self.storage.engine.metrics.inc("storage.async_writes")
        return self.storage.engine.completion(delay, value=delay)

    def load_fanout(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Read from the R estimated-fastest live holders in parallel.

        The synchronous :meth:`load` walks holders in preference order
        and pays ``timeout + backoff`` for each dead candidate it tries.
        The fan-out *issues* the read to every live holder at one
        instant (dead servers simply never answer, so no timeout sits
        on the client's critical path), but only the ``read_quorum``
        holders whose disks are estimated to respond fastest actually
        stream the blob -- the losing requests are cancelled before
        their transfers start.  The explicit traffic model: exactly R
        holders pay a disk read and a link crossing of ``nbytes`` and
        bump ``bytes_read``, identical to the serial :meth:`load`'s
        charge for the same cluster state (ties break in rendezvous
        preference order, the serial walk's order).  Earlier versions
        charged *every* live holder's disk and the shared link for full
        reads whose responses were then discarded, so fan-out and
        serial device counters disagreed.
        """
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self.storage.engine.metrics
        nbytes = self._directory[key]
        holders = [s for s in self.candidates(key) if s.up and s.holds(key)]
        if len(holders) < self.read_quorum:
            self.quorum_read_failures += 1
            metrics.inc("storage.quorum_read_failures")
            raise StorageLostError(
                f"read quorum unreachable for {key!r}: "
                f"{len(holders)} live holders, {self.read_quorum} required"
            )
        order = sorted(
            range(len(holders)),
            key=lambda i: (holders[i].disk.estimate(now_ns, nbytes), i),
        )
        winners = [holders[i] for i in order[: self.read_quorum]]
        obj: Any = None
        delay = 0
        for server in winners:
            disk_delay = server.disk.submit(now_ns, nbytes)
            link_delay = self.device.submit(now_ns + disk_delay, nbytes)
            delay = max(delay, disk_delay + link_delay)
            server.bytes_read += nbytes
            obj = server.replicas[key][0]
        self.bytes_read += nbytes
        metrics.inc("storage.fanout_reads")
        metrics.observe("storage.read_ns", delay)
        self._observe_read_latency(delay)
        return obj, delay

    def load_async(self, key: str, now_ns: int) -> Completion:
        """Fan-out read returning a completion token resolved with the
        blob once the R-th fastest holder has responded."""
        obj, delay = self.load_fanout(key, now_ns)
        self.storage.engine.metrics.inc("storage.async_reads")
        return self.storage.engine.completion(delay, value=obj)

    def load_parallel(
        self, keys, now_ns: int
    ) -> Tuple[Dict[str, Any], int]:
        """Prefetch several blobs issued at one instant (chain restore).

        Each key is fetched with the fan-out read; because every request
        is submitted at ``now_ns``, server disks seek concurrently and
        the shared link serializes only wire time -- the total is the
        slowest fetch, not the sum a serial chain walk pays.
        """
        objs: Dict[str, Any] = {}
        worst = 0
        for key in keys:
            obj, delay = self.load_fanout(key, now_ns)
            objs[key] = obj
            if delay > worst:
                worst = delay
        return objs, worst

    def open_stream(self, key: str, now_ns: int) -> "ReplicaWriteStream":
        """Open a pipelined multi-extent quorum write (COW drain path)."""
        return ReplicaWriteStream(self, key, now_ns)

    def exists(self, key: str) -> bool:
        """Whether a read of ``key`` would currently succeed."""
        return (
            key in self._directory and self.replica_count(key) >= self.read_quorum
        )

    def peek(self, key: str) -> Any:
        """Inspect a blob without charging I/O (GC / availability checks)."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        for server in self.candidates(key):
            if server.up and server.holds(key):
                return server.replicas[key][0]
        raise StorageLostError(f"no reachable replica of {key!r}")

    def delete(self, key: str) -> None:
        """Drop every replica (idempotent; failed servers apply the
        deletion on recovery, modelled as immediate tombstones)."""
        self._directory.pop(key, None)
        for server in self.storage.servers:
            server.drop_replica(key)

    def keys(self) -> Iterator[str]:
        """Iterate every key the service has accepted."""
        return iter(sorted(self._directory))

    def stored_bytes(self) -> int:
        """Logical bytes held (one count per blob, as the base class)."""
        return sum(self._directory.values())

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        return self._directory.get(key, 0)

    def physical_bytes(self) -> int:
        """Replica-weighted bytes actually on server disks.

        Counts only this store's replica entries, so the figure stays
        honest when the cluster is shared with an
        :class:`~repro.stablestore.ErasureStore` (whose shard entries
        live under namespaced server keys).
        """
        return sum(
            nb
            for s in self.storage.servers
            for rkey, (_obj, nb) in s.replicas.items()
            if rkey in self._directory
        )

    # ------------------------------------------------------------------
    @property
    def avg_write_latency_ns(self) -> float:
        """EWMA of client-visible write latency (autonomic feedback).

        Guarded: 0.0 before the first write, so fresh-cluster reporting
        never divides by ``None``.
        """
        return float(self._latency_ewma_ns or 0.0)

    @property
    def avg_read_latency_ns(self) -> float:
        """EWMA of client-visible read latency (0.0 before any read)."""
        return float(self._read_latency_ewma_ns or 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicatedStore rf={self.replication} "
            f"W={self.write_quorum} R={self.read_quorum} "
            f"keys={len(self._directory)}>"
        )


class ReplicaWriteStream:
    """An open pipelined write of one blob across its replica set.

    Opening the stream performs the rendezvous retry walk once (paying
    the ``timeout + backoff`` penalty for each dead preferred server,
    recorded in ``open_penalty_ns``) and pins the replica set.  Each
    :meth:`send` then forwards one extent over the shared ingress link
    and onto every pinned replica disk, returning the delay at which the
    write-quorum-th copy of that extent is durable -- the writeback
    pipeline schedules that instant as the extent's acknowledgement
    event.  :meth:`commit` charges the metadata remainder, installs the
    replicas and the directory entry; the blob becomes visible only
    then, so a crash mid-stream loses time but never publishes a torn
    image.

    If servers fail mid-stream and fewer than W pinned replicas remain
    up, the next ``send``/``commit`` raises
    :class:`~repro.errors.StorageLostError` exactly like a failed
    synchronous quorum write, which the capture paths already handle.
    """

    def __init__(self, store: ReplicatedStore, key: str, now_ns: int) -> None:
        self.store = store
        self.key = key
        self.opened_ns = now_ns
        self.sent_bytes = 0
        self.committed = False
        metrics = store.storage.engine.metrics
        placed: List[StorageServer] = []
        penalty = 0
        backoff = store.backoff_base_ns
        for server in store.candidates(key):
            if len(placed) >= store.replication:
                break
            if not server.up:
                penalty += store.timeout_ns + backoff
                store.write_retries += 1
                metrics.inc("storage.write_retries")
                store.backoff_ns_total += backoff
                backoff = min(int(backoff * store.backoff_factor), store.backoff_cap_ns)
                continue
            placed.append(server)
        if len(placed) < store.write_quorum:
            store.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"write quorum unreachable for {key!r}: "
                f"{len(placed)} of {store.write_quorum} required replicas reachable"
            )
        self.servers = placed
        self.open_penalty_ns = penalty

    def _live_servers(self) -> List[StorageServer]:
        live = [s for s in self.servers if s.up]
        if len(live) < self.store.write_quorum:
            self.store.quorum_write_failures += 1
            self.store.storage.engine.metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"write quorum lost mid-stream for {self.key!r}: "
                f"{len(live)} of {self.store.write_quorum} pinned replicas up"
            )
        return live

    def send(self, nbytes: int, now_ns: int) -> int:
        """Forward one extent to every live pinned replica; returns the
        delay at which the write-quorum-th copy is durable."""
        live = self._live_servers()
        delays: List[int] = []
        for server in live:
            link_delay = self.store.device.submit(now_ns, nbytes)
            disk_delay = server.disk.submit(now_ns + link_delay, nbytes)
            delays.append(link_delay + disk_delay)
        self.sent_bytes += int(nbytes)
        delays.sort()
        return delays[min(self.store.write_quorum, len(live)) - 1]

    def send_chunk(self, chunk: Any, now_ns: int) -> int:
        """Queue one captured chunk (dedup-aware streams override)."""
        return self.send(int(chunk.nbytes), now_ns)

    def commit(self, obj: Any, nbytes: int, now_ns: int) -> int:
        """Write the metadata remainder and make the blob visible.

        Charges only ``nbytes - sent_bytes`` (payload extents already
        travelled during :meth:`send`), so total link and disk traffic
        matches a monolithic :meth:`ReplicatedStore.store` of the same
        image.
        """
        if self.committed:
            raise StorageError(f"stream for {self.key!r} already committed")
        live = self._live_servers()
        remainder = max(0, int(nbytes) - self.sent_bytes)
        delays: List[int] = []
        for server in live:
            link_delay = self.store.device.submit(now_ns, remainder)
            disk_delay = server.disk.submit(now_ns + link_delay, remainder)
            delays.append(link_delay + disk_delay)
            server.put_replica(self.key, obj, nbytes)
        self.committed = True
        st = self.store
        st._directory[self.key] = nbytes
        st.bytes_written += nbytes * len(live)
        delays.sort()
        delay = delays[min(st.write_quorum, len(live)) - 1]
        metrics = st.storage.engine.metrics
        metrics.inc("storage.quorum_writes")
        metrics.inc("storage.replica_bytes_written", nbytes * len(live))
        metrics.observe("storage.write_ns", delay)
        st._observe_write_latency(delay)
        return delay
