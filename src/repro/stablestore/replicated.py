"""The quorum-replicated stable-storage client.

:class:`ReplicatedStore` implements the :class:`~repro.storage.backends.
StorageBackend` protocol, so every mechanism and the cluster use it
exactly like the monolithic :class:`~repro.storage.RemoteStorage` it
replaces -- but behind the protocol each blob is placed on
``replication`` storage servers chosen by rendezvous hashing, writes
return once a W-of-N quorum of replicas is durable, and reads return
once R-of-N replicas respond.

A request that lands on a failed server costs a detection timeout, then
retries against the next candidate after an exponentially-backed-off
delay (the sloppy-quorum walk real replicated stores do).
:class:`~repro.errors.StorageLostError` is raised only when the quorum
itself is unreachable -- fewer than W (or R) live replicas exist.

The client's key directory (which keys exist, at what size) is modelled
as reliable metadata, the usual assumption for a replicated metadata
service; what fails here is the *data* tier, which is where checkpoint
bytes live and what the survivability experiments stress.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError, StorageLostError
from ..simkernel.costs import NS_PER_MS, NS_PER_US
from ..storage.backends import StorageBackend, StorageKind
from .server import StorageCluster, StorageServer

__all__ = ["ReplicatedStore"]


def _score(key: str, server_id: int) -> int:
    """Deterministic rendezvous-hash score (unsalted, unlike ``hash``)."""
    return zlib.crc32(f"{key}|{server_id}".encode())


class ReplicatedStore(StorageBackend):
    """W-of-N quorum writes, R-of-N quorum reads over N storage servers.

    Parameters
    ----------
    storage:
        The :class:`StorageCluster` holding the server nodes and the
        shared ingress link.
    replication:
        Replicas per blob (the paper-era single file server is
        ``replication=1``).
    write_quorum:
        Acks required before a write returns; defaults to a majority of
        ``replication``.
    read_quorum:
        Replica responses required for a read; defaults to 1 (all
        replicas are identical -- checkpoint images are immutable).
    timeout_ns / backoff_base_ns / backoff_factor / backoff_cap_ns:
        The failed-server detection timeout and the exponential backoff
        between successive retries.
    """

    kind = StorageKind.REMOTE
    survives_node_failure = True

    def __init__(
        self,
        storage: StorageCluster,
        replication: int = 2,
        write_quorum: Optional[int] = None,
        read_quorum: int = 1,
        timeout_ns: int = 2 * NS_PER_MS,
        backoff_base_ns: int = 500 * NS_PER_US,
        backoff_factor: float = 2.0,
        backoff_cap_ns: int = 16 * NS_PER_MS,
    ) -> None:
        n = len(storage.servers)
        if not 1 <= replication <= n:
            raise StorageError(
                f"replication factor {replication} needs 1..{n} servers"
            )
        super().__init__(device=storage.link)
        self.storage = storage
        self.replication = replication
        self.write_quorum = write_quorum if write_quorum is not None else replication // 2 + 1
        self.read_quorum = read_quorum
        if not 1 <= self.write_quorum <= replication:
            raise StorageError(f"write quorum {self.write_quorum} not in 1..{replication}")
        if not 1 <= self.read_quorum <= replication:
            raise StorageError(f"read quorum {self.read_quorum} not in 1..{replication}")
        self.timeout_ns = int(timeout_ns)
        self.backoff_base_ns = int(backoff_base_ns)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_ns = int(backoff_cap_ns)
        #: key -> nbytes for every blob the service has accepted.
        self._directory: Dict[str, int] = {}
        # Retry / failure statistics (the E19 quorum-behaviour evidence).
        self.write_retries = 0
        self.read_retries = 0
        self.backoff_ns_total = 0
        self.quorum_write_failures = 0
        self.quorum_read_failures = 0
        self.last_write_latency_ns = 0
        self._latency_ewma_ns: Optional[float] = None
        self.latency_alpha = 0.3

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def candidates(self, key: str) -> List[StorageServer]:
        """All servers in rendezvous-preference order for ``key``.

        The first ``replication`` entries are the preferred replica set;
        the rest are the fallback walk order when preferred servers are
        down.
        """
        return sorted(
            self.storage.servers,
            key=lambda s: (_score(key, s.server_id), s.server_id),
            reverse=True,
        )

    def holders(self, key: str, up_only: bool = True) -> List[int]:
        """Server ids holding a replica of ``key`` (reachable ones only
        by default), in preference order."""
        return [
            s.server_id
            for s in self.candidates(key)
            if s.holds(key) and (s.up or not up_only)
        ]

    def replica_count(self, key: str) -> int:
        """Live (reachable) replicas of ``key``."""
        return len(self.holders(key))

    def under_replicated(self) -> List[str]:
        """Keys with at least one live replica but fewer than the target."""
        return [
            k
            for k in sorted(self._directory)
            if 0 < self.replica_count(k) < self.replication
        ]

    def lost_keys(self) -> List[str]:
        """Keys with no reachable replica at all (data currently lost)."""
        return [k for k in sorted(self._directory) if self.replica_count(k) == 0]

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def store(self, key: str, obj: Any, nbytes: int, now_ns: int) -> int:
        """Replicate ``obj`` onto up to ``replication`` servers.

        Returns the client-visible delay: retry penalties plus the time
        at which the W-th replica is durable (later replicas complete in
        the background, as quorum systems do).
        """
        metrics = self.storage.engine.metrics
        placed: List[Tuple[StorageServer, int]] = []
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(placed) >= self.replication:
                break
            if not server.up:
                # RPC times out, client backs off, walks to the next
                # candidate (sloppy-quorum fallback placement).
                penalty += self.timeout_ns + backoff
                self.write_retries += 1
                metrics.inc("storage.write_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            link_delay = self.device.submit(start, nbytes)
            disk_delay = server.disk.submit(start + link_delay, nbytes)
            placed.append((server, penalty + link_delay + disk_delay))
        if len(placed) < self.write_quorum:
            # Abort: roll the partial replicas back so no orphan copies
            # linger outside the directory.
            for server, _ in placed:
                server.drop_replica(key)
            self.quorum_write_failures += 1
            metrics.inc("storage.quorum_write_failures")
            raise StorageLostError(
                f"write quorum unreachable for {key!r}: "
                f"{len(placed)} of {self.write_quorum} required replicas placed "
                f"({len(self.storage.up_servers())}/{len(self.storage.servers)} "
                f"servers up)"
            )
        for server, _ in placed:
            server.put_replica(key, obj, nbytes)
        self._directory[key] = nbytes
        self.bytes_written += nbytes * len(placed)
        delay = sorted(d for _, d in placed)[self.write_quorum - 1]
        metrics.inc("storage.quorum_writes")
        metrics.inc("storage.replica_bytes_written", nbytes * len(placed))
        metrics.observe("storage.write_ns", delay)
        self.last_write_latency_ns = delay
        if self._latency_ewma_ns is None:
            self._latency_ewma_ns = float(delay)
        else:
            self._latency_ewma_ns = (
                self.latency_alpha * delay
                + (1.0 - self.latency_alpha) * self._latency_ewma_ns
            )
        return delay

    def load(self, key: str, now_ns: int) -> Tuple[Any, int]:
        """Fetch ``obj`` from an R-of-N quorum of replica holders."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        metrics = self.storage.engine.metrics
        nbytes = self._directory[key]
        responders: List[int] = []
        obj: Any = None
        penalty = 0
        backoff = self.backoff_base_ns
        for server in self.candidates(key):
            if len(responders) >= self.read_quorum:
                break
            if not server.holds(key):
                continue  # a "not found" reply is immediate
            if not server.up:
                penalty += self.timeout_ns + backoff
                self.read_retries += 1
                metrics.inc("storage.read_retries")
                self.backoff_ns_total += backoff
                backoff = min(int(backoff * self.backoff_factor), self.backoff_cap_ns)
                continue
            start = now_ns + penalty
            disk_delay = server.disk.submit(start, nbytes)
            link_delay = self.device.submit(start + disk_delay, nbytes)
            responders.append(penalty + disk_delay + link_delay)
            server.bytes_read += nbytes
            obj = server.replicas[key][0]
        if len(responders) < self.read_quorum:
            self.quorum_read_failures += 1
            metrics.inc("storage.quorum_read_failures")
            raise StorageLostError(
                f"read quorum unreachable for {key!r}: "
                f"{len(responders)} of {self.read_quorum} replicas responded"
            )
        self.bytes_read += nbytes
        metrics.inc("storage.quorum_reads")
        metrics.observe("storage.read_ns", max(responders))
        return obj, max(responders)

    def exists(self, key: str) -> bool:
        """Whether a read of ``key`` would currently succeed."""
        return (
            key in self._directory and self.replica_count(key) >= self.read_quorum
        )

    def peek(self, key: str) -> Any:
        """Inspect a blob without charging I/O (GC / availability checks)."""
        if key not in self._directory:
            raise StorageError(f"no blob stored under {key!r}")
        for server in self.candidates(key):
            if server.up and server.holds(key):
                return server.replicas[key][0]
        raise StorageLostError(f"no reachable replica of {key!r}")

    def delete(self, key: str) -> None:
        """Drop every replica (idempotent; failed servers apply the
        deletion on recovery, modelled as immediate tombstones)."""
        self._directory.pop(key, None)
        for server in self.storage.servers:
            server.drop_replica(key)

    def keys(self) -> Iterator[str]:
        """Iterate every key the service has accepted."""
        return iter(sorted(self._directory))

    def stored_bytes(self) -> int:
        """Logical bytes held (one count per blob, as the base class)."""
        return sum(self._directory.values())

    def blob_size(self, key: str) -> int:
        """Accounted size of a stored blob (0 when absent)."""
        return self._directory.get(key, 0)

    def physical_bytes(self) -> int:
        """Replica-weighted bytes actually on server disks."""
        return sum(s.stored_bytes() for s in self.storage.servers)

    # ------------------------------------------------------------------
    @property
    def avg_write_latency_ns(self) -> float:
        """EWMA of client-visible write latency (autonomic feedback)."""
        return float(self._latency_ewma_ns or 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicatedStore rf={self.replication} "
            f"W={self.write_quorum} R={self.read_quorum} "
            f"keys={len(self._directory)}>"
        )
