"""Stable-storage service for the conservative parallel engine.

The storage tier is the one piece of the cluster every machine talks
to, so under sharding it is the main cross-shard channel.  Each storage
server is **pinned to a home shard** (round-robin, ``server % n_shards``
-- a pure function every shard computes identically); compute nodes
reach it with request envelopes and the server answers with ack
envelopes, both carried through the window-barrier exchange of
:mod:`repro.simkernel.parallel`.

Determinism: a server's queue state (``busy_until``) evolves only from
the requests addressed to it, and barrier batches are scheduled in the
canonical envelope order, which any subset inherits -- so the FCFS
schedule a server computes is identical whether its clients share its
shard or live fifteen shards away.  Service times are a pure function
of the request (floor + per-byte cost), and acks travel back with
``(finish - arrival) + propagation``, which is always at least the
propagation floor -- the conservative condition holds on both legs.

The propagation latency is therefore the service's contribution to the
engine lookahead; pass it to
:func:`~repro.simkernel.parallel.derive_lookahead` together with the
link floors.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import StorageError
from ..simkernel.parallel import ShardContext

__all__ = ["ShardStorageService", "server_home_shard"]

#: Envelope kinds the service claims on every shard.
REQ_KIND = "sstore.req"
ACK_KIND = "sstore.ack"


def server_home_shard(server_id: int, n_shards: int) -> int:
    """Home shard of storage server ``server_id`` (round-robin pin)."""
    if server_id < 0:
        raise StorageError(f"bad server id {server_id}")
    return server_id % n_shards


class ShardStorageService:
    """One shard's slice of the storage tier plus its client half.

    Construct one instance per shard (it registers the ``sstore.req``
    and ``sstore.ack`` handlers on the shard context).  The instance
    *serves* the storage servers homed on this shard and *issues*
    requests on behalf of this shard's compute nodes.

    Parameters
    ----------
    ctx:
        The shard context (must have a lookahead; ``propagation_ns``
        must be at least that lookahead, which :func:`derive_lookahead`
        guarantees when the propagation is one of its inputs).
    n_servers:
        Fleet-wide storage server count.
    propagation_ns:
        One-way network latency between any node and any server.
    service_floor_ns:
        Fixed per-request service cost (seek + protocol).
    ns_per_byte:
        Streaming cost; total service is ``floor + bytes * ns_per_byte``.
    """

    def __init__(
        self,
        ctx: ShardContext,
        n_servers: int,
        propagation_ns: int,
        service_floor_ns: int = 0,
        ns_per_byte: float = 0.0,
    ) -> None:
        if n_servers < 1:
            raise StorageError("need at least one storage server")
        if propagation_ns <= 0:
            raise StorageError("propagation latency must be positive")
        if service_floor_ns < 0 or ns_per_byte < 0:
            raise StorageError("service costs cannot be negative")
        self.ctx = ctx
        self.n_servers = int(n_servers)
        self.propagation_ns = int(propagation_ns)
        self.service_floor_ns = int(service_floor_ns)
        self.ns_per_byte = float(ns_per_byte)
        #: FCFS frontier per locally-homed server.
        self.busy_until: Dict[int, int] = {
            s: 0
            for s in range(self.n_servers)
            if server_home_shard(s, ctx.n_shards) == ctx.shard_id
        }
        # Metric objects are resolved once here; the request/ack hot
        # path records through these references instead of a registry
        # name lookup per request.
        m = ctx.engine.metrics
        self._requests = m.counter("sstore.requests")
        self._acks = m.counter("sstore.acks")
        self._req_bytes = m.counter("sstore.req_bytes")
        self._service_hist = m.histogram("sstore.service_ns")
        self._queue_hist = m.histogram("sstore.queue_ns")
        self._rtt_hist = m.histogram("sstore.rtt_ns")
        ctx.on(REQ_KIND, self._on_request)
        ctx.on(ACK_KIND, self._on_ack)

    # ------------------------------------------------------------------
    # Client half
    # ------------------------------------------------------------------
    def request(
        self, server_id: int, nbytes: int, client: int, client_shard: int
    ) -> None:
        """Issue one storage request from ``client`` (a global node id
        homed on ``client_shard``) to ``server_id``.

        The ack will be routed back to ``client_shard`` and recorded
        there (``sstore.acks`` counter, ``sstore.rtt_ns`` histogram).
        """
        if not 0 <= server_id < self.n_servers:
            raise StorageError(f"server {server_id} out of range")
        self.ctx.send(
            REQ_KIND,
            {
                "server": int(server_id),
                "client": int(client),
                "client_shard": int(client_shard),
                "bytes": int(nbytes),
                "sent_ns": self.ctx.engine.now_ns,
            },
            delay_ns=self.propagation_ns,
            dst_shard=server_home_shard(server_id, self.ctx.n_shards),
        )

    # ------------------------------------------------------------------
    # Server half
    # ------------------------------------------------------------------
    def service_ns(self, nbytes: int) -> int:
        """Deterministic service time for an ``nbytes`` request."""
        return self.service_floor_ns + int(nbytes * self.ns_per_byte)

    def _on_request(self, payload: Dict[str, Any]) -> None:
        server = payload["server"]
        frontier = self.busy_until.get(server)
        if frontier is None:
            raise StorageError(
                f"server {server} is not homed on shard {self.ctx.shard_id}"
            )
        now = self.ctx.engine.now_ns
        service = self.service_ns(payload["bytes"])
        start = max(now, frontier)
        finish = start + service
        self.busy_until[server] = finish
        self._requests.inc()
        self._req_bytes.inc(payload["bytes"])
        self._service_hist.observe(service)
        self._queue_hist.observe(start - now)
        # (finish - now) >= service >= 0, plus the propagation floor:
        # the ack delay always satisfies the lookahead.
        self.ctx.send(
            ACK_KIND,
            {
                "server": server,
                "client": payload["client"],
                "bytes": payload["bytes"],
                "sent_ns": payload["sent_ns"],
            },
            delay_ns=(finish - now) + self.propagation_ns,
            dst_shard=payload["client_shard"],
        )

    def _on_ack(self, payload: Dict[str, Any]) -> None:
        self._acks.inc()
        self._rtt_hist.observe(self.ctx.engine.now_ns - payload["sent_ns"])

    # ------------------------------------------------------------------
    def acked(self) -> int:
        """Acks this shard's clients have received so far."""
        return self._acks.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardStorageService shard={self.ctx.shard_id} "
                f"servers={sorted(self.busy_until)}>")
