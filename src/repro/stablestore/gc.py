"""Garbage collection of superseded checkpoint generations.

Every mechanism keys images as ``<mech>/<pid>/<counter>`` (see
:meth:`repro.core.checkpointer.Checkpointer._new_request`), so the
service can group blobs into per-process generation sequences and drop
all but the newest few -- the service-level safety net under the
coordinator's own wave pruning (a dead rank's waves, or a coordinator
that never enabled ``keep_waves``, would otherwise leak every
generation forever).

Incremental images chain back to a full base via ``parent_key``; the
sweeper walks those chains (via the I/O-free ``peek``) and never deletes
an ancestor of a retained generation.

Distributed-snapshot cut manifests are a second kind of GC root: a
manifest's key (``distsnap/<job>/<id>+cut``) is never generation-shaped,
so the manifest itself is untouchable, and every per-rank image it
references (``pinned_keys()``) -- whose keys *are* generation-shaped --
is protected along with its whole delta ancestry.  Without this, a long
gap between cuts would let per-process generation pruning collect a
rank image out of a still-restorable whole-job snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import StorageError
from ..storage.backends import StorageBackend

__all__ = ["GenerationGC"]


def _parse_generation(key: str) -> Optional[Tuple[str, int]]:
    """Split ``mech/pid/counter`` into (group, generation) or None."""
    parts = key.rsplit("/", 1)
    if len(parts) != 2 or not parts[1].isdigit():
        return None
    return parts[0], int(parts[1])


class GenerationGC:
    """Keeps the newest ``keep`` generations per checkpoint group.

    Parameters
    ----------
    store:
        Any :class:`~repro.storage.backends.StorageBackend`; works for
        the replicated service and the monolithic backends alike.
    keep:
        Generations retained per ``<mech>/<pid>`` group.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``storage.gc_collected`` / ``storage.gc_bytes``.
    """

    def __init__(self, store: StorageBackend, keep: int = 2, metrics=None) -> None:
        if keep < 1:
            raise StorageError("GenerationGC must keep at least one generation")
        self.store = store
        self.keep = int(keep)
        self.metrics = metrics
        self.collected = 0
        self.bytes_collected = 0
        self._stopped = False

    # ------------------------------------------------------------------
    def _protected_chain(self, key: str, protected: Set[str]) -> None:
        """Add ``key``'s whole ancestor chain to ``protected``."""
        k: Optional[str] = key
        while k is not None and k not in protected:
            protected.add(k)
            try:
                obj = self.store.peek(k)
            except StorageError:
                break  # unreadable right now; leave deeper ancestors alone
            k = getattr(obj, "parent_key", None)

    def sweep(self) -> List[str]:
        """Delete superseded generations; returns the keys collected."""
        groups: Dict[str, List[Tuple[int, str]]] = {}
        manifest_pins: List[str] = []
        for key in list(self.store.keys()):
            parsed = _parse_generation(key)
            if parsed is None:
                # Foreign key shape: never a candidate -- but a cut
                # manifest hiding behind one pins the rank images it
                # references (I/O-free peek; unreadable blobs are
                # simply not manifests right now).
                try:
                    obj = self.store.peek(key)
                except StorageError:
                    continue
                if getattr(obj, "is_cut_manifest", False):
                    manifest_pins.extend(obj.pinned_keys())
                continue
            group, gen = parsed
            groups.setdefault(group, []).append((gen, key))
        protected: Set[str] = set()
        for key in manifest_pins:
            self._protected_chain(key, protected)
        doomed: List[str] = []
        for group, members in groups.items():
            members.sort()
            for _, key in members[-self.keep:]:
                self._protected_chain(key, protected)
            doomed.extend(key for _, key in members[: -self.keep])
        collected = []
        swept_bytes = 0
        for key in doomed:
            if key in protected:
                continue
            size = self.store.blob_size(key)
            self.store.delete(key)
            collected.append(key)
            self.bytes_collected += size
            swept_bytes += size
        self.collected += len(collected)
        if self.metrics is not None and collected:
            self.metrics.inc("storage.gc_collected", len(collected))
            self.metrics.inc("storage.gc_bytes", swept_bytes)
        return collected

    # ------------------------------------------------------------------
    def start(self, engine, interval_ns: int) -> None:
        """Run :meth:`sweep` periodically on the shared clock."""

        def tick() -> None:
            if self._stopped:
                return
            self.sweep()
            engine.after(int(interval_ns), tick, label="generation-gc")

        engine.after(int(interval_ns), tick, label="generation-gc")

    def stop(self) -> None:
        """Stop the periodic sweep."""
        self._stopped = True
