"""Background re-replication of under-replicated checkpoint blobs.

After a storage-server failure, every blob that had a replica on the
dead server is one failure away from being unrecoverable.  The repairer
does what real replicated stores do: detect the failure, scan for
under-replicated blobs, and copy each one from a surviving holder to a
new server -- paying real device time on the source disk, the shared
ingress link, and the destination disk, so a repair storm competes with
ongoing checkpoint waves for the same bandwidth.
"""

from __future__ import annotations

from typing import Optional, Set

from ..simkernel.costs import NS_PER_MS
from .replicated import ReplicatedStore

__all__ = ["ReplicationRepairer"]


class ReplicationRepairer:
    """Repairs replication after storage-server failures.

    Parameters
    ----------
    store:
        The replicated store to watch.
    engine:
        The shared simulation clock.
    scan_interval_ns:
        Period of the steady-state background scan (repairs also kick
        off shortly after any observed server failure).
    detect_delay_ns:
        Failure-detection latency before the post-failure scan starts.
    max_repairs_per_scan:
        Throttle so a repair storm does not saturate the ingress link.
    """

    def __init__(
        self,
        store: ReplicatedStore,
        engine,
        scan_interval_ns: int = 10 * NS_PER_MS,
        detect_delay_ns: int = 2 * NS_PER_MS,
        max_repairs_per_scan: int = 32,
        auto_start: bool = True,
    ) -> None:
        self.store = store
        self.engine = engine
        self.scan_interval_ns = int(scan_interval_ns)
        self.detect_delay_ns = int(detect_delay_ns)
        self.max_repairs_per_scan = int(max_repairs_per_scan)
        self._inflight: Set[str] = set()
        self._stopped = False
        self.repairs_completed = 0
        self.bytes_rereplicated = 0
        store.storage.on_failure(self._on_server_failure)
        if auto_start:
            self.engine.after(self.scan_interval_ns, self._tick, label="repair-scan")

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop scanning (in-flight copies still complete)."""
        self._stopped = True

    def _on_server_failure(self, server) -> None:
        if self._stopped:
            return
        self.engine.after(self.detect_delay_ns, self.scan, label="repair-detect")

    def _tick(self) -> None:
        if self._stopped:
            return
        self.scan()
        self.engine.after(self.scan_interval_ns, self._tick, label="repair-scan")

    # ------------------------------------------------------------------
    def scan(self) -> int:
        """Start repair copies for under-replicated blobs; returns how
        many copies were initiated."""
        if self._stopped:
            return 0
        started = 0
        for key in self.store.under_replicated():
            if started >= self.max_repairs_per_scan:
                break
            if key in self._inflight:
                continue
            if self._start_repair(key):
                started += 1
        return started

    def _start_repair(self, key: str) -> bool:
        store = self.store
        source = None
        dest = None
        for server in store.candidates(key):
            if not server.up:
                continue
            if server.holds(key):
                if source is None:
                    source = server
            elif dest is None:
                dest = server
        if source is None or dest is None:
            return False  # nothing readable, or nowhere to put a copy
        obj, nbytes = source.replicas[key]
        now = self.engine.now_ns
        # source disk read -> shared link -> destination disk write.
        delay = source.disk.submit(now, nbytes)
        delay += store.device.submit(now + delay, nbytes)
        delay += dest.disk.submit(now + delay, nbytes)
        source.bytes_read += nbytes
        self._inflight.add(key)
        self.engine.after(
            delay,
            lambda: self._finish(key, dest, obj, nbytes, begun_ns=now),
            label="repair-copy",
        )
        return True

    def _finish(self, key: str, dest, obj, nbytes: int, begun_ns: int = 0) -> None:
        self._inflight.discard(key)
        if key not in self.store._directory:
            return  # deleted (GC'd) while the copy was in flight
        if not dest.up:
            return  # destination died mid-copy; a later scan retries
        dest.put_replica(key, obj, nbytes)
        self.repairs_completed += 1
        self.bytes_rereplicated += nbytes
        self.engine.count("replica_repairs")
        self.engine.metrics.inc("storage.repair_bytes", nbytes)
        self.engine.tracer.record(
            "storage.repair",
            begun_ns,
            self.engine.now_ns,
            key=key,
            dest=dest.server_id,
            nbytes=nbytes,
        )
