"""Replicated remote stable-storage service.

The paper's fault-tolerance argument (Section 4.1) hinges on *remote*
stable storage -- "checkpoint data cannot be retrieved in case of a
failure of the machine" when stored locally -- yet a single remote file
server is itself a machine that fails.  This subpackage models the
storage tier the way scalable system-level C/R work after the paper
(petascale checkpoint filesystems, CRAFT-style libraries) found
necessary: a *service* of N storage-server nodes on the cluster's
shared clock, each of which can fail-stop and recover, fronted by a
quorum-replicated client.

* :class:`StorageServer` / :class:`StorageCluster` -- fail-stop storage
  server nodes with per-server disks behind one shared ingress link
  (contention when many compute nodes checkpoint simultaneously).
* :class:`ReplicatedStore` -- a :class:`~repro.storage.StorageBackend`
  placing every blob on ``replication`` servers (rendezvous hashing),
  acknowledging writes at a W-of-N quorum and reads at R-of-N, with
  timeout + exponential-backoff retries around failed servers.
* :class:`ReplicationRepairer` -- background re-replication of
  under-replicated blobs after a storage-server failure.
* :class:`GenerationGC` -- garbage collection of superseded checkpoint
  generations (delta chains are walked and protected).
* :class:`ContentStore` -- content-addressed dedup wrapper: each unique
  page payload costs one quorum write ever, not one per generation.
* :class:`ErasureStore` / :class:`ErasureRepairer` -- Reed-Solomon
  ``k+m`` erasure coding over the same storage servers: any ``k`` of
  ``k+m`` shards reconstruct the blob at a fraction of the physical
  bytes full replication costs.  :meth:`ErasureStore.store_delta` /
  :class:`DeltaWriteStream` re-protect an f-dirty checkpoint at O(f)
  cost by delta-updating parity (GF linearity).
* :class:`HierarchicalStore` -- multi-level stable storage (node-local
  scratch, partner replicas, erasure-coded group, remote replicated
  tier) with promotion/demotion and cross-level reprotection.
"""

from .contentstore import ContentStore, DedupWriteStream, ImageManifest
from .erasure import (
    KERNEL_STATS,
    DeltaWriteStream,
    ErasureRepairer,
    ErasureStore,
    ErasureWriteStream,
    Shard,
    merge_extents,
    reset_kernel_stats,
    rs_decode,
    rs_encode,
    rs_rebuild_shard,
    rs_rebuild_shards,
    rs_update_parity,
)
from .gc import GenerationGC
from .hierarchy import HierarchicalStore, HierarchyWriteStream, StorageLevel
from .pipeline import WritebackPipeline
from .repair import ReplicationRepairer
from .replicated import ReplicatedStore, ReplicaWriteStream
from .server import StorageCluster, StorageServer, StorageServerState
from .shardsvc import ShardStorageService, server_home_shard

__all__ = [
    "StorageServer",
    "StorageServerState",
    "StorageCluster",
    "ReplicatedStore",
    "ReplicaWriteStream",
    "ReplicationRepairer",
    "GenerationGC",
    "ContentStore",
    "ImageManifest",
    "DedupWriteStream",
    "WritebackPipeline",
    "ShardStorageService",
    "server_home_shard",
    "ErasureStore",
    "ErasureWriteStream",
    "DeltaWriteStream",
    "ErasureRepairer",
    "Shard",
    "rs_encode",
    "rs_decode",
    "rs_update_parity",
    "rs_rebuild_shard",
    "rs_rebuild_shards",
    "merge_extents",
    "KERNEL_STATS",
    "reset_kernel_stats",
    "StorageLevel",
    "HierarchicalStore",
    "HierarchyWriteStream",
]
