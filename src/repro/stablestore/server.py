"""Storage-server nodes: the machines behind "remote stable storage".

A :class:`StorageServer` is a fail-stop node like any compute node in
:mod:`repro.cluster.machine`: it lives on the shared engine clock, can
fail and recover, and while failed its replicas are unreachable.  Its
disk is a queued-bandwidth :class:`~repro.storage.devices.Device`; all
servers sit behind one shared ingress network link, so simultaneous
checkpoint waves from many compute nodes queue on the link exactly like
concurrent writers on a real parallel filesystem's I/O network.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import StorageError
from ..simkernel.costs import NS_PER_S
from ..storage.devices import Device, disk_device, network_device

__all__ = ["StorageServerState", "StorageServer", "StorageCluster"]


class StorageServerState(str, Enum):
    """Fail-stop lifecycle of a storage server."""

    UP = "up"
    FAILED = "failed"


class StorageServer:
    """One storage node: a disk full of replicas plus fail-stop state."""

    def __init__(self, server_id: int, disk: Optional[Device] = None) -> None:
        self.server_id = server_id
        self.disk = disk or disk_device(f"disk[store{server_id}]")
        self.state = StorageServerState.UP
        #: key -> (obj, nbytes): the replicas this server holds.
        self.replicas: Dict[str, Tuple[Any, int]] = {}
        self.failures = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def up(self) -> bool:
        """Whether the server is serving requests."""
        return self.state == StorageServerState.UP

    def holds(self, key: str) -> bool:
        """Whether a replica of ``key`` is on this server's disk."""
        return key in self.replicas

    def put_replica(self, key: str, obj: Any, nbytes: int) -> None:
        """Install one replica (accounting only; timing is the caller's)."""
        self.replicas[key] = (obj, nbytes)
        self.bytes_written += nbytes

    def drop_replica(self, key: str) -> None:
        """Remove a replica if present (idempotent)."""
        self.replicas.pop(key, None)

    def stored_bytes(self) -> int:
        """Bytes of replicas currently on disk."""
        return sum(n for _, n in self.replicas.values())

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop: replicas become unreachable until recovery."""
        if self.state == StorageServerState.FAILED:
            return
        self.state = StorageServerState.FAILED
        self.failures += 1

    def recover(self, data_survived: bool = True) -> None:
        """Reboot the server; the disk survives a power-cycle by default."""
        self.state = StorageServerState.UP
        if not data_survived:
            self.replicas.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StorageServer {self.server_id} {self.state.value} "
            f"replicas={len(self.replicas)}>"
        )


class StorageCluster:
    """N storage servers behind one shared ingress link.

    Parameters
    ----------
    engine:
        The shared simulation clock (the compute cluster's engine, so
        storage failures and repairs interleave with everything else).
    n_servers:
        How many storage-server nodes to build.
    link:
        The shared network path every transfer crosses; defaults to a
        GigE-class device, the contention point under simultaneous
        checkpoint waves.
    """

    def __init__(
        self,
        engine,
        n_servers: int,
        link: Optional[Device] = None,
    ) -> None:
        if n_servers < 1:
            raise StorageError("storage cluster needs at least one server")
        self.engine = engine
        self.link = link or network_device("nic[stablestore]")
        self.servers: List[StorageServer] = [
            StorageServer(i) for i in range(n_servers)
        ]
        self._failure_watchers: List[Callable[[StorageServer], None]] = []

    # ------------------------------------------------------------------
    def server(self, server_id: int) -> StorageServer:
        """Server by id."""
        if not 0 <= server_id < len(self.servers):
            raise StorageError(f"no storage server {server_id}")
        return self.servers[server_id]

    def up_servers(self) -> List[StorageServer]:
        """Every currently-serving storage server."""
        return [s for s in self.servers if s.up]

    def on_failure(self, fn: Callable[[StorageServer], None]) -> None:
        """Register a callback fired when any storage server fails."""
        self._failure_watchers.append(fn)

    def fail_server(self, server_id: int) -> None:
        """Inject a fail-stop on one storage server, now."""
        server = self.server(server_id)
        if not server.up:
            return
        server.fail()
        self.engine.count("storage_server_failures")
        for fn in list(self._failure_watchers):
            fn(server)

    def repair_server(self, server_id: int, data_survived: bool = True) -> None:
        """Bring a failed server back (disk intact unless told otherwise)."""
        self.server(server_id).recover(data_survived=data_survived)

    def schedule_failures(
        self,
        model,
        server_ids: Optional[List[int]] = None,
        horizon_s: Optional[float] = None,
    ) -> int:
        """Arm servers with sampled times-to-failure (storage tier MTBF).

        Mirrors :meth:`repro.cluster.Cluster.schedule_failures`: only the
        first failure per server is armed; returns how many were
        scheduled within the horizon.
        """
        ids = server_ids if server_ids is not None else [s.server_id for s in self.servers]
        scheduled = 0
        for sid in ids:
            ttf_s = model.draw_ttf_s()
            if horizon_s is not None and ttf_s > horizon_s:
                continue
            self.engine.after(
                int(ttf_s * NS_PER_S),
                lambda s=sid: self.fail_server(s),
                label="storage-server-fail",
            )
            scheduled += 1
        return scheduled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageCluster {len(self.up_servers())}/{len(self.servers)} up>"
