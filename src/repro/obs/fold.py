"""Shard-count-invariant folding of ``repro.obs`` exports.

The conservative parallel engine gives every shard its own engine and
therefore its own :class:`~repro.obs.MetricsRegistry`.  To compare a
1-shard run against an N-shard run byte-for-byte, the N per-shard
export documents must fold into one canonical document through an
operation that is **associative and commutative** -- the grouping of
machines into shards must not be recoverable from the result:

* counters: integer sum (event contributions are disjoint per shard);
* histograms: identical fixed buckets (enforced), element-wise count
  sum, ``count``/``sum`` sums, min-of-mins / max-of-maxes;
* gauges: maximum for numeric values.  Last-value-wins is *not*
  order-invariant across shards, so sharded scenarios should prefer
  counters and histograms; the max fold is provided for completeness
  and documented as such.  Non-numeric gauges (labels, mode strings)
  fold only when identical in every shard -- otherwise the fold fails
  with a per-metric error rather than a ``TypeError``;
* spans: concatenated and re-sorted by ``(begin_ns, span_id)``.  Span
  ids are engine-scoped, so cross-shard id collisions are possible;
  the byte-identity gate therefore applies to span-free runs (the
  sharded fleet scenarios trace nothing);
* ``virtual_time_ns``: maximum (all shards park at the same barrier,
  so in practice the values are equal);
* ``meta``: must be identical across shards (it carries experiment
  parameters, never shard identity).

Engine-internal metrics (``engine.*``) count scheduler bookkeeping --
dispatcher events, compactions -- whose *number* legitimately depends
on how machines are grouped into engines.  :func:`strip_metrics` drops
them before folding; the parallel runner reports scheduler totals in
its barrier stats instead.

``fold_exports([doc])`` of a single document normalizes through the
same code path as an N-way fold, which is precisely what makes
"1 shard vs N shards" testable as byte equality of the folded JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ObservabilityError
from .export import SCHEMA_VERSION, to_json, validate_export

__all__ = [
    "ENGINE_METRIC_PREFIXES",
    "fold_exports",
    "fold_exports_arrays",
    "strip_metrics",
]

#: Metric-name prefixes that are shard-topology-dependent by nature.
ENGINE_METRIC_PREFIXES: Tuple[str, ...] = ("engine.",)


def strip_metrics(
    doc: Mapping[str, Any],
    prefixes: Sequence[str] = ENGINE_METRIC_PREFIXES,
) -> Dict[str, Any]:
    """Return a copy of ``doc`` without metrics under ``prefixes``."""
    out = dict(doc)
    metrics = {}
    for group, values in doc["metrics"].items():
        metrics[group] = {
            name: value
            for name, value in values.items()
            if not any(name.startswith(p) for p in prefixes)
        }
    out["metrics"] = metrics
    return out


def _min_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _max_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _fold_gauge(name: str, a, b):
    """Fold two shard values of one gauge.

    Numeric gauges fold with ``max`` (order-invariant).  Non-numeric
    gauges -- labels, mode strings -- have no meaningful maximum:
    identical values pass through (a constant label is shard-
    invariant), differing ones raise a per-metric
    :class:`~repro.errors.ObservabilityError` instead of the bare
    ``TypeError`` ``max`` used to throw.
    """
    numeric = (int, float)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return max(a, b)
    if a == b:
        return a
    raise ObservabilityError(
        f"gauge {name!r}: cannot fold non-numeric values {a!r} and {b!r} "
        "across shards (max is only defined for numbers; non-numeric "
        "gauges must be identical in every shard)"
    )


def _validate_foldable(docs: Sequence[Mapping[str, Any]]) -> None:
    """Shared precondition of both fold paths."""
    if not docs:
        raise ObservabilityError("nothing to fold")
    for doc in docs:
        validate_export(doc)
    meta_key = to_json(docs[0]["meta"])
    for doc in docs[1:]:
        if to_json(doc["meta"]) != meta_key:
            raise ObservabilityError(
                "cannot fold exports with differing meta (meta must not "
                "carry shard identity)"
            )


def _fold_rest(docs: Sequence[Mapping[str, Any]]) -> Tuple[
        Dict[str, Any], List[Dict[str, Any]], int, Any]:
    """Fold the non-vectorizable pieces: gauges, spans, virtual time."""
    gauges: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    spans_dropped = 0
    virtual_time = None
    for doc in docs:
        for name, v in doc["metrics"]["gauges"].items():
            gauges[name] = v if name not in gauges else _fold_gauge(
                name, gauges[name], v
            )
        spans.extend(dict(s) for s in doc["spans"])
        spans_dropped += doc.get("spans_dropped", 0)
        if doc.get("virtual_time_ns") is not None:
            virtual_time = _max_opt(virtual_time, doc["virtual_time_ns"])
    spans.sort(key=lambda s: (s["begin_ns"], s["span_id"]))
    return gauges, spans, spans_dropped, virtual_time


def _assemble(docs, counters, gauges, histograms, spans, spans_dropped,
              virtual_time) -> Dict[str, Any]:
    """Canonical folded document (shared by both fold paths)."""
    out: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "meta": {str(k): v for k, v in sorted(docs[0]["meta"].items())},
        "virtual_time_ns": virtual_time,
        "metrics": {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {k: histograms[k] for k in sorted(histograms)},
        },
        "spans": spans,
        "spans_dropped": spans_dropped,
    }
    validate_export(out)
    return out


def fold_exports(docs: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard export documents into one canonical document.

    Raises :class:`~repro.errors.ObservabilityError` when the documents
    are not foldable (mismatched meta, mismatched histogram buckets).
    The result is re-validated before it is returned.
    """
    _validate_foldable(docs)

    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for doc in docs:
        m = doc["metrics"]
        for name, v in m["counters"].items():
            counters[name] = counters.get(name, 0) + v
        for name, h in m["histograms"].items():
            acc = histograms.get(name)
            if acc is None:
                histograms[name] = {
                    "buckets": list(h["buckets"]),
                    "counts": list(h["counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h.get("min"),
                    "max": h.get("max"),
                }
            else:
                if list(h["buckets"]) != acc["buckets"]:
                    raise ObservabilityError(
                        f"histogram {name!r} bucket mismatch across shards"
                    )
                acc["counts"] = [a + b for a, b in zip(acc["counts"],
                                                       h["counts"])]
                acc["count"] += h["count"]
                acc["sum"] += h["sum"]
                acc["min"] = _min_opt(acc["min"], h.get("min"))
                acc["max"] = _max_opt(acc["max"], h.get("max"))
    gauges, spans, spans_dropped, virtual_time = _fold_rest(docs)
    return _assemble(docs, counters, gauges, histograms, spans,
                     spans_dropped, virtual_time)


def fold_exports_arrays(docs: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Array-backed fold: byte-identical output to :func:`fold_exports`.

    The per-shard dict walk above touches every counter and every
    histogram bucket once per document; with many shards (the shm
    transport folds worker-side, then the driver folds workers) the
    bucket vectors dominate.  This path stacks same-name histogram
    ``counts`` into one int64 matrix and sums along the shard axis, and
    sums counters through a packed column when every document carries
    the same counter set (the common case -- shards run the same
    scenario code).  Scalar summaries (``sum``/``min``/``max``), gauges
    and spans still fold sequentially in document order, so float
    accumulation order -- and therefore the output bytes -- match the
    dict fold exactly.  Property-tested against :func:`fold_exports` in
    ``tests/obs/test_fold.py``.
    """
    _validate_foldable(docs)

    cnames = sorted({n for d in docs for n in d["metrics"]["counters"]})
    totals = np.zeros(len(cnames), dtype=np.int64)
    index = {n: i for i, n in enumerate(cnames)}
    for doc in docs:
        c = doc["metrics"]["counters"]
        if len(c) == len(cnames):
            totals += np.fromiter((c[n] for n in cnames), np.int64,
                                  len(cnames))
        else:  # sparse document: fold only what it carries
            for n, v in c.items():
                totals[index[n]] += v
    counters = {n: int(totals[i]) for i, n in enumerate(cnames)}

    hnames = sorted({n for d in docs for n in d["metrics"]["histograms"]})
    histograms: Dict[str, Dict[str, Any]] = {}
    for name in hnames:
        hs = [d["metrics"]["histograms"][name] for d in docs
              if name in d["metrics"]["histograms"]]
        buckets = list(hs[0]["buckets"])
        for h in hs[1:]:
            if list(h["buckets"]) != buckets:
                raise ObservabilityError(
                    f"histogram {name!r} bucket mismatch across shards"
                )
        counts = np.asarray([h["counts"] for h in hs], dtype=np.int64)
        total = hs[0]["sum"]
        mn, mx = hs[0].get("min"), hs[0].get("max")
        count = hs[0]["count"]
        for h in hs[1:]:
            total += h["sum"]
            count += h["count"]
            mn = _min_opt(mn, h.get("min"))
            mx = _max_opt(mx, h.get("max"))
        histograms[name] = {
            "buckets": buckets,
            "counts": [int(x) for x in counts.sum(axis=0)],
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
        }

    gauges, spans, spans_dropped, virtual_time = _fold_rest(docs)
    return _assemble(docs, counters, gauges, histograms, spans,
                     spans_dropped, virtual_time)
