"""Typed metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds every metric under a flat dotted name.
Metrics are created on first use and strongly typed from then on --
bumping a histogram as a counter raises
:class:`~repro.errors.ObservabilityError` instead of silently recording
garbage, which is what the untyped ``Engine.counters`` dict allowed.

Histograms use *fixed* bucket boundaries chosen at creation (by default
inferred from the metric name suffix: ``*_ns`` gets virtual-time
buckets, ``*_bytes``/``*bytes`` gets byte-size buckets), so two runs
that observe the same values always produce identical bucket vectors --
no adaptive resizing, no wall-clock dependence.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_NS_BUCKETS",
    "BYTES_BUCKETS",
    "GENERIC_BUCKETS",
    "DEPTH_BUCKETS",
]

#: Virtual-time buckets: 1us .. 100s in decades (values in ns).
TIME_NS_BUCKETS: Tuple[int, ...] = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
)

#: Byte-size buckets: one page .. 4 GiB.
BYTES_BUCKETS: Tuple[int, ...] = (
    4_096,
    65_536,
    1 << 20,
    16 << 20,
    256 << 20,
    4 << 30,
)

#: Fallback for dimensionless histograms: powers of ten.
GENERIC_BUCKETS: Tuple[int, ...] = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)

#: Small-cardinality occupancy buckets for queue/pipeline depths
#: (``*_depth`` / ``*_inflight``): window sizes live in 1..~100.
DEPTH_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class Counter:
    """Monotonic integer counter."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        """Add ``delta`` (may be any integer; monotonic by convention)."""
        self.value += delta

    def to_dict(self) -> int:
        """Export value (a plain int)."""
        return int(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-value-wins instantaneous measurement."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float, str]) -> None:
        """Record the current value (numbers, or a label-style string)."""
        self.value = value

    def to_dict(self) -> Union[int, float]:
        """Export value (a plain number)."""
        v = self.value
        return int(v) if isinstance(v, bool) else v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    kind = "histogram"
    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[Union[int, float]]) -> None:
        if not buckets:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        bounds = tuple(sorted(buckets))
        if len(set(bounds)) != len(bounds):
            raise ObservabilityError(f"histogram {name!r} has duplicate bucket bounds")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Sequence[Union[int, float]]) -> None:
        """Record a batch of samples in one pass.

        Equivalent to calling :meth:`observe` once per value in order
        (the count/sum/min/max summary folds sequentially, so even
        float accumulation matches), but the bucket assignment is one
        vectorized ``searchsorted`` + ``bincount`` instead of a bisect
        per sample -- the batched-frame path the parallel window driver
        uses to avoid per-window histogram churn.
        """
        if not len(values):
            return
        arr = np.asarray(values)
        idx = np.searchsorted(np.asarray(self.buckets), arr, side="left")
        for i, c in enumerate(np.bincount(idx, minlength=len(self.counts))):
            if c:
                self.counts[i] += int(c)
        self.count += len(values)
        for v in values:
            self.sum += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        """Arithmetic mean of observed samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Export the bucket vector and count/sum/min/max summary."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} sum={self.sum}>"


def default_buckets(name: str) -> Tuple[Union[int, float], ...]:
    """Bucket preset inferred from the metric-name suffix."""
    if name.endswith("_ns"):
        return TIME_NS_BUCKETS
    if name.endswith("bytes") or name.endswith("_bytes"):
        return BYTES_BUCKETS
    if name.endswith("_depth") or name.endswith("_inflight"):
        return DEPTH_BUCKETS
    return GENERIC_BUCKETS


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Flat namespace of typed metrics, created on first use.

    Parameters
    ----------
    clock:
        Optional callable returning the current virtual time in ns; kept
        so exports can stamp the capture time without touching wall
        clocks.
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._clock = clock

    # ------------------------------------------------------------------
    def _get(self, name: str, cls, factory) -> _Metric:
        m = self._metrics.get(name)
        if m is None:
            m = factory()
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise ObservabilityError(
                f"metric {name!r} is a {m.kind}, not a {cls.kind}"
            )
        return m

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Optional[Sequence[Union[int, float]]] = None
    ) -> Histogram:
        """Get or create the named histogram (fixed buckets, set once)."""
        return self._get(
            name,
            Histogram,
            lambda: Histogram(name, buckets if buckets is not None else default_buckets(name)),
        )

    # -- convenience recording ----------------------------------------
    def inc(self, name: str, delta: int = 1) -> None:
        """Bump the named counter."""
        self.counter(name).inc(delta)

    def set_gauge(self, name: str, value: Union[int, float, str]) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: Union[int, float],
        buckets: Optional[Sequence[Union[int, float]]] = None,
    ) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name, buckets).observe(value)

    def observe_many(
        self,
        name: str,
        values: Sequence[Union[int, float]],
        buckets: Optional[Sequence[Union[int, float]]] = None,
    ) -> None:
        """Record a batch of samples into the named histogram."""
        self.histogram(name, buckets).observe_many(values)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        """The metric object under ``name`` (None when absent)."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def counters(self) -> Dict[str, int]:
        """name -> value for every counter (sorted by name)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic export: kind-grouped, name-sorted."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            m = self._metrics[name]
            out[m.kind + "s"][name] = m.to_dict()
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._metrics)} metrics>"


class CountersView(Mapping):
    """Dict-like compatibility view of a registry's counters.

    ``Engine.counters`` used to be a bare ``Dict[str, int]``; this view
    preserves that reading (and writing) surface while the data lives in
    the typed registry.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> int:
        m = self._registry.get(name)
        if not isinstance(m, Counter):
            raise KeyError(name)
        return m.value

    def __setitem__(self, name: str, value: int) -> None:
        self._registry.counter(name).value = int(value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.counters())

    def __len__(self) -> int:
        return len(self._registry.counters())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountersView({self._registry.counters()!r})"
