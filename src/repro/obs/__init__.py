"""Structured observability over the simulator's virtual clock.

The autonomic direction the paper argues for -- a checkpoint entity
that retunes itself from its own measurements -- needs one consistent
source of truth for those measurements.  This package provides it:

* :class:`MetricsRegistry` -- typed counters, gauges and fixed-bucket
  histograms, keyed by a flat dotted name (``checkpoint.stall_ns``,
  ``dedup.hits``).  The engine owns one registry; every subsystem
  records into it, replacing the untyped ``Engine.counters`` dict
  (which survives as a compatibility view over the registry).
* :class:`Tracer` / :class:`Span` -- span-based tracing on virtual
  time: begin/end timestamps, parent spans, attributes.  Replaces the
  flat ``TraceRecord`` list for structural analysis; ordering of the
  exported span log is deterministic for a given seed + call sequence.
* :func:`export_obs` / :func:`to_json` / :func:`validate_export` --
  one canonical, schema-checked JSON document (``repro.obs/v1``) that
  experiments dump alongside their text tables and the timeline
  renderer consumes.

Nothing here reads wall-clock time: all timestamps come from the
engine's virtual clock, so two same-seed runs export byte-identical
documents.
"""

from .export import SCHEMA_VERSION, export_obs, to_json, validate_export
from .fold import fold_exports, fold_exports_arrays, strip_metrics
from .metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_NS_BUCKETS,
)
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_NS_BUCKETS",
    "BYTES_BUCKETS",
    "Span",
    "Tracer",
    "SCHEMA_VERSION",
    "export_obs",
    "to_json",
    "validate_export",
    "fold_exports",
    "fold_exports_arrays",
    "strip_metrics",
]
