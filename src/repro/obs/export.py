"""Canonical JSON export of a run's metrics and span log.

One document shape (``repro.obs/v1``) is shared by every consumer: the
timeline renderer, the E-series experiment dumps, and the CI round-trip
check.  :func:`to_json` is canonical (sorted keys, no whitespace), so
"two same-seed runs export the same document" is testable as byte
equality.

Validation is hand-rolled -- the container deliberately carries no
``jsonschema`` dependency -- but checks the same things a schema would:
required keys, value types, bucket/count arity, span ordering and
parent references.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from ..errors import ObservabilityError
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["SCHEMA_VERSION", "export_obs", "to_json", "validate_export"]

SCHEMA_VERSION = "repro.obs/v1"


def export_obs(
    metrics: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    meta: Optional[Mapping[str, Any]] = None,
    now_ns: Optional[int] = None,
) -> Dict[str, Any]:
    """Build the export document (validated before it is returned)."""
    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "meta": {str(k): v for k, v in sorted((meta or {}).items())},
        "virtual_time_ns": int(now_ns) if now_ns is not None else None,
        "metrics": metrics.to_dict(),
        "spans": tracer.export() if tracer is not None else [],
        "spans_dropped": tracer.dropped if tracer is not None else 0,
    }
    validate_export(doc)
    return doc


def to_json(doc: Mapping[str, Any]) -> str:
    """Canonical serialization: sorted keys, compact separators."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _fail(msg: str) -> None:
    raise ObservabilityError(f"invalid obs export: {msg}")


def _check_scalar(path: str, v: Any, allow_none: bool = False) -> None:
    if v is None and allow_none:
        return
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        _fail(f"{path} must be a number, got {type(v).__name__}")


def validate_export(doc: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.ObservabilityError` on schema violations."""
    if not isinstance(doc, Mapping):
        _fail("document must be a mapping")
    for key in ("schema", "meta", "metrics", "spans"):
        if key not in doc:
            _fail(f"missing top-level key {key!r}")
    if doc["schema"] != SCHEMA_VERSION:
        _fail(f"schema {doc['schema']!r} != {SCHEMA_VERSION!r}")
    if not isinstance(doc["meta"], Mapping):
        _fail("meta must be a mapping")

    metrics = doc["metrics"]
    if not isinstance(metrics, Mapping):
        _fail("metrics must be a mapping")
    for group in ("counters", "gauges", "histograms"):
        if group not in metrics or not isinstance(metrics[group], Mapping):
            _fail(f"metrics.{group} missing or not a mapping")
    for name, v in metrics["counters"].items():
        if isinstance(v, bool) or not isinstance(v, int):
            _fail(f"counter {name!r} value must be an int")
    for name, v in metrics["gauges"].items():
        # Gauges also admit label-style string values (e.g. a mode
        # name); folding requires those to be shard-invariant.
        if not isinstance(v, (int, float, str)):
            _fail(f"gauge {name!r} must be a number or string, "
                  f"got {type(v).__name__}")
    for name, h in metrics["histograms"].items():
        if not isinstance(h, Mapping):
            _fail(f"histogram {name!r} must be a mapping")
        for key in ("buckets", "counts", "count", "sum"):
            if key not in h:
                _fail(f"histogram {name!r} missing {key!r}")
        buckets, counts = h["buckets"], h["counts"]
        if not isinstance(buckets, list) or not isinstance(counts, list):
            _fail(f"histogram {name!r} buckets/counts must be lists")
        if len(counts) != len(buckets) + 1:
            _fail(
                f"histogram {name!r} needs len(buckets)+1 counts "
                f"({len(buckets) + 1}), got {len(counts)}"
            )
        if list(buckets) != sorted(buckets):
            _fail(f"histogram {name!r} buckets must be sorted")
        if sum(counts) != h["count"]:
            _fail(f"histogram {name!r} counts do not sum to count")
        _check_scalar(f"histogram {name!r} min", h.get("min"), allow_none=True)
        _check_scalar(f"histogram {name!r} max", h.get("max"), allow_none=True)

    spans = doc["spans"]
    if not isinstance(spans, list):
        _fail("spans must be a list")
    seen_ids = set()
    prev_key = None
    for i, s in enumerate(spans):
        if not isinstance(s, Mapping):
            _fail(f"spans[{i}] must be a mapping")
        for key in ("span_id", "name", "begin_ns", "end_ns", "parent_id", "attrs"):
            if key not in s:
                _fail(f"spans[{i}] missing {key!r}")
        if not isinstance(s["span_id"], int) or not isinstance(s["begin_ns"], int):
            _fail(f"spans[{i}] span_id/begin_ns must be ints")
        if s["end_ns"] is not None:
            if not isinstance(s["end_ns"], int):
                _fail(f"spans[{i}] end_ns must be an int or null")
            if s["end_ns"] < s["begin_ns"]:
                _fail(f"spans[{i}] ends before it begins")
        if not isinstance(s["name"], str):
            _fail(f"spans[{i}] name must be a string")
        if not isinstance(s["attrs"], Mapping):
            _fail(f"spans[{i}] attrs must be a mapping")
        for k, v in s["attrs"].items():
            if v is not None and not isinstance(v, (bool, int, float, str)):
                _fail(f"spans[{i}] attr {k!r} is not a JSON scalar")
        key = (s["begin_ns"], s["span_id"])
        if prev_key is not None and key < prev_key:
            _fail(f"spans[{i}] out of (begin_ns, span_id) order")
        prev_key = key
        seen_ids.add(s["span_id"])
    if not doc.get("spans_dropped"):
        # With retention-capped tracing a parent may have been dropped;
        # only insist on closed references when nothing was dropped.
        for i, s in enumerate(spans):
            pid = s["parent_id"]
            if pid is not None and pid not in seen_ids:
                _fail(f"spans[{i}] references unknown parent {pid}")
