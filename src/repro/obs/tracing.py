"""Span-based tracing on the virtual clock.

A :class:`Span` is a named interval of virtual time with attributes and
an optional parent.  Spans replace the engine's flat ``TraceRecord``
list for structural analysis: a checkpoint is one span whose begin/end
are the request's initiation and completion, a node failure is an
instant (zero-length) span, a storage repair is a span covering the
copy.

Determinism guarantees:

* Span ids come from a process-local monotonic counter seeded at 1; the
  same call sequence yields the same ids.
* All timestamps are read from the supplied virtual ``clock``; nothing
  reads wall-clock time.
* :meth:`Tracer.export` orders spans by ``(begin_ns, span_id)``, so two
  same-seed runs export identical lists.

Spans for work that may be abandoned mid-flight (a capture generator
dropped when its node fails) are ended explicitly by the owner of the
lifecycle (e.g. ``Checkpointer._complete``/``_fail``); an abandoned span
simply stays open (``end_ns is None``) rather than recording a
garbage-collection-dependent end time.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One traced interval of virtual time."""

    __slots__ = ("span_id", "name", "begin_ns", "end_ns", "parent_id", "attrs", "_tracer")

    def __init__(
        self,
        span_id: int,
        name: str,
        begin_ns: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
        tracer: "Tracer",
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.begin_ns = begin_ns
        self.end_ns: Optional[int] = None
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer

    def end(self, **attrs: Any) -> "Span":
        """Close the span at the current virtual time (idempotent)."""
        if self.end_ns is None:
            self.end_ns = self._tracer._clock()
        if attrs:
            self.attrs.update(attrs)
        return self

    @property
    def finished(self) -> bool:
        """Whether :meth:`end` has run."""
        return self.end_ns is not None

    @property
    def duration_ns(self) -> Optional[int]:
        """Span length in virtual ns (None while open)."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.begin_ns

    def to_dict(self) -> Dict[str, Any]:
        """Export dict with JSON-safe, deterministically-ordered attrs."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "begin_ns": self.begin_ns,
            "end_ns": self.end_ns,
            "parent_id": self.parent_id,
            "attrs": {k: _jsonable(v) for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"..{self.end_ns}" if self.end_ns is not None else " open"
        return f"<Span #{self.span_id} {self.name} @{self.begin_ns}{state}>"


def _jsonable(v: Any) -> Any:
    """Coerce an attribute value to a JSON-safe scalar."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    return str(v)


class Tracer:
    """Records spans against a virtual clock.

    Parameters
    ----------
    clock:
        Callable returning the current virtual time in nanoseconds.
    max_spans:
        Optional retention cap; once reached, further spans are counted
        in :attr:`dropped` instead of stored (long unattended runs).
    """

    def __init__(self, clock: Callable[[], int], max_spans: Optional[int] = None) -> None:
        self._clock = clock
        self._seq = itertools.count(1)
        self.spans: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._stack: List[int] = []

    # ------------------------------------------------------------------
    def start_span(
        self, name: str, parent_id: Optional[int] = None, **attrs: Any
    ) -> Span:
        """Open a span now; close it later with :meth:`Span.end`.

        The parent defaults to the innermost active ``with span(...)``
        block (explicit ``parent_id`` overrides).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        sp = Span(next(self._seq), name, self._clock(), parent_id, dict(attrs), self)
        self._keep(sp)
        return sp

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context manager: span covers the block, children nest under it.

        Only use around code that runs to completion within one virtual
        instantiation of control flow -- for work driven by generators
        that may be abandoned, pair :meth:`start_span` with an explicit
        ``end()`` at the lifecycle terminus instead.
        """
        sp = self.start_span(name, **attrs)
        self._stack.append(sp.span_id)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.end()

    def instant(self, name: str, **attrs: Any) -> Span:
        """A zero-length span marking a point event (failure, retune)."""
        sp = self.start_span(name, **attrs)
        sp.end_ns = sp.begin_ns
        return sp

    def record(
        self,
        name: str,
        begin_ns: int,
        end_ns: int,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-measured span (begin/end known post hoc)."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        sp = Span(next(self._seq), name, int(begin_ns), parent_id, dict(attrs), self)
        sp.end_ns = int(end_ns)
        self._keep(sp)
        return sp

    def _keep(self, sp: Span) -> None:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(sp)

    # ------------------------------------------------------------------
    def ordered(self) -> List[Span]:
        """All spans (open ones included) in (begin_ns, id) order."""
        return sorted(self.spans, key=lambda s: (s.begin_ns, s.span_id))

    def finished(self, name: Optional[str] = None) -> List[Span]:
        """Closed spans, optionally filtered by name, in export order."""
        out = [
            s
            for s in self.spans
            if s.end_ns is not None and (name is None or s.name == name)
        ]
        out.sort(key=lambda s: (s.begin_ns, s.span_id))
        return out

    def export(self) -> List[Dict[str, Any]]:
        """All spans as export dicts, ordered by (begin_ns, id)."""
        return [s.to_dict() for s in self.ordered()]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer spans={len(self.spans)} dropped={self.dropped}>"
