"""FIFO message channels between simulated processes.

Every mechanism in the repository checkpoints a *single* process; a
communicating job additionally has state **on the wire** -- messages
sent but not yet delivered -- and a set of per-rank images is only a
consistent whole-job snapshot if that channel state is accounted for.
This module supplies the substrate the snapshot protocols coordinate
over:

* :class:`Channel` -- a unidirectional FIFO pipe between two processes.
  A send pays wire time on the network's **shared link** (one
  :class:`~repro.storage.devices.Device`, so concurrent senders queue
  exactly like checkpoint traffic does) plus a per-channel propagation
  latency; delivery is an engine event at the deterministic arrival
  instant.  The channel tracks its in-flight messages, which is what
  the marker protocol logs and the stop-the-world protocol drains.
* :class:`Endpoint` -- one process's messaging state: per-peer sent
  counters, per-peer contiguous receive counters, and a rolling state
  digest folded over every consumed message.  The counters *are* the
  local messaging state a cut manifest records; the digest makes
  "the restarted job consumed exactly the same messages" testable as
  integer equality.
* :class:`ChannelNetwork` -- the topology: endpoints, channels, the
  shared link, pause/epoch control used by the protocols, and
  ``distsnap.*`` metrics on the engine's registry.
* :class:`TrafficDriver` -- deterministic background message load
  (exponential gaps from an engine-derived RNG) for experiments.

FIFO-per-channel is the Chandy-Lamport prerequisite: a marker sent
after data separates pre-cut from post-cut traffic on that channel.
The shared link serializes wire time globally and each channel adds a
constant latency, so per-channel delivery order equals send order; the
channel still *asserts* monotone delivery (and receivers assert seq
contiguity), turning any future violation into a loud
:class:`~repro.errors.DistSnapError` instead of a silent orphan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import DistSnapError
from ..simkernel.costs import NS_PER_US
from ..simkernel.engine import Engine
from ..storage.devices import Device

__all__ = [
    "Message",
    "Channel",
    "Endpoint",
    "ChannelNetwork",
    "TrafficDriver",
    "message_link",
]

#: Message kinds: application payload vs protocol control.
DATA = "data"
MARKER = "marker"

#: Seed for the rolling endpoint digest (FNV-1a offset basis).
_DIGEST_SEED = 0xCBF29CE484222325
_DIGEST_PRIME = 0x100000001B3
_DIGEST_MASK = (1 << 64) - 1


def _fold(digest: int, *values: int) -> int:
    """Fold integers into a 64-bit FNV-style rolling digest."""
    for v in values:
        digest = ((digest ^ (v & _DIGEST_MASK)) * _DIGEST_PRIME) & _DIGEST_MASK
    return digest


def message_link(name: str = "link[distsnap]") -> Device:
    """The shared message interconnect: lower setup cost than the bulk
    checkpoint NIC (small messages dominate), 10GigE-class bandwidth."""
    return Device(name=name, latency_ns=5 * NS_PER_US, bytes_per_ns=1.25)


@dataclass
class Message:
    """One message on a channel.

    ``seq`` numbers are per-channel and contiguous from 1 for **data**
    messages; receivers assert contiguity on consumption, which is how
    orphan (gap) and duplicate (repeat) deliveries surface as hard
    failures in the restart experiments.  Markers carry ``seq == 0``:
    they ride the channel's FIFO by delivery order but are invisible to
    the seq space, so a cut's sender and receiver counters agree even
    though markers are never replayed after a restart.
    """

    src: int
    dst: int
    seq: int
    nbytes: int
    kind: str = DATA
    #: Deterministic payload tag folded into the receiver's digest.
    payload: int = 0
    sent_ns: int = 0
    #: Marker messages carry the snapshot they announce.
    snapshot_id: Optional[int] = None

    def to_record(self) -> Dict[str, int]:
        """JSON-able form stored in a cut manifest's channel state."""
        return {"seq": self.seq, "nbytes": self.nbytes, "payload": self.payload}

    @staticmethod
    def from_record(src: int, dst: int, rec: Dict[str, int]) -> "Message":
        """Rebuild a replayable data message from its manifest record."""
        return Message(
            src=src, dst=dst, seq=int(rec["seq"]),
            nbytes=int(rec["nbytes"]), payload=int(rec["payload"]),
        )


class Channel:
    """A unidirectional FIFO channel ``src -> dst``.

    Delivery time of a message sent at ``t`` is ``t + wire + latency``
    where ``wire`` is the shared link's queued transfer time and
    ``latency`` the channel's constant propagation delay; a floor at the
    previous delivery instant enforces FIFO explicitly.
    """

    def __init__(
        self,
        net: "ChannelNetwork",
        src: int,
        dst: int,
        latency_ns: int,
    ) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.latency_ns = int(latency_ns)
        #: Messages sent and not yet delivered, in delivery order.
        self._inflight: List[Message] = []
        self._last_delivery_ns = 0
        self.sent = 0
        self.delivered = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def inflight(self) -> List[Message]:
        """The messages currently on the wire, in delivery order."""
        return list(self._inflight)

    def last_delivery_ns(self) -> int:
        """Delivery instant of the newest in-flight message (or 0)."""
        return self._last_delivery_ns if self._inflight else 0

    def send(self, msg: Message) -> int:
        """Put ``msg`` on the wire; returns its delivery delay.

        The delivery is an engine event bound to the network's current
        epoch: deliveries scheduled before a whole-job restart are
        dropped when they fire into a superseded epoch (the restarted
        job re-creates on-the-wire state from the cut manifest instead).
        """
        engine = self.net.engine
        now = engine.now_ns
        msg.sent_ns = now
        wire = self.net.link.submit(now, msg.nbytes)
        deliver_at = max(now + wire + self.latency_ns, self._last_delivery_ns)
        self._last_delivery_ns = deliver_at
        self._inflight.append(msg)
        self.sent += 1
        self.bytes_sent += msg.nbytes
        epoch = self.net.epoch
        engine.at_anon(deliver_at, lambda: self._deliver(msg, epoch))
        metrics = engine.metrics
        if msg.kind == DATA:
            metrics.inc("distsnap.msgs_sent")
            metrics.inc("distsnap.bytes_sent", msg.nbytes)
        else:
            metrics.inc("distsnap.markers_sent")
        return deliver_at - now

    def _deliver(self, msg: Message, epoch: int) -> None:
        if epoch != self.net.epoch:
            self.net.engine.metrics.inc("distsnap.msgs_dropped_stale")
            return
        if not self._inflight or self._inflight[0] is not msg:
            raise DistSnapError(
                f"FIFO violation on channel {self.src}->{self.dst}: "
                f"out-of-order delivery of seq {msg.seq}"
            )
        self._inflight.pop(0)
        self.delivered += 1
        self.net.engine.metrics.inc("distsnap.msgs_delivered")
        self.net.endpoint(self.dst)._receive(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel {self.src}->{self.dst} inflight={len(self._inflight)}>"
        )


class Endpoint:
    """One process's messaging state and delivery hooks.

    The protocol layer interposes on delivery through two hooks:

    * ``on_marker(endpoint, msg)`` -- marker messages are control
      traffic; they never touch the application-visible counters.
    * ``on_data(endpoint, msg)`` -- called *after* the message is
      consumed (counters and digest updated); the marker protocol uses
      it to log post-record pre-marker messages as channel state.
    """

    def __init__(self, net: "ChannelNetwork", pid: int) -> None:
        self.net = net
        self.pid = pid
        #: Per-destination messages sent (seq allocator).
        self.sent: Dict[int, int] = {}
        #: Per-source contiguous receive counter (highest consumed seq).
        self.received: Dict[int, int] = {}
        #: Rolling digest over every consumed (src, seq, payload).
        self.digest = _DIGEST_SEED
        self.consumed = 0
        self.on_marker: Optional[Callable[["Endpoint", Message], None]] = None
        self.on_data: Optional[Callable[["Endpoint", Message], None]] = None

    # ------------------------------------------------------------------
    def peers_out(self) -> List[int]:
        """Destination pids this endpoint has a channel to (sorted)."""
        return self.net.peers_out(self.pid)

    def peers_in(self) -> List[int]:
        """Source pids with a channel into this endpoint (sorted)."""
        return self.net.peers_in(self.pid)

    def send(self, dst: int, nbytes: int, payload: int = 0) -> Message:
        """Send one application message to ``dst`` (FIFO per channel)."""
        if self.net.paused:
            raise DistSnapError(
                f"process {self.pid} sent while the network is quiesced"
            )
        seq = self.sent.get(dst, 0) + 1
        self.sent[dst] = seq
        msg = Message(src=self.pid, dst=dst, seq=seq, nbytes=int(nbytes),
                      payload=int(payload))
        self.net.channel(self.pid, dst).send(msg)
        return msg

    def send_marker(self, dst: int, snapshot_id: int) -> Message:
        """Send a snapshot marker (control traffic; always allowed, even
        on a quiesced network, and never numbered -- see Message)."""
        msg = Message(src=self.pid, dst=dst, seq=0, nbytes=64,
                      kind=MARKER, snapshot_id=snapshot_id)
        self.net.channel(self.pid, dst).send(msg)
        return msg

    def _receive(self, msg: Message) -> None:
        if msg.kind == MARKER:
            # Markers are outside the seq space: FIFO delivery order is
            # what separates pre-cut from post-cut data around them.
            if self.on_marker is not None:
                self.on_marker(self, msg)
            return
        self._advance_seq(msg)
        self.digest = _fold(self.digest, msg.src, msg.seq, msg.payload)
        self.consumed += 1
        if self.on_data is not None:
            self.on_data(self, msg)

    def _advance_seq(self, msg: Message) -> None:
        expect = self.received.get(msg.src, 0) + 1
        if msg.seq != expect:
            kind = "duplicate" if msg.seq <= self.received.get(msg.src, 0) \
                else "orphan"
            self.net.engine.metrics.inc(f"distsnap.{kind}_msgs")
            raise DistSnapError(
                f"{kind} message on channel {msg.src}->{msg.dst}: "
                f"got seq {msg.seq}, expected {expect}"
            )
        self.received[msg.src] = msg.seq

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The messaging state a cut manifest records for this process."""
        return {
            "sent": {str(k): v for k, v in sorted(self.sent.items())},
            "received": {str(k): v for k, v in sorted(self.received.items())},
            "digest": self.digest,
            "consumed": self.consumed,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install recorded messaging state (whole-job restart)."""
        self.sent = {int(k): int(v) for k, v in state["sent"].items()}
        self.received = {int(k): int(v) for k, v in state["received"].items()}
        self.digest = int(state["digest"])
        self.consumed = int(state["consumed"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint {self.pid} consumed={self.consumed}>"


class ChannelNetwork:
    """Endpoints + channels over one shared link on one engine.

    Parameters
    ----------
    engine:
        The shared virtual clock.
    link:
        The shared interconnect; defaults to :func:`message_link`.
    default_latency_ns:
        Propagation latency for channels created without an explicit
        one (~a rack-scale RTT half).
    """

    def __init__(
        self,
        engine: Engine,
        link: Optional[Device] = None,
        default_latency_ns: int = 20 * NS_PER_US,
    ) -> None:
        self.engine = engine
        self.link = link or message_link()
        self.default_latency_ns = int(default_latency_ns)
        self._endpoints: Dict[int, Endpoint] = {}
        self._channels: Dict[Tuple[int, int], Channel] = {}
        #: Application sends refused while true (stop-the-world quiesce).
        self.paused = False
        #: Bumped on whole-job restart: deliveries scheduled under an
        #: older epoch are dropped when their events fire.
        self.epoch = 0

    # ------------------------------------------------------------------
    def add_process(self, pid: int) -> Endpoint:
        """Create (or return) the endpoint for ``pid``."""
        ep = self._endpoints.get(pid)
        if ep is None:
            ep = Endpoint(self, pid)
            self._endpoints[pid] = ep
        return ep

    def endpoint(self, pid: int) -> Endpoint:
        """The endpoint for ``pid`` (raises if unknown)."""
        try:
            return self._endpoints[pid]
        except KeyError:
            raise DistSnapError(f"no process {pid} on this network") from None

    def endpoints(self) -> List[Endpoint]:
        """All endpoints in pid order."""
        return [self._endpoints[p] for p in sorted(self._endpoints)]

    def connect(
        self, src: int, dst: int, latency_ns: Optional[int] = None
    ) -> Channel:
        """Create the FIFO channel ``src -> dst`` (idempotent)."""
        if src == dst:
            raise DistSnapError(f"no self-channels (process {src})")
        self.add_process(src)
        self.add_process(dst)
        ch = self._channels.get((src, dst))
        if ch is None:
            ch = Channel(
                self, src, dst,
                self.default_latency_ns if latency_ns is None else latency_ns,
            )
            self._channels[(src, dst)] = ch
        return ch

    def connect_bidirectional(
        self, a: int, b: int, latency_ns: Optional[int] = None
    ) -> None:
        """Create both directions of a channel pair."""
        self.connect(a, b, latency_ns)
        self.connect(b, a, latency_ns)

    def channel(self, src: int, dst: int) -> Channel:
        """The channel ``src -> dst`` (raises if unknown)."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise DistSnapError(f"no channel {src}->{dst}") from None

    def channels(self) -> Iterator[Channel]:
        """All channels in (src, dst) order."""
        for key in sorted(self._channels):
            yield self._channels[key]

    def peers_out(self, pid: int) -> List[int]:
        """Destinations ``pid`` has an outbound channel to (sorted)."""
        return sorted(d for (s, d) in self._channels if s == pid)

    def peers_in(self, pid: int) -> List[int]:
        """Sources with a channel into ``pid`` (sorted)."""
        return sorted(s for (s, d) in self._channels if d == pid)

    # ------------------------------------------------------------------
    def inflight_count(self) -> int:
        """Messages currently on the wire across every channel."""
        return sum(len(ch._inflight) for ch in self._channels.values())

    def drain_deadline_ns(self) -> int:
        """Latest delivery instant of any in-flight message (now if none).

        The stop-the-world drain sleeps until this instant: with sends
        paused nothing new enters the wire, so the network is provably
        empty afterwards.
        """
        deadline = self.engine.now_ns
        for ch in self._channels.values():
            if ch._inflight:
                deadline = max(deadline, ch._last_delivery_ns)
        return deadline

    def pause(self) -> None:
        """Refuse application sends (quiesce phase)."""
        self.paused = True

    def resume(self) -> None:
        """Allow application sends again."""
        self.paused = False

    def bump_epoch(self) -> int:
        """Invalidate every scheduled delivery (whole-job restart) and
        clear channel in-flight tracking; returns the new epoch."""
        self.epoch += 1
        for ch in self._channels.values():
            ch._inflight.clear()
            ch._last_delivery_ns = 0
        return self.epoch

    # ------------------------------------------------------------------
    def audit(self) -> Dict[str, int]:
        """Cross-check sender and receiver views of every channel.

        Returns aggregate counters; raises :class:`DistSnapError` if any
        receiver consumed a message its sender never sent (an orphan the
        seq-contiguity assertion somehow missed).  Zero-orphan /
        zero-duplicate is the E22 acceptance invariant.
        """
        inflight = 0
        consumed = 0
        for ch in self._channels.values():
            sent = ch.net.endpoint(ch.src).sent.get(ch.dst, 0)
            recv = ch.net.endpoint(ch.dst).received.get(ch.src, 0)
            if recv > sent:
                raise DistSnapError(
                    f"orphan messages on {ch.src}->{ch.dst}: "
                    f"received {recv} > sent {sent}"
                )
            inflight += len(ch._inflight)
            consumed += recv
        return {
            "channels": len(self._channels),
            "inflight": inflight,
            "consumed_seqs": consumed,
            "orphans": int(self.engine.metrics.counters().get(
                "distsnap.orphan_msgs", 0)),
            "duplicates": int(self.engine.metrics.counters().get(
                "distsnap.duplicate_msgs", 0)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChannelNetwork procs={len(self._endpoints)} "
            f"channels={len(self._channels)} inflight={self.inflight_count()}>"
        )


class TrafficDriver:
    """Deterministic background message load for experiments.

    Each process sends on its outbound channels with exponential
    inter-send gaps of mean ``1/rate``; gap draws and destination
    choices come from one engine-derived generator, so a same-seed run
    reproduces the identical message stream.  The driver pauses with
    the network (a quiesced process simply reschedules its next send)
    and is epoch-aware across restarts.
    """

    def __init__(
        self,
        net: ChannelNetwork,
        rate_per_s: float = 2000.0,
        nbytes: int = 4096,
        seed_stream: Optional[Any] = None,
    ) -> None:
        self.net = net
        self.rate_per_s = float(rate_per_s)
        self.nbytes = int(nbytes)
        self.rng = seed_stream or net.engine.spawn_rng()
        self._running = False
        self.sends = 0

    def start(self) -> None:
        """Arm one send timer per process."""
        self._running = True
        for ep in self.net.endpoints():
            if ep.peers_out():
                self._arm(ep)

    def stop(self) -> None:
        """Stop generating traffic (armed timers become no-ops)."""
        self._running = False

    def _gap_ns(self) -> int:
        return max(1, int(self.rng.exponential(1e9 / self.rate_per_s)))

    def _arm(self, ep: Endpoint) -> None:
        self.net.engine.after_anon(self._gap_ns(), lambda: self._fire(ep))

    def _fire(self, ep: Endpoint) -> None:
        if not self._running:
            return
        # A quiesced network delays traffic; it does not drop it.
        if not self.net.paused and self.net.endpoint(ep.pid) is ep:
            outs = ep.peers_out()
            dst = outs[int(self.rng.integers(0, len(outs)))]
            payload = int(self.rng.integers(0, 2**31 - 1))
            ep.send(dst, self.nbytes, payload=payload)
            self.sends += 1
        self._arm(ep)
