"""Declarative snapshot schedules (MUSCLE3-style ``every``/``at``).

The MUSCLE3 workflow manager drives consistent workflow snapshots from
a declarative checkpoint schedule in the run configuration rather than
from code; this module reproduces that shape for the distsnap
coordinator:

.. code-block:: python

    Schedule.parse({
        "wallclock_time":   [{"every": 0.5}],                 # seconds
        "simulation_time":  [{"every": 10, "start": 0, "stop": 100},
                             {"at": [250, 500]}],
        "at_end": True,
    })

Two clocks, as in the exemplar, mapped onto the simulation:

* ``wallclock_time`` -- the engine's virtual clock, seconds since the
  scheduler started.  ("Wallclock" from the *simulated job's* point of
  view: the time a real operator's cron-style policy would see.)
* ``simulation_time`` -- application progress: whatever monotone scalar
  the job exposes (iterations completed, timesteps).  A rule fires when
  progress *crosses* one of its instants; crossing several between two
  observations fires once (snapshots coalesce, they do not queue).

``at_end`` requests one final snapshot when the job finishes
(:meth:`SnapshotScheduler.finish`).

Rules are pure arithmetic (:meth:`Rule.next_after`) so firing sequences
are deterministic for a given progress trace; the scheduler arms
labelled engine timers for wallclock rules and cancels them cleanly on
:meth:`SnapshotScheduler.stop`, so an abandoned scheduler leaks no
pending events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence

from ..errors import DistSnapError
from ..simkernel.costs import NS_PER_S
from ..simkernel.engine import Engine, Event

__all__ = ["Rule", "Schedule", "SnapshotScheduler"]


def _to_ns(value: Any, what: str) -> int:
    """Seconds (int/float, MUSCLE3's unit) -> integer nanoseconds."""
    try:
        ns = int(float(value) * NS_PER_S)
    except (TypeError, ValueError):
        raise DistSnapError(f"{what} must be a number, got {value!r}") from None
    if ns < 0:
        raise DistSnapError(f"{what} must be >= 0, got {value!r}")
    return ns


@dataclass(frozen=True)
class Rule:
    """One schedule rule: either periodic (``every`` from ``start``
    until optional ``stop``) or explicit instants (``at``)."""

    every_ns: Optional[int] = None
    start_ns: int = 0
    stop_ns: Optional[int] = None
    at_ns: Sequence[int] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if (self.every_ns is None) == (not self.at_ns):
            raise DistSnapError(
                "a rule needs exactly one of 'every' or 'at'"
            )
        if self.every_ns is not None and self.every_ns <= 0:
            raise DistSnapError("'every' must be > 0")

    @staticmethod
    def parse(spec: Mapping[str, Any]) -> "Rule":
        """Parse one ``{every[, start, stop]}`` or ``{at}`` rule (seconds)."""
        unknown = set(spec) - {"every", "start", "stop", "at"}
        if unknown:
            raise DistSnapError(f"unknown rule keys: {sorted(unknown)}")
        if "at" in spec:
            if "every" in spec or "start" in spec or "stop" in spec:
                raise DistSnapError("'at' rules take no other keys")
            instants = spec["at"]
            if not isinstance(instants, (list, tuple)) or not instants:
                raise DistSnapError("'at' must be a non-empty list")
            return Rule(at_ns=tuple(sorted(
                _to_ns(v, "'at' instant") for v in instants
            )))
        if "every" not in spec:
            raise DistSnapError("a rule needs 'every' or 'at'")
        return Rule(
            every_ns=_to_ns(spec["every"], "'every'") or 1,
            start_ns=_to_ns(spec.get("start", 0), "'start'"),
            stop_ns=(
                _to_ns(spec["stop"], "'stop'") if "stop" in spec else None
            ),
        )

    def next_after(self, t_ns: int) -> Optional[int]:
        """The rule's smallest instant strictly after ``t_ns`` (None
        when exhausted)."""
        if self.at_ns:
            for instant in self.at_ns:
                if instant > t_ns:
                    return instant
            return None
        assert self.every_ns is not None
        if t_ns < self.start_ns:
            nxt = self.start_ns
        else:
            periods = (t_ns - self.start_ns) // self.every_ns + 1
            nxt = self.start_ns + periods * self.every_ns
        if self.stop_ns is not None and nxt > self.stop_ns:
            return None
        return nxt


@dataclass(frozen=True)
class Schedule:
    """A parsed checkpoint schedule: rule lists per clock + ``at_end``."""

    wallclock: Sequence[Rule] = field(default_factory=tuple)
    simulation: Sequence[Rule] = field(default_factory=tuple)
    at_end: bool = False

    @staticmethod
    def parse(spec: Mapping[str, Any]) -> "Schedule":
        """Parse a MUSCLE3-shaped checkpoint schedule mapping."""
        if not isinstance(spec, Mapping):
            raise DistSnapError("schedule spec must be a mapping")
        unknown = set(spec) - {"wallclock_time", "simulation_time", "at_end"}
        if unknown:
            raise DistSnapError(f"unknown schedule keys: {sorted(unknown)}")

        def rules(key: str) -> tuple:
            entries = spec.get(key, [])
            if not isinstance(entries, (list, tuple)):
                raise DistSnapError(f"'{key}' must be a list of rules")
            return tuple(Rule.parse(e) for e in entries)

        sched = Schedule(
            wallclock=rules("wallclock_time"),
            simulation=rules("simulation_time"),
            at_end=bool(spec.get("at_end", False)),
        )
        if not sched.wallclock and not sched.simulation and not sched.at_end:
            raise DistSnapError("schedule fires nothing (empty spec)")
        return sched

    def next_wallclock_after(self, t_ns: int) -> Optional[int]:
        """Earliest wallclock instant strictly after ``t_ns``."""
        instants = [r.next_after(t_ns) for r in self.wallclock]
        instants = [i for i in instants if i is not None]
        return min(instants) if instants else None

    def simulation_due(self, prev: int, progress: int) -> bool:
        """Whether progress moving ``prev -> progress`` crossed any
        simulation-time instant (multiple crossings coalesce)."""
        if progress <= prev:
            return False
        for rule in self.simulation:
            nxt = rule.next_after(prev)
            if nxt is not None and nxt <= progress:
                return True
        return False


class SnapshotScheduler:
    """Fires a trigger according to a :class:`Schedule`.

    ``trigger(reason)`` starts one snapshot and returns its result
    completion (or None when it could not start); the scheduler never
    overlaps snapshots -- an instant that falls due while one is in
    flight re-arms after it settles.  ``progress_fn`` supplies the
    simulation-time scalar in **nanosecond-shaped units** (the parsed
    schedule multiplied simulation instants by 1e9 too, so a progress
    of "iteration n" is passed as ``n * NS_PER_S``-- see
    :func:`progress_iterations`).
    """

    def __init__(
        self,
        engine: Engine,
        schedule: Schedule,
        trigger: Callable[[str], Optional[Any]],
        progress_fn: Optional[Callable[[], int]] = None,
        poll_ns: int = 10_000_000,
    ) -> None:
        if schedule.simulation and progress_fn is None:
            raise DistSnapError(
                "schedule has simulation_time rules but no progress_fn"
            )
        self.engine = engine
        self.schedule = schedule
        self.trigger = trigger
        self.progress_fn = progress_fn
        self.poll_ns = int(poll_ns)
        self.t0_ns: Optional[int] = None
        self.fired: List[tuple] = []
        self._running = False
        self._busy = False
        self._deferred: Optional[str] = None
        self._last_progress = 0
        self._wall_event: Optional[Event] = None
        self._poll_event: Optional[Event] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the wallclock timer and the simulation-progress poll."""
        if self._running:
            raise DistSnapError("scheduler already started")
        self._running = True
        self.t0_ns = self.engine.now_ns
        if self.progress_fn is not None:
            self._last_progress = self.progress_fn()
        self._arm_wallclock()
        self._arm_poll()

    def stop(self) -> None:
        """Cancel armed timers; leaves no pending engine events."""
        self._running = False
        for ev_attr in ("_wall_event", "_poll_event"):
            ev = getattr(self, ev_attr)
            if ev is not None:
                ev.cancel()
                setattr(self, ev_attr, None)

    def finish(self) -> Optional[Any]:
        """Job end: fire the ``at_end`` snapshot if requested.

        Returns the trigger's token, or None when a scheduled snapshot
        is still in flight -- the ``at_end`` cut then fires as soon as
        it settles (a final snapshot is never silently dropped).
        """
        self.stop()
        if self.schedule.at_end:
            return self._fire("at_end")
        return None

    # ------------------------------------------------------------------
    def _elapsed(self) -> int:
        assert self.t0_ns is not None
        return self.engine.now_ns - self.t0_ns

    def _arm_wallclock(self) -> None:
        self._wall_event = None
        if not self._running:
            return
        nxt = self.schedule.next_wallclock_after(self._elapsed())
        if nxt is None:
            return
        self._wall_event = self.engine.at(
            self.t0_ns + nxt, self._wallclock_due, label="distsnap.sched"
        )

    def _wallclock_due(self) -> None:
        self._wall_event = None
        if self._running:
            self._fire("wallclock")
            self._arm_wallclock()

    def _arm_poll(self) -> None:
        self._poll_event = None
        if not self._running or not self.schedule.simulation:
            return
        self._poll_event = self.engine.after(
            self.poll_ns, self._poll_due, label="distsnap.sched"
        )

    def _poll_due(self) -> None:
        self._poll_event = None
        if not self._running:
            return
        assert self.progress_fn is not None
        progress = self.progress_fn()
        if self.schedule.simulation_due(self._last_progress, progress):
            self._fire("simulation")
        self._last_progress = max(self._last_progress, progress)
        self._arm_poll()

    def _fire(self, reason: str) -> Optional[Any]:
        if self._busy:
            # Coalesce: remember one deferred firing, run it when the
            # in-flight snapshot settles.
            self._deferred = reason
            return None
        token = self.trigger(reason)
        self.fired.append((self.engine.now_ns, reason))
        self.engine.metrics.inc("distsnap.schedule_fired")
        if token is not None and hasattr(token, "add_done_callback"):
            # Completions settle on resolve *and* on cancel (aborted
            # snapshots), so _busy always clears.
            self._busy = True
            token.add_done_callback(lambda _c: self._settled())
        return token

    def _settled(self) -> None:
        self._busy = False
        deferred, self._deferred = self._deferred, None
        # "at_end" survives stop(): finish() during an in-flight
        # snapshot must still take the final cut once it settles.
        if deferred is not None and (self._running or deferred == "at_end"):
            self._fire(deferred)


def progress_iterations(ranks: Sequence[Any]) -> Callable[[], int]:
    """Progress function: min completed main-loop steps across ranks,
    in schedule units (an ``{"every": 10}`` simulation rule fires every
    10 iterations)."""
    def _progress() -> int:
        steps = [
            int(getattr(r.task, "main_steps", 0)) for r in ranks
            if getattr(r, "task", None) is not None
        ]
        return (min(steps) if steps else 0) * NS_PER_S
    return _progress
