"""Coordinated whole-job snapshot protocols.

Two protocols over the :mod:`~repro.distsnap.channels` substrate, both
driving the repository's *existing* per-process checkpointers and both
producing the same artifact -- a :class:`CutManifest` on stable storage
that names one image per rank plus the channel state of the cut:

* :class:`MarkerProtocol` -- Chandy-Lamport-style.  The initiator
  records its local state and floods a marker on every outbound
  channel; a process records on its first marker, floods its own
  markers, and *logs* data messages arriving on each inbound channel
  until that channel's marker shows up (FIFO makes the marker an exact
  pre/post-cut separator, so the logged messages are precisely the
  channel's in-flight state in the cut).  Processes never stop sending:
  zero application downtime, paid for in logged-message bytes.
* :class:`StopTheWorldProtocol` -- coordinated two-phase quiesce.
  Pause application sends everywhere (one control round-trip), sleep
  until the last in-flight delivery instant (drain -- deterministic
  because delivery times are precomputed), capture every rank on an
  empty network, resume.  Channel state in the cut is empty by
  construction; the cost is downtime.

"Record local state" is the synchronous snapshot of the endpoint's
messaging counters plus an initiated checkpoint of the rank's task via
``request_checkpoint`` (pipelined mechanisms overlap captures exactly
as they do for single-process checkpoints); the protocol completes when
every capture reports DONE via ``add_done_callback`` -- no polling.

A protocol that loses a rank mid-snapshot aborts: every timer it owns
is a *cancellable* engine completion and is cancelled, its span ends
``state="aborted"``, nothing is published (the manifest write never
starts), and the engine's pending-event count stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import DistSnapError
from ..simkernel.costs import NS_PER_US
from ..simkernel import Task
from ..simkernel.engine import Completion, Engine
from .channels import ChannelNetwork, Endpoint, Message

__all__ = [
    "SnapRank",
    "CutManifest",
    "SnapshotProtocol",
    "MarkerProtocol",
    "StopTheWorldProtocol",
]

#: One-way latency of the coordinator's out-of-band control plane
#: (quiesce commands and acks travel beside the data channels).
CONTROL_LATENCY_NS = 10 * NS_PER_US

#: Manifest encoding overhead: header + per-rank record + per-message
#: record (seq/nbytes/payload triple).  Logged payload bytes are charged
#: at full size -- channel state *is* message data.
_MANIFEST_HEADER_BYTES = 256
_RANK_RECORD_BYTES = 160
_MSG_RECORD_BYTES = 48


@dataclass
class SnapRank:
    """One communicating process as the protocols see it.

    ``task`` and ``mechanism`` are optional: with both set, recording a
    rank initiates a real checkpoint through the mechanism and the cut
    manifest names the resulting image; with either missing the rank is
    *lightweight* -- its recorded state is the endpoint counters alone,
    which is all the protocol-termination and consistency property
    tests need.  The adapter keeps ``distsnap`` import-free of
    ``repro.cluster``; the cluster layer builds SnapRanks, not the
    other way around.
    """

    pid: int
    endpoint: Endpoint
    task: Optional[Task] = None
    mechanism: Optional[Any] = None
    node_id: Optional[int] = None


@dataclass
class CutManifest:
    """The consistent cut: per-rank images + channel state, one blob.

    Stored under ``distsnap/<job>/<id>+cut``.  The last key component
    is not all digits, so :class:`~repro.stablestore.gc.GenerationGC`'s
    generation parser ignores the manifest itself (the same key-shape
    trick compacted ``<tip>+flat`` images use); the GC additionally
    treats :meth:`pinned_keys` as roots so the per-rank images a
    manifest references -- whose keys *are* generation-shaped -- can
    never be collected out from under it.
    """

    key: str
    snapshot_id: int
    protocol: str
    job: str
    taken_ns: int
    #: pid -> checkpoint image key (absent for lightweight ranks).
    rank_images: Dict[int, str] = field(default_factory=dict)
    #: pid -> Endpoint.state() at the rank's record instant.
    endpoint_states: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: "src->dst" -> in-flight message records, delivery order.
    channel_messages: Dict[str, List[Dict[str, int]]] = field(
        default_factory=dict
    )
    #: (src, dst, latency_ns) for every channel, for topology rebuild.
    topology: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Protocol downtime (stop-the-world) or 0 (marker).
    downtime_ns: int = 0

    #: Duck-typing flags for GC and chain walks.
    is_cut_manifest: bool = True
    parent_key: Optional[str] = None

    def pinned_keys(self) -> List[str]:
        """Image keys this cut requires to remain restorable."""
        return sorted(self.rank_images.values())

    def logged_message_count(self) -> int:
        """Total in-flight messages recorded as channel state."""
        return sum(len(v) for v in self.channel_messages.values())

    @property
    def size_bytes(self) -> int:
        """Serialized size: header, rank records, message records plus
        the logged payload bytes themselves."""
        nbytes = _MANIFEST_HEADER_BYTES
        nbytes += _RANK_RECORD_BYTES * len(self.endpoint_states)
        for records in self.channel_messages.values():
            for rec in records:
                nbytes += _MSG_RECORD_BYTES + int(rec["nbytes"])
        return nbytes


class SnapshotProtocol:
    """Shared machinery: rank bookkeeping, capture fan-in, manifest
    write, abort.  Subclasses implement :meth:`start` phases."""

    protocol_name = "abstract"

    def __init__(
        self,
        net: ChannelNetwork,
        ranks: List[SnapRank],
        store: Optional[Any] = None,
        job: str = "job",
    ) -> None:
        if not ranks:
            raise DistSnapError("a snapshot needs at least one rank")
        self.net = net
        self.engine: Engine = net.engine
        self.ranks: Dict[int, SnapRank] = {}
        for r in ranks:
            if r.pid in self.ranks:
                raise DistSnapError(f"duplicate rank pid {r.pid}")
            self.ranks[r.pid] = r
        self.store = store
        self.job = job
        self.snapshot_id = self.engine.next_id("distsnap.snapshot")
        self.result: Completion = Completion(self.engine)
        self.manifest: Optional[CutManifest] = None
        self.started_ns: Optional[int] = None
        self.aborted = False
        self.abort_reason: Optional[str] = None
        self._done = False
        self._span: Optional[Any] = None
        self._captures_outstanding = 0
        self._rank_images: Dict[int, str] = {}
        self._endpoint_states: Dict[int, Dict[str, Any]] = {}
        #: Cancellable completions this protocol owns (abort cleanup).
        self._timers: List[Completion] = []

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Started and neither finished nor aborted."""
        return (
            self.started_ns is not None and not self._done and not self.aborted
        )

    def start(self) -> Completion:
        """Begin the snapshot; returns a completion that resolves with
        the :class:`CutManifest` (or is cancelled on abort)."""
        raise NotImplementedError

    def _begin(self) -> None:
        if self.started_ns is not None:
            raise DistSnapError(
                f"{self.protocol_name} snapshot {self.snapshot_id} "
                f"already started"
            )
        self.started_ns = self.engine.now_ns
        self._span = self.engine.tracer.start_span(
            f"distsnap.{self.protocol_name}",
            snapshot_id=self.snapshot_id,
            job=self.job,
            ranks=len(self.ranks),
        )
        self.engine.metrics.inc("distsnap.snapshots_started")

    def _timer(self, delay_ns: int) -> Completion:
        """A cancellable engine completion owned by this protocol."""
        token = self.engine.completion(delay_ns, cancellable=True)
        self._timers.append(token)
        return token

    # ------------------------------------------------------------------
    # Capture fan-in
    # ------------------------------------------------------------------
    def _capture_rank(self, rank: SnapRank) -> None:
        """Record ``rank``'s messaging state and initiate its checkpoint."""
        self._endpoint_states[rank.pid] = rank.endpoint.state()
        if rank.mechanism is None or rank.task is None:
            return  # lightweight rank: counters are the whole state
        self._captures_outstanding += 1
        req = rank.mechanism.request_checkpoint(rank.task)
        req.add_done_callback(
            lambda r, pid=rank.pid: self._capture_done(pid, r)
        )

    def _capture_done(self, pid: int, req: Any) -> None:
        if self.aborted or self._done:
            return
        self._captures_outstanding -= 1
        if req.state.value == "failed":
            self.abort(f"rank {pid} capture failed: {req.error}")
            return
        self._rank_images[pid] = req.key
        if self._captures_outstanding == 0:
            self._captures_complete()

    def _captures_complete(self) -> None:
        """Subclass hook: every initiated capture is DONE."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _build_manifest(
        self,
        channel_messages: Dict[str, List[Dict[str, int]]],
        downtime_ns: int = 0,
    ) -> CutManifest:
        key = f"distsnap/{self.job}/{self.snapshot_id}+cut"
        return CutManifest(
            key=key,
            snapshot_id=self.snapshot_id,
            protocol=self.protocol_name,
            job=self.job,
            taken_ns=self.engine.now_ns,
            rank_images=dict(sorted(self._rank_images.items())),
            endpoint_states=dict(sorted(self._endpoint_states.items())),
            channel_messages={
                k: list(v) for k, v in sorted(channel_messages.items())
            },
            topology=sorted(
                (ch.src, ch.dst, ch.latency_ns) for ch in self.net.channels()
            ),
            downtime_ns=downtime_ns,
        )

    def _write_manifest(self, manifest: CutManifest) -> None:
        """Stream the manifest to stable storage, then finish.

        Uses the ``WriteStream`` protocol: one chunk for the header plus
        rank records, one for the logged channel state, commit as the
        visibility point.  The engine delay accumulates through the
        stream's queued device model; completion resolves at commit
        time.
        """
        self.manifest = manifest
        metrics = self.engine.metrics
        metrics.inc("distsnap.manifest_bytes", manifest.size_bytes)
        metrics.observe("distsnap.logged_msgs", manifest.logged_message_count())
        if self.store is None:
            self._finish()
            return
        t = self.engine.now_ns
        stream = self.store.open_stream(manifest.key, t)
        rank_bytes = _MANIFEST_HEADER_BYTES + sum(
            _RANK_RECORD_BYTES + len(manifest.rank_images.get(pid, ""))
            for pid in manifest.endpoint_states
        )
        t += stream.send(rank_bytes, t)
        channel_bytes = sum(
            _MSG_RECORD_BYTES + r["nbytes"]
            for records in manifest.channel_messages.values()
            for r in records
        )
        if channel_bytes:
            t += stream.send(channel_bytes, t)
        t += stream.commit(manifest, manifest.size_bytes, t)
        done = self._timer(t - self.engine.now_ns)
        done.add_done_callback(lambda _c: self._finish())

    def _finish(self) -> None:
        if self.aborted or self._done:
            return
        self._done = True
        self._teardown()
        assert self.manifest is not None
        engine = self.engine
        elapsed = engine.now_ns - (self.started_ns or 0)
        engine.metrics.inc("distsnap.snapshots_completed")
        engine.metrics.observe("distsnap.protocol_ns", elapsed)
        if self.manifest.downtime_ns:
            engine.metrics.observe(
                "distsnap.downtime_ns", self.manifest.downtime_ns
            )
        if self._span is not None:
            self._span.end(
                state="done",
                manifest_key=self.manifest.key,
                ranks=len(self.ranks),
                logged_msgs=self.manifest.logged_message_count(),
                manifest_bytes=self.manifest.size_bytes,
                downtime_ns=self.manifest.downtime_ns,
            )
        self.result.resolve(self.manifest)

    # ------------------------------------------------------------------
    def abort(self, reason: str) -> None:
        """Abandon the snapshot: cancel every owned timer, end the span
        aborted, publish nothing.  Idempotent; a no-op once done."""
        if self.aborted or self._done:
            return
        self.aborted = True
        self.abort_reason = reason
        for token in self._timers:
            token.cancel()
        self._timers = []
        self._teardown()
        self.engine.metrics.inc("distsnap.snapshots_aborted")
        if self._span is not None:
            self._span.end(state="aborted", reason=reason)
        self.result.cancel()

    def _teardown(self) -> None:
        """Subclass hook: release network hooks / unpause."""

    def attach_failure_watch(self, cluster: Any) -> None:
        """Abort this snapshot if a node hosting one of its ranks fails
        mid-protocol (wire to ``Cluster.on_failure``)."""
        rank_nodes = {
            r.node_id for r in self.ranks.values() if r.node_id is not None
        }

        def _watch(node: Any) -> None:
            node_id = getattr(node, "node_id", node)
            if self.running and node_id in rank_nodes:
                self.abort(f"node {node_id} failed mid-snapshot")

        cluster.on_failure(_watch)


class MarkerProtocol(SnapshotProtocol):
    """Chandy-Lamport marker flooding over FIFO channels.

    Requires the channel graph restricted to the participating ranks to
    be strongly connected (markers are the only propagation mechanism);
    with bidirectional channels any connected topology qualifies.
    Terminates after every rank has recorded, every inbound channel has
    delivered its marker, and every initiated capture is DONE --
    bounded by (graph diameter x max channel latency) + capture time.
    """

    protocol_name = "marker"

    def __init__(
        self,
        net: ChannelNetwork,
        ranks: List[SnapRank],
        store: Optional[Any] = None,
        job: str = "job",
        initiator: Optional[int] = None,
    ) -> None:
        super().__init__(net, ranks, store, job)
        pids = sorted(self.ranks)
        self.initiator = pids[0] if initiator is None else initiator
        if self.initiator not in self.ranks:
            raise DistSnapError(f"initiator {self.initiator} is not a rank")
        self._recorded: Set[int] = set()
        #: pid -> inbound peers whose marker has not yet arrived.
        self._awaiting: Dict[int, Set[int]] = {}
        #: "src->dst" -> logged post-record pre-marker messages.
        self._logged: Dict[str, List[Dict[str, int]]] = {}
        self._markers_in = False

    # ------------------------------------------------------------------
    def start(self) -> Completion:
        """Record at the initiator and flood the first markers."""
        self._begin()
        for pid in self.ranks:
            ep = self.net.endpoint(pid)
            if ep.on_marker is not None or ep.on_data is not None:
                raise DistSnapError(
                    f"process {pid} already has a snapshot in progress"
                )
            ep.on_marker = self._on_marker
            ep.on_data = self._on_data
        self._record(self.initiator)
        self._check_termination()
        return self.result

    def _record(self, pid: int) -> None:
        """First-marker (or initiator) action: snapshot local state,
        initiate the rank capture, flood markers outbound."""
        self._recorded.add(pid)
        rank = self.ranks[pid]
        ep = rank.endpoint
        self._capture_rank(rank)
        self._awaiting[pid] = {
            src for src in ep.peers_in() if src in self.ranks
        }
        self.engine.tracer.instant(
            "distsnap.record", pid=pid, snapshot_id=self.snapshot_id
        )
        for dst in ep.peers_out():
            if dst in self.ranks:
                ep.send_marker(dst, self.snapshot_id)

    def _on_marker(self, ep: Endpoint, msg: Message) -> None:
        if self.aborted or self._done or msg.snapshot_id != self.snapshot_id:
            return
        pid = ep.pid
        if pid not in self._recorded:
            self._record(pid)
        # Marker closes its channel: its in-flight state is whatever was
        # logged (possibly nothing, when record was triggered by it).
        self._awaiting[pid].discard(msg.src)
        self._check_termination()

    def _on_data(self, ep: Endpoint, msg: Message) -> None:
        if self.aborted or self._done:
            return
        pid = ep.pid
        if pid in self._recorded and msg.src in self._awaiting.get(pid, ()):
            # Post-record, pre-marker: this message is part of the
            # channel's state in the cut.
            self._logged.setdefault(
                f"{msg.src}->{msg.dst}", []
            ).append(msg.to_record())
            self.engine.metrics.inc("distsnap.logged_bytes", msg.nbytes)

    def _check_termination(self) -> None:
        if len(self._recorded) < len(self.ranks):
            return
        if any(self._awaiting[p] for p in self.ranks):
            return
        if self._markers_in:
            return
        self._markers_in = True
        self.engine.tracer.instant(
            "distsnap.markers_complete", snapshot_id=self.snapshot_id
        )
        if self._captures_outstanding == 0:
            self._captures_complete()

    def _captures_complete(self) -> None:
        if not self._markers_in:
            return  # captures beat the marker flood; wait for it
        self._write_manifest(self._build_manifest(self._logged))

    def _teardown(self) -> None:
        for pid in self.ranks:
            ep = self.net.endpoint(pid)
            if ep.on_marker == self._on_marker:
                ep.on_marker = None
            if ep.on_data == self._on_data:
                ep.on_data = None


class StopTheWorldProtocol(SnapshotProtocol):
    """Two-phase coordinated quiesce -> drain -> capture -> resume.

    Phase 1 (quiesce): the coordinator broadcasts *pause* and collects
    acks -- one control round-trip; from the pause instant the network
    refuses application sends.  Phase 2 (drain): sleep until the last
    in-flight delivery instant, after which the channels are provably
    empty.  Capture: checkpoint every rank; the cut's channel state is
    empty by construction.  Resume: unpause; downtime is quiesce start
    to resume, the number E22 trades against the marker protocol's
    logged bytes.
    """

    protocol_name = "stw"

    def __init__(
        self,
        net: ChannelNetwork,
        ranks: List[SnapRank],
        store: Optional[Any] = None,
        job: str = "job",
        control_latency_ns: int = CONTROL_LATENCY_NS,
    ) -> None:
        super().__init__(net, ranks, store, job)
        self.control_latency_ns = int(control_latency_ns)
        self.quiesced_ns: Optional[int] = None
        self.drained_ns: Optional[int] = None
        self.resumed_ns: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> Completion:
        """Broadcast the quiesce command and begin the two phases."""
        self._begin()
        self.net.pause()
        # Pause command out + ack back from every rank: sends stop at
        # the pause instant (the coordinator model is authoritative);
        # the round-trip is when the coordinator *knows* they stopped.
        ack = self._timer(2 * self.control_latency_ns)
        ack.add_done_callback(lambda _c: self._quiesced())
        return self.result

    def _quiesced(self) -> None:
        if self.aborted or self._done:
            return
        self.quiesced_ns = self.engine.now_ns
        self.engine.tracer.instant(
            "distsnap.quiesced",
            snapshot_id=self.snapshot_id,
            inflight=self.net.inflight_count(),
        )
        drain = self._timer(
            max(0, self.net.drain_deadline_ns() - self.engine.now_ns)
        )
        drain.add_done_callback(lambda _c: self._drained())

    def _drained(self) -> None:
        if self.aborted or self._done:
            return
        inflight = self.net.inflight_count()
        if inflight:
            raise DistSnapError(
                f"stw drain incomplete: {inflight} messages still in "
                f"flight past the drain deadline"
            )
        self.drained_ns = self.engine.now_ns
        self.engine.metrics.observe(
            "distsnap.drain_ns", self.drained_ns - (self.quiesced_ns or 0)
        )
        self.engine.tracer.instant(
            "distsnap.drained", snapshot_id=self.snapshot_id
        )
        for rank in self.ranks.values():
            self._capture_rank(rank)
        if self._captures_outstanding == 0:
            self._captures_complete()

    def _captures_complete(self) -> None:
        # Empty-by-construction channel state; resume the world, then
        # write the manifest (the job is already running again while
        # the manifest streams out).
        self.net.resume()
        self.resumed_ns = self.engine.now_ns
        downtime = self.resumed_ns - (self.started_ns or 0)
        self.engine.tracer.instant(
            "distsnap.resumed",
            snapshot_id=self.snapshot_id,
            downtime_ns=downtime,
        )
        self._write_manifest(
            self._build_manifest({}, downtime_ns=downtime)
        )

    def _teardown(self) -> None:
        # Abort mid-quiesce must not leave the world stopped.
        if self.resumed_ns is None:
            self.net.resume()
