"""``repro.distsnap`` -- coordinated distributed snapshots.

Every mechanism in :mod:`repro.core` checkpoints a single process; this
package adds the coordination layer the paper's direction-forward
argument needs for whole-job fault tolerance: FIFO message channels
between simulated processes (:mod:`.channels`), a Chandy-Lamport-style
marker protocol and a coordinated stop-the-world protocol that drive
the existing per-process checkpointers and write a consistent-cut
manifest (:mod:`.protocols`), a declarative MUSCLE3-style snapshot
schedule DSL (:mod:`.schedule`), and whole-job restart from a cut with
in-flight message replay (:mod:`.restart`).  See DESIGN.md §9.
"""

from .channels import (
    Channel,
    ChannelNetwork,
    Endpoint,
    Message,
    TrafficDriver,
    message_link,
)
from .protocols import (
    CutManifest,
    MarkerProtocol,
    SnapRank,
    SnapshotProtocol,
    StopTheWorldProtocol,
)
from .restart import JobRestoreResult, restore_snapshot, verify_exactly_once
from .schedule import Rule, Schedule, SnapshotScheduler, progress_iterations

__all__ = [
    "Channel",
    "ChannelNetwork",
    "Endpoint",
    "Message",
    "TrafficDriver",
    "message_link",
    "CutManifest",
    "MarkerProtocol",
    "SnapRank",
    "SnapshotProtocol",
    "StopTheWorldProtocol",
    "JobRestoreResult",
    "restore_snapshot",
    "verify_exactly_once",
    "Rule",
    "Schedule",
    "SnapshotScheduler",
    "progress_iterations",
]
