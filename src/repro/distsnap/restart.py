"""Whole-job restart from a consistent cut.

Restores everything a :class:`~repro.distsnap.protocols.CutManifest`
names: one process image per rank through the per-process mechanisms
(with ``prefetch`` chain fetching, the restore-prefetch path), the
endpoint messaging counters of the cut, and -- for marker-protocol cuts
-- the logged in-flight messages, which are **replayed** onto the
re-created channels with their original sequence numbers.

The replay is what makes the cut exactly-once: the restored receive
counters stop just short of the logged messages' seqs, so each logged
message is consumed exactly once, and the endpoint's seq-contiguity
assertion turns any orphan (a message the cut lost) or duplicate (a
message both a rank image and the channel log claim) into a hard
:class:`~repro.errors.DistSnapError`.  E22's consistency experiment is
this property, run under load.

Before replay the network's delivery *epoch* is bumped: deliveries
scheduled by the failed incarnation are stale and drop silently when
they fire, instead of corrupting the restarted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import DistSnapError
from .channels import ChannelNetwork, Message
from .protocols import CutManifest

__all__ = ["JobRestoreResult", "restore_snapshot", "verify_exactly_once"]


@dataclass
class JobRestoreResult:
    """Outcome of a whole-job restore."""

    manifest: CutManifest
    #: Virtual instant the slowest rank finished restoring (manifest
    #: load + image chain I/O + install).
    ready_ns: int
    #: Logged in-flight messages put back on the wire.
    replayed: int
    replayed_bytes: int
    #: Manifest-load I/O delay (charged before any rank restore).
    manifest_delay_ns: int
    #: pid -> per-rank RestoreResult (empty for lightweight restores).
    rank_results: Dict[int, Any] = field(default_factory=dict)


def restore_snapshot(
    store: Any,
    manifest_key: str,
    net: ChannelNetwork,
    mechanisms: Optional[Dict[int, Any]] = None,
    target_kernels: Optional[Dict[int, Any]] = None,
    prefetch: bool = True,
) -> JobRestoreResult:
    """Restore a whole communicating job from the cut at ``manifest_key``.

    Parameters
    ----------
    store:
        The stablestore holding the manifest and the rank images.
    net:
        The channel network to restore onto.  Channels named by the
        manifest's topology are created if missing (a fresh network on
        spare nodes restores the same shape).
    mechanisms:
        pid -> the per-process :class:`~repro.core.checkpointer
        .Checkpointer` to restore that rank's image through (its
        ``restart(..., prefetch=...)`` runs the restore-prefetch path).
        Omit for lightweight restores (counters + replay only).
    target_kernels:
        pid -> kernel to restore the rank onto (spare-node placement);
        defaults to each mechanism's home kernel.
    prefetch:
        Fetch each rank's image chain in parallel (restore_prefetch).
    """
    engine = net.engine
    span = engine.tracer.start_span("distsnap.restore", key=manifest_key)
    try:
        manifest, manifest_delay = store.load(manifest_key, engine.now_ns)
    except Exception as exc:
        span.end(state="failed", error=str(exc))
        raise
    if not getattr(manifest, "is_cut_manifest", False):
        span.end(state="failed", error="not a cut manifest")
        raise DistSnapError(f"{manifest_key!r} is not a cut manifest")

    # A restarted job must never see deliveries scheduled by the failed
    # incarnation; from here on only replayed and new messages exist.
    net.bump_epoch()
    net.resume()

    for src, dst, latency_ns in manifest.topology:
        net.connect(src, dst, latency_ns)
    for pid, state in manifest.endpoint_states.items():
        net.endpoint(pid).restore_state(state)

    ready_ns = engine.now_ns + manifest_delay
    rank_results: Dict[int, Any] = {}
    if mechanisms is not None:
        for pid, image_key in manifest.rank_images.items():
            mech = mechanisms.get(pid)
            if mech is None:
                raise DistSnapError(f"no mechanism to restore rank {pid}")
            kernel = (target_kernels or {}).get(pid)
            result = mech.restart(
                image_key, target_kernel=kernel, prefetch=prefetch
            )
            rank_results[pid] = result
            ready_ns = max(ready_ns, result.ready_at_ns)

    # Replay the cut's in-flight messages in channel order with their
    # original seqs; delivery pays normal wire + latency time.
    replayed = 0
    replayed_bytes = 0
    for chan_name in sorted(manifest.channel_messages):
        records = manifest.channel_messages[chan_name]
        src_s, dst_s = chan_name.split("->")
        src, dst = int(src_s), int(dst_s)
        channel = net.channel(src, dst)
        for rec in records:
            channel.send(Message.from_record(src, dst, rec))
            replayed += 1
            replayed_bytes += int(rec["nbytes"])

    engine.metrics.inc("distsnap.restores")
    engine.metrics.inc("distsnap.replayed_msgs", replayed)
    engine.metrics.inc("distsnap.replayed_bytes", replayed_bytes)
    span.end(
        state="done",
        ranks=len(manifest.endpoint_states),
        replayed=replayed,
        ready_ns=ready_ns,
    )
    return JobRestoreResult(
        manifest=manifest,
        ready_ns=ready_ns,
        replayed=replayed,
        replayed_bytes=replayed_bytes,
        manifest_delay_ns=manifest_delay,
        rank_results=rank_results,
    )


def verify_exactly_once(
    net: ChannelNetwork,
    manifest: CutManifest,
    consumed_before: Dict[int, int],
) -> Dict[str, int]:
    """Post-replay consistency probe for experiments and tests.

    ``consumed_before`` maps pid -> the endpoint's ``consumed`` counter
    right after :func:`restore_snapshot` (i.e. the cut's recorded
    value).  After the engine has drained the replay, each endpoint
    must have consumed *exactly* the logged messages destined to it --
    no orphans, no duplicates -- and every channel must be
    seq-contiguous (the audit).  Returns the audit counters; raises
    :class:`DistSnapError` on any violation.
    """
    expected: Dict[int, int] = {}
    for chan_name, records in manifest.channel_messages.items():
        dst = int(chan_name.split("->")[1])
        expected[dst] = expected.get(dst, 0) + len(records)
    for ep in net.endpoints():
        if ep.pid not in manifest.endpoint_states:
            continue
        delta = ep.consumed - consumed_before.get(ep.pid, 0)
        want = expected.get(ep.pid, 0)
        if delta != want:
            kind = "orphan" if delta > want else "lost"
            raise DistSnapError(
                f"{kind} replay on rank {ep.pid}: consumed {delta} "
                f"logged messages, cut recorded {want}"
            )
    return net.audit()
