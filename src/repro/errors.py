"""Exception hierarchy for the ``repro`` checkpoint/restart laboratory.

Every error raised by the package derives from :class:`ReproError` so callers
can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulerError",
    "MemoryError_",
    "SegmentationFault",
    "SyscallError",
    "SignalError",
    "CheckpointError",
    "RestartError",
    "IncompatibleStateError",
    "StorageError",
    "StorageLostError",
    "ClusterError",
    "NodeFailedError",
    "RegistryError",
    "WorkloadError",
    "ObservabilityError",
    "DistSnapError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(SimulationError):
    """Invalid scheduler operation (e.g. enqueueing a dead task)."""


class MemoryError_(SimulationError):
    """Invalid simulated-memory operation (bad address, bad protection)."""


class SegmentationFault(MemoryError_):
    """A simulated access violated page protections and nobody handled it.

    In the simulated kernel this is normally intercepted (it is how both
    user-level ``mprotect``/SIGSEGV incremental checkpointing and
    system-level dirty-bit tracking are driven); reaching Python as an
    exception means the access had no registered handler, which mirrors a
    real segfault killing the process.
    """

    def __init__(self, pid: int, address: int, message: str = "") -> None:
        self.pid = pid
        self.address = address
        super().__init__(
            message or f"segmentation fault: pid={pid} address={address:#x}"
        )


class SyscallError(SimulationError):
    """A simulated system call failed (unknown call, bad arguments)."""


class SignalError(SimulationError):
    """Invalid signal operation (unknown signal, bad handler)."""


class CheckpointError(ReproError):
    """A checkpoint operation could not be completed."""


class RestartError(ReproError):
    """A restart operation could not be completed."""


class IncompatibleStateError(RestartError):
    """Restart failed because state could not be recreated on the target.

    This is the failure mode the paper attributes to mechanisms without
    resource virtualization: kernel-persistent identifiers (PIDs, sockets,
    SysV shared-memory segments, IP addresses) clash or are missing on the
    destination machine.
    """


class StorageError(ReproError):
    """A stable-storage backend failed an operation."""


class StorageLostError(StorageError):
    """Stored data is unavailable (e.g. local disk on a failed node)."""


class ClusterError(ReproError):
    """Invalid cluster-level operation."""


class NodeFailedError(ClusterError):
    """The referenced node has failed (fail-stop semantics)."""


class RegistryError(ReproError):
    """Mechanism registry lookup or registration failed."""


class WorkloadError(ReproError):
    """A synthetic workload was misconfigured or misused."""


class ObservabilityError(ReproError):
    """Invalid metrics/tracing usage or a malformed obs export."""


class DistSnapError(ReproError):
    """A coordinated distributed-snapshot operation failed.

    Raised for channel misuse (FIFO violations, sends on closed
    networks), malformed snapshot schedules, protocol aborts surfaced to
    the caller, and inconsistent cuts detected at restart (orphan or
    duplicate messages) -- the invariants experiment E22 asserts.
    """
