"""Channel substrate: FIFO, latency, in-flight tracking, pause/epoch."""

from __future__ import annotations

import pytest

from repro.distsnap import ChannelNetwork, Message, TrafficDriver
from repro.errors import DistSnapError
from repro.simkernel.engine import Engine


def net2(latency_ns=20_000, seed=3):
    eng = Engine(seed=seed)
    net = ChannelNetwork(eng, default_latency_ns=latency_ns)
    net.connect_bidirectional(0, 1)
    return eng, net


def test_fifo_delivery_and_seq_contiguity():
    eng, net = net2()
    a = net.endpoint(0)
    for _ in range(10):
        a.send(1, 4096, payload=7)
    assert net.channel(0, 1).sent == 10
    assert net.inflight_count() == 10
    eng.run()
    b = net.endpoint(1)
    assert b.received[0] == 10
    assert b.consumed == 10
    assert net.inflight_count() == 0


def test_delivery_pays_wire_plus_channel_latency():
    eng, net = net2(latency_ns=50_000)
    arrivals = []
    net.endpoint(1).on_data = lambda ep, msg: arrivals.append(eng.now_ns)
    sent_at = eng.now_ns
    net.endpoint(0).send(1, 1 << 20)  # 1 MiB: wire time matters
    eng.run()
    wire = net.link.latency_ns + int((1 << 20) / net.link.bytes_per_ns)
    assert arrivals == [sent_at + wire + 50_000]


def test_endpoint_digest_tracks_consumed_stream():
    eng, net = net2()
    net.endpoint(0).send(1, 128, payload=11)
    net.endpoint(0).send(1, 128, payload=22)
    eng.run()
    d1 = net.endpoint(1).digest

    eng2, other = net2()
    other.endpoint(0).send(1, 128, payload=11)
    other.endpoint(0).send(1, 128, payload=22)
    eng2.run()
    assert other.endpoint(1).digest == d1

    eng3, third = net2()
    third.endpoint(0).send(1, 128, payload=22)  # order swapped
    third.endpoint(0).send(1, 128, payload=11)
    eng3.run()
    assert third.endpoint(1).digest != d1


def test_duplicate_and_orphan_deliveries_raise():
    eng, net = net2()
    net.endpoint(0).send(1, 64)
    eng.run()
    dup = Message(src=0, dst=1, seq=1, nbytes=64)
    with pytest.raises(DistSnapError, match="duplicate"):
        net.endpoint(1)._receive(dup)
    gap = Message(src=0, dst=1, seq=5, nbytes=64)
    with pytest.raises(DistSnapError, match="orphan"):
        net.endpoint(1)._receive(gap)
    counters = eng.metrics.counters()
    assert counters["distsnap.duplicate_msgs"] == 1
    assert counters["distsnap.orphan_msgs"] == 1


def test_paused_network_refuses_app_sends_but_not_markers():
    eng, net = net2()
    net.pause()
    with pytest.raises(DistSnapError, match="quiesced"):
        net.endpoint(0).send(1, 64)
    net.endpoint(0).send_marker(1, snapshot_id=1)  # control traffic flows
    net.resume()
    net.endpoint(0).send(1, 64)
    eng.run()
    assert net.endpoint(1).received[0] == 1  # marker took no seq


def test_epoch_bump_drops_stale_deliveries():
    eng, net = net2()
    net.endpoint(0).send(1, 64)
    net.endpoint(0).send(1, 64)
    assert net.inflight_count() == 2
    net.bump_epoch()
    assert net.inflight_count() == 0
    eng.run()
    # The scheduled deliveries fired into a dead epoch: nothing consumed.
    assert net.endpoint(1).consumed == 0
    assert eng.metrics.counters()["distsnap.msgs_dropped_stale"] == 2


def test_state_roundtrip_restores_counters():
    eng, net = net2()
    for _ in range(5):
        net.endpoint(0).send(1, 64, payload=9)
    eng.run()
    state = net.endpoint(1).state()
    eng2, fresh = net2()
    fresh.endpoint(1).restore_state(state)
    ep = fresh.endpoint(1)
    assert ep.received[0] == 5 and ep.consumed == 5
    assert ep.digest == net.endpoint(1).digest


def test_traffic_driver_is_seed_deterministic():
    def run(seed):
        eng = Engine(seed=seed)
        net = ChannelNetwork(eng)
        for i in range(3):
            for j in range(3):
                if i != j:
                    net.connect(i, j)
        drv = TrafficDriver(net, rate_per_s=5000.0)
        drv.start()
        eng.run(until_ns=3_000_000)
        drv.stop()
        return [(ep.pid, dict(ep.sent), ep.digest) for ep in net.endpoints()]

    assert run(11) == run(11)
    assert run(11) != run(12)


def test_audit_counts_and_connect_is_idempotent():
    eng, net = net2()
    ch = net.channel(0, 1)
    assert net.connect(0, 1) is ch
    with pytest.raises(DistSnapError):
        net.connect(0, 0)
    with pytest.raises(DistSnapError):
        net.channel(5, 0)
    net.endpoint(0).send(1, 64)
    eng.run()
    audit = net.audit()
    assert audit["orphans"] == 0 and audit["duplicates"] == 0
    assert audit["consumed_seqs"] == 1
