"""CommunicatingJob wiring: real checkpointers, spare-node restore,
generation-GC cut pinning."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, CommunicatingJob
from repro.core.direction import AutonomicCheckpointer
from repro.distsnap import TrafficDriver, verify_exactly_once
from repro.errors import DistSnapError
from repro.stablestore.gc import GenerationGC
from repro.workloads import SparseWriter


def build_job(n_ranks=4, topology="ring", seed=42):
    cl = Cluster(n_nodes=4, n_spares=1, seed=seed,
                 storage_servers=3, replication=2)
    job = CommunicatingJob(
        cl, lambda r: SparseWriter(), n_ranks=n_ranks, name="cj",
        topology=topology, channel_latency_ns=30_000,
    )
    mechs = {
        n.node_id: AutonomicCheckpointer(n.kernel, n.remote_storage)
        for n in cl.compute_nodes()
    }
    store = cl.nodes[0].remote_storage
    return cl, job, mechs, store


def snapshot(cl, job, mechs, store, protocol="marker"):
    proto = job.snapshot(store, mechs, protocol=protocol)
    token = proto.start()
    cl.engine.run(until=lambda: token.done or token.cancelled,
                  until_ns=cl.engine.now_ns + 5_000_000_000)
    assert token.done
    return proto


def test_topologies():
    assert CommunicatingJob._edges("ring", 4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
    assert CommunicatingJob._edges("ring", 1) == []
    assert len(CommunicatingJob._edges("all", 5)) == 10
    assert CommunicatingJob._edges([(0, 2)], 3) == [(0, 2)]
    with pytest.raises(DistSnapError):
        CommunicatingJob._edges([(0, 9)], 3)
    with pytest.raises(DistSnapError):
        CommunicatingJob._edges("torus", 3)
    with pytest.raises(DistSnapError):
        build_job()[1].snapshot(None, {}, protocol="nope")


def test_coordinated_snapshot_names_one_image_per_rank():
    cl, job, mechs, store = build_job()
    drv = TrafficDriver(job.net, rate_per_s=10000.0)
    drv.start()
    cl.engine.run(until_ns=3_000_000)
    proto = snapshot(cl, job, mechs, store)
    m = proto.manifest
    assert sorted(m.rank_images) == [0, 1, 2, 3]
    assert store.exists(m.key)
    for key in m.pinned_keys():
        assert store.exists(key)
    drv.stop()


def test_whole_job_restore_onto_spare_after_node_failure():
    cl, job, mechs, store = build_job()
    drv = TrafficDriver(job.net, rate_per_s=10000.0)
    drv.start()
    cl.engine.run(until_ns=3_000_000)
    proto = snapshot(cl, job, mechs, store)
    cl.engine.run(until_ns=cl.engine.now_ns + 3_000_000)
    drv.stop()

    victim = job.ranks[1].node.node_id
    cl.fail_node(victim)
    res = job.restore(store, proto.manifest.key, mechs)
    assert job.ranks[1].node.node_id != victim  # placed on the spare
    assert res.replayed == proto.manifest.logged_message_count()
    consumed = {ep.pid: ep.consumed for ep in job.net.endpoints()}
    cl.engine.run(until_ns=cl.engine.now_ns + 1_000_000_000)
    audit = verify_exactly_once(job.net, proto.manifest, consumed)
    assert audit["orphans"] == 0 and audit["duplicates"] == 0
    assert job.restarts == 1
    # Restored tasks are live bindings on up nodes.
    for rank in job.ranks:
        assert rank.node.up


def test_stw_snapshot_through_cluster_path():
    cl, job, mechs, store = build_job(topology="all")
    drv = TrafficDriver(job.net, rate_per_s=15000.0)
    drv.start()
    cl.engine.run(until_ns=2_000_000)
    proto = snapshot(cl, job, mechs, store, protocol="stw")
    assert proto.manifest.logged_message_count() == 0
    assert proto.manifest.downtime_ns > 0
    assert not job.net.paused
    drv.stop()


def test_generation_gc_never_collects_cut_pinned_images():
    """Regression (satellite 2): per-rank images referenced by a cut
    manifest survive generation pruning -- and are released once the
    manifest itself is deleted."""
    cl, job, mechs, store = build_job()
    drv = TrafficDriver(job.net, rate_per_s=8000.0)
    drv.start()
    cl.engine.run(until_ns=3_000_000)
    proto = snapshot(cl, job, mechs, store)
    pinned = proto.manifest.pinned_keys()
    drv.stop()

    # Newer per-rank checkpoints supersede the cut's generation.
    for rank in job.ranks:
        mech = mechs.get(rank.node.node_id) or next(iter(mechs.values()))
        mech.request_checkpoint(rank.task)
    cl.engine.run(until_ns=cl.engine.now_ns + 2_000_000_000)

    gc = GenerationGC(store, keep=1, metrics=cl.engine.metrics)
    collected = gc.sweep()
    assert not set(collected) & set(pinned)
    for key in pinned:
        assert store.exists(key), f"GC collected pinned rank image {key}"

    # Manifest gone -> the pins are released on the next sweep.
    store.delete(proto.manifest.key)
    gc.sweep()
    assert any(not store.exists(k) for k in pinned)
